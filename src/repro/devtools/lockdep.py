"""Runtime lock-order witness (the dynamic half of ``tools/locklint.py``).

Linux-kernel ``lockdep`` in miniature: while a :func:`lockdep_scope` is
active, the ``new_lock``/``new_rlock``/``new_condition`` factories hand
out *instrumented* primitives that record, per thread, which lock
classes are held when each lock is taken.  Edges are keyed by lock
**name** (``"ClassName.attr"``, matching the static identity used by
locklint), not by instance, so one run of a chaos test generalizes over
every instance of a class — observing ``A`` held while taking ``B`` in
one thread and ``B`` held while taking ``A`` in another is reported as
an **inversion** even if the two threads never actually deadlocked in
this schedule.

Detected at runtime:

- **order inversions** — a reverse held-before edge already exists in
  the graph; the witness carries the acquisition stacks of *both*
  edges;
- **self-deadlock** — a thread re-acquiring a non-reentrant ``Lock`` it
  already holds raises :class:`LockdepViolation` immediately instead of
  hanging the test run;
- **hold-time outliers** — locks held longer than ``hold_threshold``
  seconds (measured with an injectable clock).

Nesting two *different instances* under the same name (e.g. two
``Tenant._lock`` objects) is counted (``same_key_nesting``) but does
not create a self-edge: instance order among peers is a policy
question, not an automatic deadlock.

The disabled path is free: with no ambient scope the factories return
plain :mod:`threading` primitives, so production code pays nothing —
the opt-in happens at *construction* time, which is why tests must
build the objects under test **inside** ``lockdep_scope()``::

    with lockdep_scope() as dep:
        service = TranslationService(...)   # locks are instrumented
        ... hammer it from many threads ...
        dep.assert_clean(witness_path="lockdep-witness.json")
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import threading
import time
import traceback
from typing import Callable, Iterator

__all__ = [
    "LockDep",
    "LockdepViolation",
    "lockdep_scope",
    "new_condition",
    "new_lock",
    "new_rlock",
]

#: The ambient witness.  A plain module global (not a ``ContextVar``):
#: worker threads spawned inside the scope must observe it too.
_ACTIVE: "LockDep | None" = None

_STACK_LIMIT = 12
_SELF = str(pathlib.Path(__file__).resolve())


class LockdepViolation(AssertionError):
    """A lock-discipline violation observed at runtime."""


def _capture_stack() -> list[str]:
    """The current acquisition stack, minus lockdep's own frames."""
    frames = traceback.extract_stack(limit=_STACK_LIMIT + 4)
    return [
        f"{frame.filename}:{frame.lineno} in {frame.name}"
        for frame in frames
        if frame.filename != _SELF
    ][-_STACK_LIMIT:]


class LockDep:
    """The witness: per-thread held stacks plus the global edge graph."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        hold_threshold: float | None = None,
    ) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self.hold_threshold = hold_threshold
        # Leaf guard for the witness's own state; never exposed.
        self._guard = threading.Lock()
        #: thread ident -> [(name, id(lock), acquire timestamp), ...]
        self._held: dict[int, list[tuple[str, int, float]]] = {}
        #: (held_name, then_name) -> acquisition stack of the first
        #: observation of that edge.
        self._edges: dict[tuple[str, str], list[str]] = {}
        self.inversions: list[dict] = []
        self.violations: list[dict] = []
        self.hold_outliers: list[dict] = []
        self.same_key_nesting: int = 0
        #: Liveness probes: regression tests assert on these to prove a
        #: run was genuinely instrumented (an accidentally-empty scope
        #: would otherwise pass vacuously).
        self.acquisitions: int = 0
        self.seen: set[str] = set()

    # -- instrumentation callbacks (called by the wrapper classes) -----

    def _stack_for(self, ident: int) -> list[tuple[str, int, float]]:
        with self._guard:
            return self._held.setdefault(ident, [])

    def check_before_acquire(self, name: str, obj: int) -> None:
        """Raise instead of letting a thread self-deadlock."""
        ident = threading.get_ident()
        held = self._stack_for(ident)
        if any(h_obj == obj for _h, h_obj, _t in held):
            stack = _capture_stack()
            record = {
                "kind": "self-deadlock",
                "lock": name,
                "thread": threading.current_thread().name,
                "stack": stack,
            }
            with self._guard:
                self.violations.append(record)
            raise LockdepViolation(
                f"thread {record['thread']!r} re-acquired non-reentrant "
                f"lock {name!r} it already holds"
            )

    def on_acquired(self, name: str, obj: int) -> None:
        ident = threading.get_ident()
        held = self._stack_for(ident)
        now = self._clock()
        stack: list[str] | None = None
        with self._guard:
            self.acquisitions += 1
            self.seen.add(name)
            for held_name, held_obj, _t in held:
                if held_name == name:
                    # A sibling instance of the same lock class; peer
                    # order is policy, not an automatic deadlock.
                    self.same_key_nesting += 1
                    continue
                edge = (held_name, name)
                reverse = (name, held_name)
                if reverse in self._edges:
                    if stack is None:
                        stack = _capture_stack()
                    self.inversions.append(
                        {
                            "edge": list(edge),
                            "prior_edge": list(reverse),
                            "prior_stack": self._edges[reverse],
                            "stack": stack,
                            "thread": threading.current_thread().name,
                        }
                    )
                if edge not in self._edges:
                    if stack is None:
                        stack = _capture_stack()
                    self._edges[edge] = stack
        held.append((name, obj, now))

    def on_released(self, name: str, obj: int) -> None:
        ident = threading.get_ident()
        held = self._stack_for(ident)
        now = self._clock()
        for index in range(len(held) - 1, -1, -1):
            held_name, held_obj, acquired_at = held[index]
            if held_obj == obj:
                del held[index]
                duration = now - acquired_at
                if (
                    self.hold_threshold is not None
                    and duration > self.hold_threshold
                ):
                    with self._guard:
                        self.hold_outliers.append(
                            {
                                "lock": name,
                                "held_seconds": duration,
                                "thread": (
                                    threading.current_thread().name
                                ),
                            }
                        )
                return

    # -- reporting ------------------------------------------------------

    def edges(self) -> set[tuple[str, str]]:
        """The observed held-before edges, as (held, then) name pairs."""
        with self._guard:
            return set(self._edges)

    def report(self) -> dict:
        with self._guard:
            return {
                "edges": [
                    {"held": a, "then": b, "stack": stack}
                    for (a, b), stack in sorted(self._edges.items())
                ],
                "inversions": list(self.inversions),
                "violations": list(self.violations),
                "hold_outliers": list(self.hold_outliers),
                "same_key_nesting": self.same_key_nesting,
                "acquisitions": self.acquisitions,
                "locks_seen": sorted(self.seen),
            }

    def assert_clean(
        self, witness_path: str | pathlib.Path | None = None
    ) -> None:
        """Raise :class:`LockdepViolation` if anything bad was seen.

        When *witness_path* is given, the full report (acquisition
        stacks for both edges of every inversion) is dumped there as
        JSON before raising, so CI failures are actionable.
        """
        report = self.report()
        problems = report["inversions"] or report["violations"]
        if not problems:
            return
        if witness_path is not None:
            path = pathlib.Path(witness_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report, indent=2))
        first = problems[0]
        detail = (
            f"{first['edge'][0]} -> {first['edge'][1]} inverts "
            f"{first['prior_edge'][0]} -> {first['prior_edge'][1]}"
            if "edge" in first
            else first.get("lock", "?")
        )
        raise LockdepViolation(
            f"{len(report['inversions'])} lock-order inversion(s), "
            f"{len(report['violations'])} violation(s); first: {detail}"
            + (f" (witness: {witness_path})" if witness_path else "")
        )


# ----------------------------------------------------------------------
# Instrumented primitives.


class _DepLock:
    """A ``threading.Lock`` that reports to the owning :class:`LockDep`."""

    _reentrant = False

    def __init__(self, dep: LockDep, name: str) -> None:
        self._dep = dep
        self._name = name
        self._real = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking and timeout < 0:
            # The only variant that can hang forever on self-deadlock.
            self._dep.check_before_acquire(self._name, id(self))
        ok = self._real.acquire(blocking, timeout)
        if ok:
            self._dep.on_acquired(self._name, id(self))
        return ok

    def release(self) -> None:
        self._dep.on_released(self._name, id(self))
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class _DepRLock:
    """A ``threading.RLock`` wrapper; re-acquires record no edges."""

    def __init__(self, dep: LockDep, name: str) -> None:
        self._dep = dep
        self._name = name
        self._real = threading.RLock()
        self._counts: dict[int, int] = {}  # thread ident -> depth

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._real.acquire(blocking, timeout)
        if ok:
            ident = threading.get_ident()
            depth = self._counts.get(ident, 0)
            self._counts[ident] = depth + 1
            if depth == 0:
                self._dep.on_acquired(self._name, id(self))
        return ok

    def release(self) -> None:
        ident = threading.get_ident()
        depth = self._counts.get(ident, 0) - 1
        if depth <= 0:
            self._counts.pop(ident, None)
            self._dep.on_released(self._name, id(self))
        else:
            self._counts[ident] = depth
        self._real.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class _DepCondition:
    """A ``threading.Condition`` wrapper.

    Entering the condition is a lock acquisition; ``wait``/``wait_for``
    release the underlying lock while blocked, and the held-stack
    bookkeeping mirrors that so edges recorded *after* a wait do not
    claim the condition was held through it.
    """

    def __init__(self, dep: LockDep, name: str) -> None:
        self._dep = dep
        self._name = name
        self._real = threading.Condition()

    def acquire(self, *args) -> bool:
        ok = self._real.acquire(*args)
        if ok:
            self._dep.on_acquired(self._name, id(self))
        return ok

    def release(self) -> None:
        self._dep.on_released(self._name, id(self))
        self._real.release()

    def __enter__(self) -> bool:
        self.acquire()
        return True

    def __exit__(self, *exc_info) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        self._dep.on_released(self._name, id(self))
        try:
            return self._real.wait(timeout)
        finally:
            self._dep.on_acquired(self._name, id(self))

    def wait_for(self, predicate, timeout: float | None = None):
        self._dep.on_released(self._name, id(self))
        try:
            return self._real.wait_for(predicate, timeout)
        finally:
            self._dep.on_acquired(self._name, id(self))

    def notify(self, n: int = 1) -> None:
        self._real.notify(n)

    def notify_all(self) -> None:
        self._real.notify_all()


# ----------------------------------------------------------------------
# The factory seam production code imports.


def new_lock(name: str):
    """A named mutex: plain ``threading.Lock`` unless a scope is active."""
    dep = _ACTIVE
    if dep is None:
        return threading.Lock()
    return _DepLock(dep, name)


def new_rlock(name: str):
    """A named reentrant lock; instrumented under an active scope."""
    dep = _ACTIVE
    if dep is None:
        return threading.RLock()
    return _DepRLock(dep, name)


def new_condition(name: str):
    """A named condition variable; instrumented under an active scope."""
    dep = _ACTIVE
    if dep is None:
        return threading.Condition()
    return _DepCondition(dep, name)


@contextlib.contextmanager
def lockdep_scope(
    clock: Callable[[], float] | None = None,
    hold_threshold: float | None = None,
) -> Iterator[LockDep]:
    """Install a :class:`LockDep` witness for the duration of the block.

    Only locks *constructed* inside the scope are instrumented; build
    the objects under test inside it.  Scopes do not nest — the inner
    scope wins until it exits (last-in, restored on exit).
    """
    global _ACTIVE
    previous = _ACTIVE
    dep = LockDep(clock=clock, hold_threshold=hold_threshold)
    _ACTIVE = dep
    try:
        yield dep
    finally:
        _ACTIVE = previous
