"""Developer-facing diagnostics that never run on the serving hot path.

The first citizen is :mod:`repro.devtools.lockdep`: an opt-in runtime
lock-order witness (the dynamic counterpart of ``tools/locklint.py``).
Production code imports only the ``new_lock``/``new_rlock``/
``new_condition`` factory seam, which returns plain :mod:`threading`
primitives unless a :func:`repro.devtools.lockdep.lockdep_scope` is
active at construction time — the disabled path adds zero per-acquire
overhead.
"""

from repro.devtools.lockdep import (
    LockDep,
    LockdepViolation,
    lockdep_scope,
    new_condition,
    new_lock,
    new_rlock,
)

__all__ = [
    "LockDep",
    "LockdepViolation",
    "lockdep_scope",
    "new_condition",
    "new_lock",
    "new_rlock",
]
