"""MetaSQL reproduction: a generate-then-rank framework for NL2SQL translation.

The package is organised bottom-up:

- :mod:`repro.sqlkit` -- SQL tokenizer/parser/printer, exact-match comparison,
  hardness rating, unit decomposition and rule-based SQL-to-NL templates.
- :mod:`repro.schema` -- relational schema model, in-memory database and a
  SQL executor used for execution-accuracy evaluation.
- :mod:`repro.nn` -- a from-scratch numpy ML substrate (autograd, layers,
  optimizers, losses, text encoders).
- :mod:`repro.data` -- synthetic Spider-like and ScienceBenchmark-like
  benchmark generators.
- :mod:`repro.models` -- simulated base NL2SQL translation models
  (grammar-based Seq2seq parsers with beam search, and a few-shot LLM sim).
- :mod:`repro.core` -- MetaSQL itself: query metadata, the multi-label
  classifier, metadata-conditioned generation and the two-stage ranking
  pipeline.
- :mod:`repro.eval` -- EM/EX/Precision@K/MRR metrics and evaluation harness.
- :mod:`repro.experiments` -- one driver per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["MetaSQL", "QueryMetadata", "__version__"]


def __getattr__(name: str):
    """Lazily expose the top-level API without importing heavy submodules."""
    if name == "MetaSQL":
        from repro.core.pipeline import MetaSQL

        return MetaSQL
    if name == "QueryMetadata":
        from repro.core.metadata import QueryMetadata

        return QueryMetadata
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
