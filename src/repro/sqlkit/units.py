"""Decomposition of a SQL query into semantic units.

MetaSQL's second-stage ranker consumes *multi-grained* features: one
sentence-level representation of the whole query plus one phrase-level
representation per semantic unit.  The unit types follow Table 2 of the
paper: PROJECTION, JOIN, PREDICATE, GROUP and SORT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sqlkit.ast import (
    Query,
    SetQuery,
)


class UnitType(str, enum.Enum):
    """The five unit types of Table 2."""

    PROJECTION = "projection"
    JOIN = "join"
    PREDICATE = "predicate"
    GROUP = "group"
    SORT = "sort"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SqlUnit:
    """One semantic unit: its type and the AST payload it covers.

    ``payload`` is type-dependent: a select expression for PROJECTION, the
    table tuple for JOIN, a (predicate, set_op or None) pair for PREDICATE,
    the group-by column tuple for GROUP, and the (order_items, limit) pair
    for SORT.
    """

    unit_type: UnitType
    payload: object


def decompose(query: Query) -> tuple[SqlUnit, ...]:
    """Break *query* into its semantic units (Table 2 of the paper).

    Set operations are decomposed into the left branch's units plus a
    PREDICATE unit for the right branch (mirroring the paper's
    ``INTERSECT SELECT ...`` predicate example).  Nested subqueries inside
    predicates stay part of that predicate's unit.
    """
    if isinstance(query, SetQuery):
        units = list(decompose(query.left))
        units.append(SqlUnit(UnitType.PREDICATE, (query.right, query.op)))
        return tuple(units)

    units = []
    for expr in query.select:
        units.append(SqlUnit(UnitType.PROJECTION, expr))
    if query.from_.subquery is not None:
        units.extend(decompose(query.from_.subquery))
    else:
        units.append(SqlUnit(UnitType.JOIN, query.from_.tables))
    for condition in (query.where, query.having):
        if condition is None:
            continue
        for predicate in condition.predicates:
            units.append(SqlUnit(UnitType.PREDICATE, (predicate, None)))
    if query.group_by:
        units.append(SqlUnit(UnitType.GROUP, query.group_by))
    if query.order_by or query.limit is not None:
        units.append(SqlUnit(UnitType.SORT, (query.order_by, query.limit)))
    return tuple(units)
