"""SQL abstract syntax tree.

The AST models the Spider-compatible SQL subset: single SELECT statements
with joins, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, nested subqueries in
predicates or FROM, and top-level set operations (UNION/INTERSECT/EXCEPT).

All nodes are frozen dataclasses so queries are hashable and structurally
comparable, which the candidate-deduplication and ranking stages rely on.

Boolean conditions follow Spider's flat shape: a sequence of predicates
joined by ``and``/``or`` connectors (no arbitrary nesting of boolean
operators).  Negation lives on the predicate (``NOT IN``, ``!=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

AGG_FUNCS = ("count", "sum", "avg", "min", "max")
COMPARE_OPS = ("=", "!=", "<", ">", "<=", ">=", "like", "in", "between")
ARITH_OPS = ("+", "-", "*", "/")
SET_OPS = ("union", "intersect", "except")


@dataclass(frozen=True)
class Literal:
    """A constant value.  ``value`` keeps the python-typed representation."""

    value: Union[str, int, float]

    def render(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) column reference."""

    column: str
    table: str | None = None

    def key(self) -> str:
        """Canonical lowercase identity used for comparison."""
        if self.table is None:
            return self.column.lower()
        return f"{self.table.lower()}.{self.column.lower()}"


@dataclass(frozen=True)
class Star:
    """``*`` (optionally table-qualified)."""

    table: str | None = None


@dataclass(frozen=True)
class AggExpr:
    """An aggregate application, e.g. ``count(distinct name)``."""

    func: str
    arg: "ValueExpr"
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregate function: {self.func}")


@dataclass(frozen=True)
class Arith:
    """A binary arithmetic expression over value expressions."""

    op: str
    left: "ValueExpr"
    right: "ValueExpr"

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator: {self.op}")


ValueExpr = Union[Literal, ColumnRef, Star, AggExpr, Arith]


@dataclass(frozen=True)
class Predicate:
    """A single comparison, e.g. ``age > 3`` or ``id NOT IN (SELECT ...)``.

    ``right`` may be a value expression, a nested :class:`Query` (for
    comparison against subqueries / IN-subqueries), or a tuple of literals
    (for ``IN (v1, v2, ...)``).  ``right2`` is only used by BETWEEN.
    """

    left: ValueExpr
    op: str
    right: Union[ValueExpr, "Query", tuple[Literal, ...]]
    right2: ValueExpr | None = None
    negated: bool = False

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise ValueError(f"unknown comparison operator: {self.op}")

    @property
    def has_subquery(self) -> bool:
        return isinstance(self.right, (SelectQuery, SetQuery))


@dataclass(frozen=True)
class Condition:
    """A flat boolean combination: predicates joined by and/or connectors.

    ``len(connectors) == len(predicates) - 1``.
    """

    predicates: tuple[Predicate, ...]
    connectors: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.connectors) != max(len(self.predicates) - 1, 0):
            raise ValueError("connector count must be predicate count - 1")
        for connector in self.connectors:
            if connector not in ("and", "or"):
                raise ValueError(f"unknown connector: {connector}")

    @property
    def has_or(self) -> bool:
        return "or" in self.connectors


@dataclass(frozen=True)
class JoinCond:
    """An equi-join condition between two columns."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class FromClause:
    """FROM clause: base tables with optional join conditions, or a subquery.

    Exactly one of ``tables``/``subquery`` is populated.  Join conditions may
    be empty even with multiple tables (Spider frequently omits ON clauses;
    the executor then infers the join path from schema foreign keys).
    """

    tables: tuple[str, ...] = ()
    joins: tuple[JoinCond, ...] = ()
    subquery: "Query | None" = None

    def __post_init__(self) -> None:
        if bool(self.tables) == (self.subquery is not None):
            raise ValueError("FROM needs either tables or a subquery")


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with direction."""

    expr: ValueExpr
    desc: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A single SELECT statement."""

    select: tuple[ValueExpr, ...]
    from_: FromClause
    distinct: bool = False
    where: Condition | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Condition | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("SELECT list must not be empty")


@dataclass(frozen=True)
class SetQuery:
    """A top-level set operation between two queries."""

    op: str
    left: "Query"
    right: "Query"

    def __post_init__(self) -> None:
        if self.op not in SET_OPS:
            raise ValueError(f"unknown set operation: {self.op}")


Query = Union[SelectQuery, SetQuery]


def iter_selects(query: Query):
    """Yield every SelectQuery inside *query*, including subqueries."""
    if isinstance(query, SetQuery):
        yield from iter_selects(query.left)
        yield from iter_selects(query.right)
        return
    yield query
    if query.from_.subquery is not None:
        yield from iter_selects(query.from_.subquery)
    for condition in (query.where, query.having):
        if condition is None:
            continue
        for predicate in condition.predicates:
            if isinstance(predicate.right, (SelectQuery, SetQuery)):
                yield from iter_selects(predicate.right)


def iter_column_refs(expr: ValueExpr):
    """Yield every ColumnRef inside a value expression."""
    if isinstance(expr, ColumnRef):
        yield expr
    elif isinstance(expr, AggExpr):
        yield from iter_column_refs(expr.arg)
    elif isinstance(expr, Arith):
        yield from iter_column_refs(expr.left)
        yield from iter_column_refs(expr.right)


def query_columns(query: Query) -> set[str]:
    """Return the canonical keys of every column referenced by *query*."""
    keys: set[str] = set()
    for select in iter_selects(query):
        for expr in select.select:
            keys.update(ref.key() for ref in iter_column_refs(expr))
        for condition in (select.where, select.having):
            if condition is None:
                continue
            for predicate in condition.predicates:
                keys.update(ref.key() for ref in iter_column_refs(predicate.left))
                if not isinstance(predicate.right, (SelectQuery, SetQuery, tuple)):
                    keys.update(
                        ref.key() for ref in iter_column_refs(predicate.right)
                    )
        keys.update(ref.key() for ref in select.group_by)
        for item in select.order_by:
            keys.update(ref.key() for ref in iter_column_refs(item.expr))
    return keys


def query_tables(query: Query) -> set[str]:
    """Return the lowercase names of every base table used by *query*."""
    names: set[str] = set()
    for select in iter_selects(query):
        names.update(table.lower() for table in select.from_.tables)
    return names
