"""Exception hierarchy for the SQL substrate and the pipeline layer.

Two branches share the :class:`SqlError` root so callers with an existing
``except SqlError`` net keep catching everything:

- **substrate errors** (tokenize / parse / execute / schema), and
- **pipeline errors** — the structured taxonomy used by the resilience
  layer (:mod:`repro.core.resilience`) to classify stage failures, decide
  retries and drive graceful degradation.
"""


class SqlError(Exception):
    """Base class for all SQL-substrate errors."""


class SqlTokenError(SqlError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """Raised when the parser cannot derive a valid query from the tokens."""


class SqlExecutionError(SqlError):
    """Raised when the executor cannot evaluate a query against a database."""


class SchemaError(SqlError):
    """Raised when a query references tables/columns absent from the schema."""


class ExecutionBudgetError(SqlExecutionError):
    """Raised when a query exhausts its row/step execution budget.

    Subclasses :class:`SqlExecutionError` so existing ``except SqlError``
    handlers (e.g. the EX metric) treat a runaway candidate query as a
    non-match instead of hanging the evaluation.
    """

    def __init__(self, message: str, spent: int, limit: int) -> None:
        super().__init__(f"{message} ({spent} > limit {limit})")
        self.spent = spent
        self.limit = limit


# ----------------------------------------------------------------------
# Pipeline-layer taxonomy (used by repro.core.resilience).


class PipelineError(SqlError):
    """Base class for errors raised by the generate-then-rank pipeline."""


class PipelineStateError(PipelineError, RuntimeError):
    """A pipeline API was used in an invalid lifecycle state.

    Also a :class:`RuntimeError` for backward compatibility with callers
    that caught the bare ``RuntimeError`` older versions raised.
    """


class StageError(PipelineError):
    """A pipeline stage failed as a whole (classifier, ranker, ...)."""

    def __init__(self, stage: str, message: str) -> None:
        super().__init__(f"[{stage}] {message}")
        self.stage = stage


class CandidateError(PipelineError):
    """A single candidate failed processing; isolable, never fatal."""

    def __init__(self, message: str, index: int | None = None) -> None:
        super().__init__(message)
        self.index = index


class TransientError(PipelineError):
    """A retryable fault (flaky backend, timeout); bounded retries apply.

    The resilience layer also honours a truthy ``transient`` attribute on
    any exception, so foreign exception types can opt in without
    subclassing.
    """

    transient = True


class DeadlineExceeded(PipelineError):
    """A request's time budget ran out at a cooperative checkpoint.

    Not transient: retrying an expired request inside the same deadline
    cannot succeed.  The pipeline normally *absorbs* expiry (degrading to
    the best answer produced so far); this type is raised only when a
    caller asks a :class:`~repro.core.resilience.Deadline` to ``check()``
    explicitly.
    """

    def __init__(self, stage: str, budget: float, elapsed: float) -> None:
        super().__init__(
            f"deadline of {budget:.3f}s exceeded at {stage!r} "
            f"(elapsed {elapsed:.3f}s)"
        )
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed


class BreakerOpen(StageError):
    """A stage was skipped because its circuit breaker is open.

    The resilience layer records this instead of invoking a stage that
    has failed persistently; the stage's normal fallback applies until a
    half-open probe succeeds.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(stage, "circuit breaker open; stage skipped")


# ----------------------------------------------------------------------
# Serving-layer taxonomy (used by repro.serve).


class ServiceError(PipelineError):
    """Base class for errors raised by the translation serving layer."""


class Overloaded(ServiceError):
    """Admission control shed this request: the work queue is full.

    Transient by design — the client may retry after backoff; the server
    sheds instead of queueing unboundedly.
    """

    transient = True

    def __init__(self, queue_depth: int, capacity: int) -> None:
        super().__init__(
            f"translation service overloaded "
            f"(queue {queue_depth}/{capacity}); retry later"
        )
        self.queue_depth = queue_depth
        self.capacity = capacity


class ServiceStopped(ServiceError, RuntimeError):
    """A request was submitted to a service that has shut down."""


class ConfigError(SqlError, ValueError):
    """A service/tenancy configuration value is invalid at construction.

    Raised eagerly when the config object is built (``__post_init__``)
    so a bad queue size, worker count, or quota rate fails at the call
    site instead of deep inside a worker loop.  Also a
    :class:`ValueError` so callers with an existing ``except ValueError``
    net keep catching construction failures.
    """


# ----------------------------------------------------------------------
# Tenancy taxonomy (used by repro.tenancy).


class TenancyError(ServiceError):
    """Base class for errors raised by the multi-tenant routing layer."""


class UnknownTenant(TenancyError):
    """A request addressed a tenant id the registry does not hold."""

    def __init__(self, tenant_id: str, known: tuple[str, ...] = ()) -> None:
        hint = f" (known: {', '.join(known)})" if known else ""
        super().__init__(f"unknown tenant {tenant_id!r}{hint}")
        self.tenant_id = tenant_id


class TenantOverloaded(Overloaded):
    """Admission control shed this request at the *tenant* boundary.

    A noisy tenant that exhausts its token-bucket rate or its bounded
    queue share is rejected here — before touching the shared global
    queue — so other tenants' latency stays flat.  Subclasses
    :class:`Overloaded` (and is therefore transient): clients holding an
    ``except Overloaded`` retry net keep working unchanged.
    """

    def __init__(self, tenant_id: str, reason: str, detail: str = "") -> None:
        message = f"tenant {tenant_id!r} overloaded ({reason})"
        if detail:
            message += f": {detail}"
        # Overloaded.__init__ formats queue numbers; bypass it and keep
        # the shared transient semantics.
        ServiceError.__init__(self, message)
        self.tenant_id = tenant_id
        self.reason = reason


class TenantSwapError(TenancyError):
    """A shard hot swap failed and was rolled back to the previous epoch.

    The tenant keeps serving on the epoch it was on — a corrupt snapshot
    costs the swap, never the traffic.
    """

    def __init__(self, tenant_id: str, epoch: int, message: str) -> None:
        super().__init__(
            f"swap for tenant {tenant_id!r} failed; "
            f"rolled back to epoch {epoch}: {message}"
        )
        self.tenant_id = tenant_id
        self.epoch = epoch


# ----------------------------------------------------------------------
# Checkpoint taxonomy (used by repro.core.persist / repro.serve).


class CheckpointError(SqlError, ValueError):
    """A pipeline checkpoint could not be written or restored.

    Also a :class:`ValueError` for backward compatibility with callers
    that caught the bare ``ValueError`` older ``load_pipeline`` versions
    raised on a format-version mismatch.
    """

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        self.path = str(path) if path is not None else None


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file is truncated, bit-flipped, or missing."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by an incompatible format version."""

    def __init__(self, found: int, supported: tuple[int, ...], path=None) -> None:
        versions = ", ".join(str(v) for v in supported)
        super().__init__(
            f"unsupported pipeline format version {found} "
            f"(supported: {versions})",
            path=path,
        )
        self.found = found
        self.supported = supported
