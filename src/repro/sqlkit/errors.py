"""Exception hierarchy for the SQL substrate."""


class SqlError(Exception):
    """Base class for all SQL-substrate errors."""


class SqlTokenError(SqlError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """Raised when the parser cannot derive a valid query from the tokens."""


class SqlExecutionError(SqlError):
    """Raised when the executor cannot evaluate a query against a database."""


class SchemaError(SqlError):
    """Raised when a query references tables/columns absent from the schema."""
