"""Exception hierarchy for the SQL substrate and the pipeline layer.

Two branches share the :class:`SqlError` root so callers with an existing
``except SqlError`` net keep catching everything:

- **substrate errors** (tokenize / parse / execute / schema), and
- **pipeline errors** — the structured taxonomy used by the resilience
  layer (:mod:`repro.core.resilience`) to classify stage failures, decide
  retries and drive graceful degradation.
"""


class SqlError(Exception):
    """Base class for all SQL-substrate errors."""


class SqlTokenError(SqlError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """Raised when the parser cannot derive a valid query from the tokens."""


class SqlExecutionError(SqlError):
    """Raised when the executor cannot evaluate a query against a database."""


class SchemaError(SqlError):
    """Raised when a query references tables/columns absent from the schema."""


class ExecutionBudgetError(SqlExecutionError):
    """Raised when a query exhausts its row/step execution budget.

    Subclasses :class:`SqlExecutionError` so existing ``except SqlError``
    handlers (e.g. the EX metric) treat a runaway candidate query as a
    non-match instead of hanging the evaluation.
    """

    def __init__(self, message: str, spent: int, limit: int) -> None:
        super().__init__(f"{message} ({spent} > limit {limit})")
        self.spent = spent
        self.limit = limit


# ----------------------------------------------------------------------
# Pipeline-layer taxonomy (used by repro.core.resilience).


class PipelineError(SqlError):
    """Base class for errors raised by the generate-then-rank pipeline."""


class PipelineStateError(PipelineError, RuntimeError):
    """A pipeline API was used in an invalid lifecycle state.

    Also a :class:`RuntimeError` for backward compatibility with callers
    that caught the bare ``RuntimeError`` older versions raised.
    """


class StageError(PipelineError):
    """A pipeline stage failed as a whole (classifier, ranker, ...)."""

    def __init__(self, stage: str, message: str) -> None:
        super().__init__(f"[{stage}] {message}")
        self.stage = stage


class CandidateError(PipelineError):
    """A single candidate failed processing; isolable, never fatal."""

    def __init__(self, message: str, index: int | None = None) -> None:
        super().__init__(message)
        self.index = index


class TransientError(PipelineError):
    """A retryable fault (flaky backend, timeout); bounded retries apply.

    The resilience layer also honours a truthy ``transient`` attribute on
    any exception, so foreign exception types can opt in without
    subclassing.
    """

    transient = True
