"""Schema-aware semantic analysis of SQL ASTs.

The parser and the AST dataclasses guarantee *syntactic* well-formedness;
this module checks what they cannot: that a query makes sense against a
concrete :class:`~repro.schema.schema.Schema`.  :func:`analyze` walks a
query and returns a list of typed :class:`~repro.sqlkit.diagnostics.
Diagnostic` records — unresolved or ambiguous table/column references,
type-incompatible predicates and join conditions, aggregate misuse
(mixing aggregates with non-grouped columns, HAVING without GROUP BY,
nested aggregates, aggregates in WHERE), set-operation and IN-subquery
arity mismatches, and a few legal-but-suspicious warnings.

The analyzer is **pure and total**: for any AST the dataclasses can
represent it returns the same diagnostic list on every call and never
raises.  Unknown references are reported once and then treated as
unknown-typed so a single bad identifier does not cascade into a wall of
follow-on errors.

The candidate gate in :mod:`repro.core.generation` runs this over every
generated candidate before ranking; statically invalid candidates
(any error-severity diagnostic) are pruned so the ranking stages never
spend budget on queries that cannot be correct.

:func:`walk` is the generic AST traversal the analyzer is built on; it
is exported for other consumers that need node-with-path iteration over
the frozen dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # deferred: schema.schema imports sqlkit.errors
    from repro.schema.schema import Schema, Table

# Column-type literals, mirroring repro.schema.schema.TEXT/NUMBER.  Kept
# as local strings so importing this module from the sqlkit package does
# not create an import cycle with repro.schema.
TEXT = "text"
NUMBER = "number"

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.diagnostics import Diagnostic, make_diagnostic

#: Node types yielded by :func:`walk`.
_AST_TYPES = (
    SelectQuery,
    SetQuery,
    FromClause,
    Condition,
    Predicate,
    OrderItem,
    AggExpr,
    Arith,
    ColumnRef,
    Star,
    Literal,
)


def _join_path(prefix: str, part: str) -> str:
    if not prefix:
        return part
    if part.startswith("["):
        return prefix + part
    return f"{prefix}.{part}"


def walk(node: object, path: str = "") -> Iterator[tuple[str, object]]:
    """Yield ``(path, node)`` for every AST node under *node*.

    Traversal is depth-first in dataclass field order, so the sequence is
    deterministic for a given query.  Paths use dotted field names with
    positional indices (``where.predicates[0].left``).  Non-AST values
    (strings, ints, None) are skipped.
    """
    if isinstance(node, _AST_TYPES):
        yield path, node
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            name = field.name.rstrip("_")  # from_ -> from
            if isinstance(value, tuple):
                for index, item in enumerate(value):
                    yield from walk(
                        item, _join_path(path, f"{name}[{index}]")
                    )
            else:
                yield from walk(value, _join_path(path, name))


# ----------------------------------------------------------------------
# Scopes: what a SELECT's expressions may reference.

#: Column-resolution outcomes.
_OK = "ok"
_UNKNOWN = "unknown"
_AMBIGUOUS = "ambiguous"
_SKIP = "skip"  # resolution impossible for an already-reported reason


class _Scope:
    """Name resolution context for one SELECT query.

    ``tables`` holds ``(lowercase name, {lowercase column -> ctype})``
    pairs precomputed by the analyzer, so resolution is dict lookups
    rather than repeated scans of the schema dataclasses.
    """

    def __init__(
        self,
        tables: tuple[tuple[str, dict[str, str]], ...] = (),
        missing_tables: frozenset[str] = frozenset(),
        derived: dict[str, str | None] | None = None,
        derived_open: bool = False,
    ) -> None:
        self.tables = tables
        self.missing_tables = missing_tables  # lowercase names not in schema
        #: FROM-subquery output: column name -> type (None = unknown type).
        self.derived = derived
        #: True when the derived output cannot be fully enumerated.
        self.derived_open = derived_open

    def table_in_scope(self, name: str) -> bool:
        lowered = name.lower()
        if lowered in self.missing_tables:
            return True  # already reported as unknown; don't cascade
        return any(table_name == lowered for table_name, __ in self.tables)

    def resolve(self, ref: ColumnRef) -> tuple[str | None, str]:
        """Resolve a column reference to ``(type, status)``.

        *type* is ``"text"``/``"number"``/None (unknown); *status* is one
        of ok / unknown / ambiguous / skip.
        """
        column_l = ref.column.lower()
        if self.derived is not None:
            if column_l in self.derived:
                return self.derived[column_l], _OK
            if self.derived_open:
                return None, _SKIP
            return None, _UNKNOWN
        if ref.table is not None:
            table_l = ref.table.lower()
            if table_l in self.missing_tables:
                return None, _SKIP
            for table_name, columns in self.tables:
                if table_name == table_l:
                    ctype = columns.get(column_l)
                    if ctype is not None:
                        return ctype, _OK
                    return None, _UNKNOWN
            return None, _SKIP  # qualifier itself is reported separately
        owners = [
            (name, columns)
            for name, columns in self.tables
            if column_l in columns
        ]
        if len(owners) == 1:
            return owners[0][1][column_l], _OK
        if len(owners) > 1:
            return None, _AMBIGUOUS
        if self.missing_tables:
            return None, _SKIP  # could belong to the unknown table
        return None, _UNKNOWN

    def canonical_key(self, ref: ColumnRef) -> tuple[str, str] | None:
        """A resolution-aware identity for GROUP-BY membership checks."""
        column_l = ref.column.lower()
        if self.derived is not None:
            return ("<derived>", column_l)
        if ref.table is not None:
            return (ref.table.lower(), column_l)
        owners = [name for name, columns in self.tables if column_l in columns]
        if len(owners) == 1:
            return (owners[0], column_l)
        return None

    def width(self) -> int | None:
        """Total column count of the scope (None when not enumerable)."""
        if self.derived is not None:
            if self.derived_open:
                return None
            return len(self.derived)
        if self.missing_tables:
            return None
        return sum(len(columns) for __, columns in self.tables)

    def table_width(self, name: str) -> int | None:
        lowered = name.lower()
        for table_name, columns in self.tables:
            if table_name == lowered:
                return len(columns)
        return None


# ----------------------------------------------------------------------
# Expression helpers.


def _literal_type(literal: Literal) -> str:
    return TEXT if isinstance(literal.value, str) else NUMBER


def _contains_aggregate(expr: ValueExpr) -> bool:
    if isinstance(expr, AggExpr):
        return True
    if isinstance(expr, Arith):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    return False


def _fully_aggregated(expr: ValueExpr) -> bool:
    """Whether *expr* is constant under grouping (no bare column refs)."""
    if isinstance(expr, (AggExpr, Literal)):
        return True
    if isinstance(expr, Arith):
        return _fully_aggregated(expr.left) and _fully_aggregated(expr.right)
    return False


def _expr_columns(expr: ValueExpr) -> Iterator[ColumnRef]:
    if isinstance(expr, ColumnRef):
        yield expr
    elif isinstance(expr, AggExpr):
        yield from _expr_columns(expr.arg)
    elif isinstance(expr, Arith):
        yield from _expr_columns(expr.left)
        yield from _expr_columns(expr.right)


class SemanticAnalyzer:
    """Schema-aware semantic analysis of one or more queries.

    Construct once per schema and call :meth:`analyze` per query; the
    analyzer keeps no per-query state, so one instance may be shared
    across threads.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        #: lowercase table name -> {lowercase column -> ctype}, built once
        #: so per-candidate resolution is pure dict lookups.
        self._tables: dict[str, dict[str, str]] = {
            table.name.lower(): {
                column.name.lower(): column.ctype
                for column in table.columns
            }
            for table in schema.tables
        }

    # ------------------------------------------------------------------
    # Entry points.

    def analyze(self, query: Query) -> list[Diagnostic]:
        """Every diagnostic for *query*, in deterministic walk order."""
        diagnostics: list[Diagnostic] = []
        self._analyze_query(query, "", diagnostics)
        return diagnostics

    def _analyze_query(
        self, query: Query, path: str, out: list[Diagnostic]
    ) -> None:
        if isinstance(query, SetQuery):
            self._analyze_query(query.left, _join_path(path, "left"), out)
            self._analyze_query(query.right, _join_path(path, "right"), out)
            left_arity = self._output_arity(query.left)
            right_arity = self._output_arity(query.right)
            if (
                left_arity is not None
                and right_arity is not None
                and left_arity != right_arity
            ):
                out.append(
                    make_diagnostic(
                        "SQL008",
                        f"{query.op.upper()} sides project {left_arity} vs "
                        f"{right_arity} columns",
                        path or "query",
                    )
                )
            return
        self._analyze_select(query, path, out)

    # ------------------------------------------------------------------
    # Scope construction.

    def _scope_for(
        self, select: SelectQuery, path: str, out: list[Diagnostic]
    ) -> _Scope:
        from_ = select.from_
        if from_.subquery is not None:
            self._analyze_query(
                from_.subquery, _join_path(path, "from.subquery"), out
            )
            derived, open_ = self._derived_columns(from_.subquery)
            return _Scope(derived=derived, derived_open=open_)
        tables: list[tuple[str, dict[str, str]]] = []
        missing: set[str] = set()
        for index, name in enumerate(from_.tables):
            lowered = name.lower()
            columns = self._tables.get(lowered)
            if columns is not None:
                tables.append((lowered, columns))
            else:
                missing.add(lowered)
                out.append(
                    make_diagnostic(
                        "SQL001",
                        f"unknown table {name!r}",
                        _join_path(path, f"from.tables[{index}]"),
                    )
                )
        return _Scope(
            tables=tuple(tables),
            missing_tables=frozenset(missing),
        )

    def _derived_columns(
        self, inner: Query
    ) -> tuple[dict[str, str | None], bool]:
        """Output columns of a FROM-subquery: name -> type, plus openness.

        Unnamed outputs (aggregates, arithmetic) cannot be referenced by
        name in this AST (there are no aliases), so they contribute no
        names; a star output expands to the subquery's own scope when it
        is enumerable and otherwise marks the derived scope open.
        """
        if isinstance(inner, SetQuery):
            # Both sides project the same names in valid queries; use the
            # left side and stay open to avoid cascades on invalid ones.
            derived, __ = self._derived_columns(inner.left)
            return derived, True
        scope = self._scope_for(inner, "", [])  # diagnostics already taken
        derived: dict[str, str | None] = {}
        open_ = False
        for expr in inner.select:
            if isinstance(expr, ColumnRef):
                ctype, status = scope.resolve(expr)
                derived[expr.column.lower()] = (
                    ctype if status == _OK else None
                )
            elif isinstance(expr, Star):
                if expr.table is None and scope.derived is None:
                    for __, columns in scope.tables:
                        derived.update(columns)
                    if scope.missing_tables:
                        open_ = True
                elif (
                    expr.table is not None
                    and expr.table.lower() in self._tables
                ):
                    derived.update(self._tables[expr.table.lower()])
                else:
                    open_ = True
        return derived, open_

    def _output_arity(self, query: Query) -> int | None:
        """How many columns *query* projects (None when star-unresolvable)."""
        if isinstance(query, SetQuery):
            return self._output_arity(query.left)
        scope = self._scope_for(query, "", [])
        arity = 0
        for expr in query.select:
            if isinstance(expr, Star):
                if expr.table is not None:
                    width = scope.table_width(expr.table)
                else:
                    width = scope.width()
                if width is None:
                    return None
                arity += width
            else:
                arity += 1
        return arity

    # ------------------------------------------------------------------
    # Per-select analysis.

    def _analyze_select(
        self, select: SelectQuery, path: str, out: list[Diagnostic]
    ) -> None:
        scope = self._scope_for(select, path, out)
        group_keys = self._group_keys(select, scope, path, out)
        grouped = bool(select.group_by)

        seen_items: set[ValueExpr] = set()
        for index, expr in enumerate(select.select):
            item_path = _join_path(path, f"select[{index}]")
            self._check_expr(expr, scope, item_path, out)
            fingerprint = expr  # frozen dataclasses: hash == structure
            if fingerprint in seen_items:
                out.append(
                    make_diagnostic(
                        "SQL102",
                        "duplicate expression in SELECT list",
                        item_path,
                    )
                )
            seen_items.add(fingerprint)

        self._check_grouping(select, scope, group_keys, path, out)

        for index, join in enumerate(select.from_.joins):
            self._check_join(
                join, scope, _join_path(path, f"from.joins[{index}]"), out
            )

        if select.where is not None:
            self._check_condition(
                select.where,
                scope,
                _join_path(path, "where"),
                out,
                in_where=True,
            )
        if select.having is not None:
            if not grouped:
                out.append(
                    make_diagnostic(
                        "SQL007",
                        "HAVING requires a GROUP BY clause",
                        _join_path(path, "having"),
                    )
                )
            self._check_condition(
                select.having,
                scope,
                _join_path(path, "having"),
                out,
                in_where=False,
                group_keys=group_keys if grouped else None,
            )

        for index, item in enumerate(select.order_by):
            item_path = _join_path(path, f"order_by[{index}]")
            self._check_expr(item.expr, scope, item_path, out)
            self._check_order_item(item, select, scope, group_keys, item_path, out)

        if select.limit is not None and not select.order_by:
            out.append(
                make_diagnostic(
                    "SQL101",
                    "LIMIT without ORDER BY selects arbitrary rows",
                    _join_path(path, "limit"),
                )
            )

    def _group_keys(
        self,
        select: SelectQuery,
        scope: _Scope,
        path: str,
        out: list[Diagnostic],
    ) -> set[tuple[str, str]] | None:
        """Canonical keys of the GROUP BY columns (None = not checkable)."""
        keys: set[tuple[str, str]] = set()
        checkable = True
        for index, ref in enumerate(select.group_by):
            self._check_column(
                ref, scope, _join_path(path, f"group_by[{index}]"), out
            )
            key = scope.canonical_key(ref)
            if key is None:
                checkable = False
            else:
                keys.add(key)
        return keys if checkable else None

    def _check_grouping(
        self,
        select: SelectQuery,
        scope: _Scope,
        group_keys: set[tuple[str, str]] | None,
        path: str,
        out: list[Diagnostic],
    ) -> None:
        """SQL006: aggregate/projection consistency of the SELECT list."""
        grouped = bool(select.group_by)
        any_aggregate = any(
            _contains_aggregate(expr) for expr in select.select
        )
        if not grouped and not any_aggregate:
            return
        for index, expr in enumerate(select.select):
            if _fully_aggregated(expr):
                continue
            item_path = _join_path(path, f"select[{index}]")
            if isinstance(expr, Star):
                out.append(
                    make_diagnostic(
                        "SQL006",
                        "star projection mixed with aggregation",
                        item_path,
                    )
                )
                continue
            if not grouped:
                out.append(
                    make_diagnostic(
                        "SQL006",
                        "non-aggregated column mixed with aggregates "
                        "requires GROUP BY",
                        item_path,
                    )
                )
                continue
            if group_keys is None:
                continue  # unresolvable group keys: don't cascade
            for ref in _expr_columns(expr):
                key = scope.canonical_key(ref)
                if key is not None and key not in group_keys:
                    out.append(
                        make_diagnostic(
                            "SQL006",
                            f"column {ref.column!r} is neither aggregated "
                            "nor in GROUP BY",
                            item_path,
                        )
                    )
                    break

    def _check_order_item(
        self,
        item: OrderItem,
        select: SelectQuery,
        scope: _Scope,
        group_keys: set[tuple[str, str]] | None,
        path: str,
        out: list[Diagnostic],
    ) -> None:
        """SQL010: ORDER BY consistency with the grouping context."""
        grouped = bool(select.group_by)
        if grouped:
            if _fully_aggregated(item.expr):
                return
            if group_keys is None:
                return
            for ref in _expr_columns(item.expr):
                key = scope.canonical_key(ref)
                if key is not None and key not in group_keys:
                    out.append(
                        make_diagnostic(
                            "SQL010",
                            f"ORDER BY column {ref.column!r} is neither "
                            "aggregated nor in GROUP BY",
                            path,
                        )
                    )
                    return
            return
        # Ungrouped query: an aggregate ORDER BY key is only meaningful
        # when the projection itself is aggregated (single-row output).
        if _contains_aggregate(item.expr) and not all(
            _fully_aggregated(expr) for expr in select.select
        ):
            out.append(
                make_diagnostic(
                    "SQL010",
                    "aggregate in ORDER BY of an ungrouped, "
                    "non-aggregate query",
                    path,
                )
            )

    def _check_join(
        self, join, scope: _Scope, path: str, out: list[Diagnostic]
    ) -> None:
        left_type, left_status = self._check_column(
            join.left, scope, _join_path(path, "left"), out
        )
        right_type, right_status = self._check_column(
            join.right, scope, _join_path(path, "right"), out
        )
        if (
            left_status == _OK
            and right_status == _OK
            and left_type is not None
            and right_type is not None
            and left_type != right_type
        ):
            out.append(
                make_diagnostic(
                    "SQL005",
                    f"join compares {join.left.key()} ({left_type}) with "
                    f"{join.right.key()} ({right_type})",
                    path,
                )
            )

    # ------------------------------------------------------------------
    # Conditions and predicates.

    def _check_condition(
        self,
        condition: Condition,
        scope: _Scope,
        path: str,
        out: list[Diagnostic],
        in_where: bool,
        group_keys: set[tuple[str, str]] | None = None,
    ) -> None:
        for index, predicate in enumerate(condition.predicates):
            self._check_predicate(
                predicate,
                scope,
                _join_path(path, f"predicates[{index}]"),
                out,
                in_where=in_where,
                group_keys=group_keys,
            )

    def _check_predicate(
        self,
        predicate: Predicate,
        scope: _Scope,
        path: str,
        out: list[Diagnostic],
        in_where: bool,
        group_keys: set[tuple[str, str]] | None = None,
    ) -> None:
        if in_where and _contains_aggregate(predicate.left):
            out.append(
                make_diagnostic(
                    "SQL012",
                    "aggregate function in WHERE clause",
                    _join_path(path, "left"),
                )
            )
        self._check_expr(predicate.left, scope, _join_path(path, "left"), out)
        left_type = self._expr_type(predicate.left, scope)
        if (
            group_keys is not None
            and not _fully_aggregated(predicate.left)
        ):
            for ref in _expr_columns(predicate.left):
                key = scope.canonical_key(ref)
                if key is not None and key not in group_keys:
                    out.append(
                        make_diagnostic(
                            "SQL006",
                            f"HAVING column {ref.column!r} is neither "
                            "aggregated nor in GROUP BY",
                            _join_path(path, "left"),
                        )
                    )
                    break

        right = predicate.right
        right_path = _join_path(path, "right")
        if isinstance(right, (SelectQuery, SetQuery)):
            self._analyze_query(right, right_path, out)
            arity = self._output_arity(right)
            if arity is not None and arity != 1:
                out.append(
                    make_diagnostic(
                        "SQL009",
                        f"subquery operand projects {arity} columns "
                        "(expected 1)",
                        right_path,
                    )
                )
            right_type = self._subquery_type(right)
            self._check_type_pair(
                predicate, left_type, right_type, path, out
            )
        elif isinstance(right, tuple):
            for index, literal in enumerate(right):
                self._check_type_pair(
                    predicate,
                    left_type,
                    _literal_type(literal),
                    _join_path(right_path, f"[{index}]"),
                    out,
                )
        else:
            if in_where and _contains_aggregate(right):
                out.append(
                    make_diagnostic(
                        "SQL012",
                        "aggregate function in WHERE clause",
                        right_path,
                    )
                )
            self._check_expr(right, scope, right_path, out)
            self._check_type_pair(
                predicate, left_type, self._expr_type(right, scope), path, out
            )
            self._check_self_comparison(predicate, scope, path, out)
        if predicate.right2 is not None:
            right2_path = _join_path(path, "right2")
            self._check_expr(predicate.right2, scope, right2_path, out)
            self._check_type_pair(
                predicate,
                left_type,
                self._expr_type(predicate.right2, scope),
                right2_path,
                out,
            )

    def _check_self_comparison(
        self,
        predicate: Predicate,
        scope: _Scope,
        path: str,
        out: list[Diagnostic],
    ) -> None:
        left, right = predicate.left, predicate.right
        if not (
            isinstance(left, ColumnRef) and isinstance(right, ColumnRef)
        ):
            return
        left_key = scope.canonical_key(left)
        if left_key is not None and left_key == scope.canonical_key(right):
            out.append(
                make_diagnostic(
                    "SQL103",
                    f"column {left.column!r} compared against itself",
                    path,
                )
            )

    def _check_type_pair(
        self,
        predicate: Predicate,
        left_type: str | None,
        right_type: str | None,
        path: str,
        out: list[Diagnostic],
    ) -> None:
        if predicate.op == "like":
            for side, ctype in (("left", left_type), ("right", right_type)):
                if ctype == NUMBER:
                    out.append(
                        make_diagnostic(
                            "SQL004",
                            f"LIKE applied to a number operand ({side})",
                            path,
                        )
                    )
            return
        if (
            left_type is not None
            and right_type is not None
            and left_type != right_type
        ):
            out.append(
                make_diagnostic(
                    "SQL004",
                    f"{predicate.op} compares {left_type} with {right_type}",
                    path,
                )
            )

    # ------------------------------------------------------------------
    # Expression checks and typing.

    def _check_column(
        self, ref: ColumnRef, scope: _Scope, path: str, out: list[Diagnostic]
    ) -> tuple[str | None, str]:
        if ref.table is not None and scope.derived is None:
            if not scope.table_in_scope(ref.table):
                if ref.table.lower() in self._tables:
                    message = f"table {ref.table!r} is not in FROM"
                else:
                    message = f"unknown table {ref.table!r}"
                out.append(make_diagnostic("SQL001", message, path))
                return None, _SKIP
        ctype, status = scope.resolve(ref)
        if status == _UNKNOWN:
            out.append(
                make_diagnostic(
                    "SQL002", f"unknown column {ref.key()!r}", path
                )
            )
        elif status == _AMBIGUOUS:
            column_l = ref.column.lower()
            owners = ", ".join(
                sorted(
                    name
                    for name, columns in scope.tables
                    if column_l in columns
                )
            )
            out.append(
                make_diagnostic(
                    "SQL003",
                    f"column {ref.column!r} is ambiguous (in {owners})",
                    path,
                )
            )
        return ctype, status

    def _check_expr(
        self,
        expr: ValueExpr,
        scope: _Scope,
        path: str,
        out: list[Diagnostic],
        inside_aggregate: bool = False,
    ) -> None:
        if isinstance(expr, ColumnRef):
            self._check_column(expr, scope, path, out)
        elif isinstance(expr, Star):
            if (
                expr.table is not None
                and scope.derived is None
                and not scope.table_in_scope(expr.table)
            ):
                out.append(
                    make_diagnostic(
                        "SQL001", f"unknown table {expr.table!r}", path
                    )
                )
        elif isinstance(expr, AggExpr):
            if inside_aggregate:
                out.append(
                    make_diagnostic(
                        "SQL011",
                        f"aggregate {expr.func} nested inside another "
                        "aggregate",
                        path,
                    )
                )
            if isinstance(expr.arg, Star):
                if expr.func != "count":
                    out.append(
                        make_diagnostic(
                            "SQL004",
                            f"{expr.func}(*) is not a valid aggregate",
                            path,
                        )
                    )
            elif expr.func in ("sum", "avg"):
                arg_type = self._expr_type(expr.arg, scope)
                if arg_type == TEXT:
                    out.append(
                        make_diagnostic(
                            "SQL004",
                            f"{expr.func}() over a text column",
                            path,
                        )
                    )
            self._check_expr(
                expr.arg,
                scope,
                _join_path(path, "arg"),
                out,
                inside_aggregate=True,
            )
        elif isinstance(expr, Arith):
            for side, operand in (("left", expr.left), ("right", expr.right)):
                operand_type = self._expr_type(operand, scope)
                if operand_type == TEXT:
                    out.append(
                        make_diagnostic(
                            "SQL004",
                            f"arithmetic {expr.op!r} over a text operand "
                            f"({side})",
                            _join_path(path, side),
                        )
                    )
                self._check_expr(
                    operand,
                    scope,
                    _join_path(path, side),
                    out,
                    inside_aggregate=inside_aggregate,
                )

    def _expr_type(self, expr: ValueExpr, scope: _Scope) -> str | None:
        if isinstance(expr, Literal):
            return _literal_type(expr)
        if isinstance(expr, ColumnRef):
            ctype, status = scope.resolve(expr)
            return ctype if status == _OK else None
        if isinstance(expr, AggExpr):
            if expr.func in ("count", "sum", "avg"):
                return NUMBER
            if isinstance(expr.arg, Star):
                return None
            return self._expr_type(expr.arg, scope)
        if isinstance(expr, Arith):
            return NUMBER
        return None  # Star

    def _subquery_type(self, query: Query) -> str | None:
        """The type of a single-column subquery's output, when knowable."""
        if isinstance(query, SetQuery):
            return self._subquery_type(query.left)
        if len(query.select) != 1:
            return None
        expr = query.select[0]
        if isinstance(expr, Star):
            return None
        scope = self._scope_for(query, "", [])
        return self._expr_type(expr, scope)


def analyze(query: Query, schema: Schema) -> list[Diagnostic]:
    """Analyze *query* against *schema*; see :class:`SemanticAnalyzer`."""
    return SemanticAnalyzer(schema).analyze(query)
