"""Spider-style exact-set-match (EM) comparison.

Two queries match when each clause matches as a *set* of canonical
components, ignoring literal values (Spider's ``exact matching`` protocol:
"specific values are disregarded").  ORDER BY is compared as an ordered list
because key order is semantically significant there; UNION/INTERSECT operands
are compared in either order (they are commutative), EXCEPT in order.
"""

from __future__ import annotations

from collections import Counter

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    Literal,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.normalize import normalize


def exact_match(predicted: Query, gold: Query) -> bool:
    """Return True when *predicted* exactly matches *gold* under Spider EM."""
    return _match(normalize(predicted), normalize(gold))


def _match(predicted: Query, gold: Query) -> bool:
    if isinstance(gold, SetQuery) or isinstance(predicted, SetQuery):
        if not (isinstance(gold, SetQuery) and isinstance(predicted, SetQuery)):
            return False
        if predicted.op != gold.op:
            return False
        in_order = _match(predicted.left, gold.left) and _match(
            predicted.right, gold.right
        )
        if in_order:
            return True
        if predicted.op in ("union", "intersect"):
            return _match(predicted.left, gold.right) and _match(
                predicted.right, gold.left
            )
        return False
    return _match_select(predicted, gold)


def _match_select(predicted: SelectQuery, gold: SelectQuery) -> bool:
    if predicted.distinct != gold.distinct:
        return False
    if Counter(_expr_key(e) for e in predicted.select) != Counter(
        _expr_key(e) for e in gold.select
    ):
        return False
    if not _match_from(predicted, gold):
        return False
    if not _match_condition(predicted.where, gold.where):
        return False
    if Counter(c.key() for c in predicted.group_by) != Counter(
        c.key() for c in gold.group_by
    ):
        return False
    if not _match_condition(predicted.having, gold.having):
        return False
    pred_order = [( _expr_key(i.expr), i.desc) for i in predicted.order_by]
    gold_order = [(_expr_key(i.expr), i.desc) for i in gold.order_by]
    if pred_order != gold_order:
        return False
    if (predicted.limit is None) != (gold.limit is None):
        return False
    if predicted.limit is not None and predicted.limit != gold.limit:
        return False
    return True


def _match_from(predicted: SelectQuery, gold: SelectQuery) -> bool:
    pred_sub = predicted.from_.subquery
    gold_sub = gold.from_.subquery
    if (pred_sub is None) != (gold_sub is None):
        return False
    if pred_sub is not None and gold_sub is not None:
        return _match(pred_sub, gold_sub)
    return Counter(predicted.from_.tables) == Counter(gold.from_.tables)


def _match_condition(predicted: Condition | None, gold: Condition | None) -> bool:
    if (predicted is None) != (gold is None):
        return False
    if predicted is None or gold is None:
        return True
    if Counter(predicted.connectors) != Counter(gold.connectors):
        return False
    gold_keys = [_predicate_key(p) for p in gold.predicates]
    pred_keys = [_predicate_key(p) for p in predicted.predicates]
    if Counter(pred_keys) != Counter(gold_keys):
        return False
    # Subquery right-hand sides must match structurally, matched greedily.
    gold_subs = [p.right for p in gold.predicates if p.has_subquery]
    pred_subs = [p.right for p in predicted.predicates if p.has_subquery]
    if len(gold_subs) != len(pred_subs):
        return False
    remaining = list(gold_subs)
    for sub in pred_subs:
        for candidate in remaining:
            if _match(sub, candidate):  # type: ignore[arg-type]
                remaining.remove(candidate)
                break
        else:
            return False
    return True


def _expr_key(expr: ValueExpr) -> str:
    """Canonical string identity of an expression, ignoring literal values."""
    if isinstance(expr, Literal):
        return "value"
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, ColumnRef):
        return expr.key()
    if isinstance(expr, AggExpr):
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.func}({distinct}{_expr_key(expr.arg)})"
    if isinstance(expr, Arith):
        return f"({_expr_key(expr.left)} {expr.op} {_expr_key(expr.right)})"
    raise TypeError(f"cannot key expression of type {type(expr).__name__}")


def _predicate_key(predicate: Predicate) -> str:
    """Canonical identity of a predicate with literal values erased."""
    left = _expr_key(predicate.left)
    negation = "not " if predicate.negated else ""
    if isinstance(predicate.right, (SelectQuery, SetQuery)):
        rhs = "<subquery>"
    elif isinstance(predicate.right, tuple):
        rhs = "value"
    else:
        rhs = _expr_key(predicate.right)
    return f"{left} {negation}{predicate.op} {rhs}"
