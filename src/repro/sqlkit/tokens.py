"""SQL tokenizer.

Produces a flat list of :class:`Token` objects for the Spider-compatible SQL
subset used throughout the project.  Keywords are case-insensitive and get
canonicalised to lowercase; identifiers keep their original spelling but are
matched case-insensitively downstream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sqlkit.errors import SqlTokenError

KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "join", "on", "as", "where", "group",
        "by", "having", "order", "limit", "asc", "desc", "and", "or", "not",
        "in", "like", "between", "union", "intersect", "except", "count",
        "sum", "avg", "min", "max", "is", "null", "exists",
    }
)

# Token kinds.
KW = "kw"           # keyword
IDENT = "ident"     # identifier (possibly qualified later via '.')
NUMBER = "number"   # numeric literal
STRING = "string"   # quoted string literal
OP = "op"           # comparison/arithmetic operator
PUNCT = "punct"     # parentheses, commas, dot, star

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>|\+|-|/)
  | (?P<punct>[(),.;*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token: its kind, canonical value and source offset."""

    kind: str
    value: str
    position: int

    def is_kw(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind == KW and self.value in names


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql* into a list of tokens.

    Raises:
        SqlTokenError: on any character sequence outside the lexical grammar.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(sql)
    while pos < length:
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlTokenError(f"unexpected character {sql[pos]!r}", pos)
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KW, lowered, match.start()))
            else:
                tokens.append(Token(IDENT, text, match.start()))
        elif match.lastgroup == "string":
            inner = text[1:-1]
            quote = text[0]
            inner = inner.replace(quote * 2, quote)
            tokens.append(Token(STRING, inner, match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token(NUMBER, text, match.start()))
        elif match.lastgroup == "op":
            value = "!=" if text == "<>" else text
            tokens.append(Token(OP, value, match.start()))
        else:
            if text == ";":
                break
            tokens.append(Token(PUNCT, text, match.start()))
    return tokens
