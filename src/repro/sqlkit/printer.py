"""Canonical SQL rendering of the AST.

``to_sql`` produces a normal form: uppercase keywords, lowercase-preserving
identifiers, no table aliases, explicit join conditions when present.  The
printer and parser round-trip: ``parse_sql(to_sql(q)) == q`` for any AST the
generator or parser can produce.
"""

from __future__ import annotations

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)

_SET_OP_KW = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}


def to_sql(query: Query) -> str:
    """Render *query* as canonical SQL text."""
    if isinstance(query, SetQuery):
        left = to_sql(query.left)
        right = to_sql(query.right)
        return f"{left} {_SET_OP_KW[query.op]} {right}"
    return _render_select(query)


def render_expr(expr: ValueExpr) -> str:
    """Render a value expression."""
    if isinstance(expr, Literal):
        return expr.render()
    if isinstance(expr, Star):
        if expr.table is not None:
            return f"{expr.table}.*"
        return "*"
    if isinstance(expr, ColumnRef):
        if expr.table is not None:
            return f"{expr.table}.{expr.column}"
        return expr.column
    if isinstance(expr, AggExpr):
        inner = render_expr(expr.arg)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.func}({inner})"
    if isinstance(expr, Arith):
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    raise TypeError(f"cannot render expression of type {type(expr).__name__}")


def render_predicate(predicate: Predicate) -> str:
    """Render a single predicate."""
    left = render_expr(predicate.left)
    op = predicate.op
    negation = "NOT " if predicate.negated else ""
    if op == "between":
        low = render_expr(predicate.right)  # type: ignore[arg-type]
        high = render_expr(predicate.right2)  # type: ignore[arg-type]
        return f"{left} {negation}BETWEEN {low} AND {high}"
    if isinstance(predicate.right, (SelectQuery, SetQuery)):
        rhs = f"({to_sql(predicate.right)})"
    elif isinstance(predicate.right, tuple):
        rhs = "(" + ", ".join(lit.render() for lit in predicate.right) + ")"
    else:
        rhs = render_expr(predicate.right)
    if op == "in":
        return f"{left} {negation}IN {rhs}"
    if op == "like":
        return f"{left} {negation}LIKE {rhs}"
    if predicate.negated and op == "=":
        return f"{left} != {rhs}"
    if predicate.negated:
        return f"NOT {left} {op} {rhs}"
    return f"{left} {op} {rhs}"


def render_condition(condition: Condition) -> str:
    """Render a flat boolean condition."""
    parts = [render_predicate(condition.predicates[0])]
    for connector, predicate in zip(
        condition.connectors, condition.predicates[1:]
    ):
        parts.append(connector.upper())
        parts.append(render_predicate(predicate))
    return " ".join(parts)


def _render_from(from_: FromClause) -> str:
    if from_.subquery is not None:
        return f"({to_sql(from_.subquery)})"
    pieces = [from_.tables[0]]
    used_joins = list(from_.joins)
    seen = {from_.tables[0].lower()}
    for table in from_.tables[1:]:
        pieces.append(f"JOIN {table}")
        seen.add(table.lower())
        # Attach join conditions whose tables are all in scope and not used.
        attached = []
        for join in used_joins:
            sides = {
                (join.left.table or "").lower(),
                (join.right.table or "").lower(),
            }
            if table.lower() in sides and sides <= seen:
                attached.append(join)
        if attached:
            conds = " AND ".join(
                f"{render_expr(j.left)} = {render_expr(j.right)}" for j in attached
            )
            pieces.append(f"ON {conds}")
            for join in attached:
                used_joins.remove(join)
    return " ".join(pieces)


def _render_select(query: SelectQuery) -> str:
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(render_expr(e) for e in query.select))
    parts.append("FROM")
    parts.append(_render_from(query.from_))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(render_condition(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expr(c) for c in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(render_condition(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_render_order_item(i) for i in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def _render_order_item(item: OrderItem) -> str:
    rendered = render_expr(item.expr)
    if item.desc:
        return f"{rendered} DESC"
    return rendered
