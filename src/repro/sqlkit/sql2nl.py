"""Rule-based SQL-to-NL phrase generation (Table 2 of the paper).

Each SQL unit type is linked to a template populated with element labels
taken from the unit; the result is a short NL description.  A
:class:`Vocabulary` supplies human-readable names for tables/columns; the
default :class:`IdentifierVocabulary` prettifies raw identifiers
(``pet_age`` -> ``pet age``).  Benchmark schemas provide richer vocabularies.
"""

from __future__ import annotations

from typing import Protocol

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Literal,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.units import SqlUnit, UnitType, decompose


class Vocabulary(Protocol):
    """Provides NL names for schema elements."""

    def table_phrase(self, table: str) -> str:
        """NL phrase for a table."""

    def column_phrase(self, column: str, table: str | None = None) -> str:
        """NL phrase for a column."""


class IdentifierVocabulary:
    """Fallback vocabulary: prettify raw identifiers."""

    def table_phrase(self, table: str) -> str:
        return _prettify(table)

    def column_phrase(self, column: str, table: str | None = None) -> str:
        return _prettify(column)


def _prettify(identifier: str) -> str:
    return identifier.replace("_", " ").strip().lower()


_DEFAULT_VOCAB = IdentifierVocabulary()

_AGG_PHRASES = {
    "count": "the number of",
    "sum": "the total",
    "avg": "the average",
    "min": "the minimum",
    "max": "the maximum",
}

_OP_PHRASES = {
    "=": "is",
    "!=": "is not",
    "<": "is less than",
    ">": "is greater than",
    "<=": "is at most",
    ">=": "is at least",
    "like": "contains",
    "in": "is one of",
    "between": "is between",
}

_SET_OP_PHRASES = {
    "union": "or also",
    "intersect": "that also",
    "except": "but not",
}


def describe_expr(expr: ValueExpr, vocab: Vocabulary = _DEFAULT_VOCAB) -> str:
    """NL phrase for a value expression."""
    if isinstance(expr, Literal):
        return str(expr.value)
    if isinstance(expr, Star):
        return "all records"
    if isinstance(expr, ColumnRef):
        return vocab.column_phrase(expr.column, expr.table)
    if isinstance(expr, AggExpr):
        if isinstance(expr.arg, Star):
            return "the number of records"
        inner = describe_expr(expr.arg, vocab)
        distinct = "different " if expr.distinct else ""
        return f"{_AGG_PHRASES[expr.func]} {distinct}{inner}"
    if isinstance(expr, Arith):
        op_word = {"+": "plus", "-": "minus", "*": "times", "/": "divided by"}
        left = describe_expr(expr.left, vocab)
        right = describe_expr(expr.right, vocab)
        return f"{left} {op_word[expr.op]} {right}"
    raise TypeError(f"cannot describe expression of type {type(expr).__name__}")


def describe_predicate(
    predicate: Predicate, vocab: Vocabulary = _DEFAULT_VOCAB
) -> str:
    """NL phrase for one predicate."""
    left = describe_expr(predicate.left, vocab)
    negation = "not " if predicate.negated else ""
    if isinstance(predicate.right, (SelectQuery, SetQuery)):
        inner = describe_query(predicate.right, vocab)
        if predicate.op == "in":
            return f"whose {left} is {negation}among those where {inner}"
        return f"whose {left} {negation}{_OP_PHRASES[predicate.op]} ({inner})"
    if isinstance(predicate.right, tuple):
        values = ", ".join(str(lit.value) for lit in predicate.right)
        return f"whose {left} is {negation}one of {values}"
    if predicate.op == "between":
        low = describe_expr(predicate.right, vocab)
        high = describe_expr(predicate.right2, vocab)  # type: ignore[arg-type]
        return f"whose {left} is {negation}between {low} and {high}"
    right = describe_expr(predicate.right, vocab)
    return f"whose {left} {negation}{_OP_PHRASES[predicate.op]} {right}"


def describe_unit(unit: SqlUnit, vocab: Vocabulary = _DEFAULT_VOCAB) -> str:
    """NL description of one SQL unit (Table 2 templates)."""
    if unit.unit_type is UnitType.PROJECTION:
        return f"find {describe_expr(unit.payload, vocab)}"
    if unit.unit_type is UnitType.JOIN:
        tables = unit.payload
        phrases = [vocab.table_phrase(t) for t in tables]
        if len(phrases) == 1:
            return f"the {phrases[0]}"
        head, *rest = phrases
        return f"the {head} with " + " and ".join(rest)
    if unit.unit_type is UnitType.PREDICATE:
        payload, set_op = unit.payload
        if set_op is not None:
            inner = describe_query(payload, vocab)
            return f"{_SET_OP_PHRASES[set_op]} those where {inner}"
        return describe_predicate(payload, vocab)
    if unit.unit_type is UnitType.GROUP:
        columns = ", ".join(vocab.column_phrase(c.column, c.table) for c in unit.payload)
        return f"for each {columns}"
    if unit.unit_type is UnitType.SORT:
        order_items, limit = unit.payload
        parts = []
        for item in order_items:
            direction = "highest" if item.desc else "lowest"
            parts.append(f"the {direction} {describe_expr(item.expr, vocab)}")
        phrase = " and ".join(parts) if parts else "the records"
        if limit is not None:
            if limit == 1:
                return f"{phrase} one"
            return f"{phrase} top {limit}"
        ordered = "sorted by " + ", ".join(
            describe_expr(i.expr, vocab) for i in order_items
        )
        return ordered
    raise ValueError(f"unknown unit type: {unit.unit_type}")


def describe_query(query: Query, vocab: Vocabulary = _DEFAULT_VOCAB) -> str:
    """Sentence-level NL description: the unit phrases stitched together."""
    units = decompose(query)
    return "; ".join(describe_unit(u, vocab) for u in units)


def unit_phrases(query: Query, vocab: Vocabulary = _DEFAULT_VOCAB) -> list[str]:
    """Phrase-level NL descriptions, one per unit, in decomposition order."""
    return [describe_unit(u, vocab) for u in decompose(query)]
