"""SQL substrate: tokenizer, parser, printer, comparison, hardness, units.

This package implements, from scratch, every SQL-processing facility MetaSQL
depends on: parsing SQL text into a Spider-compatible AST, printing canonical
SQL, Spider exact-set-match comparison, the SQL hardness criteria (levels and
MetaSQL's numeric rating), decomposition of a query into semantic units, and
the rule-based SQL-unit-to-NL templates used by the second-stage ranker.

It also hosts the static-analysis layer (PR 4): a generic AST walker and a
schema-aware semantic analyzer (:mod:`repro.sqlkit.analyze`) emitting typed
:class:`~repro.sqlkit.diagnostics.Diagnostic` records with stable codes.
"""

from repro.sqlkit.analyze import SemanticAnalyzer, analyze, walk
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    JoinCond,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.compare import exact_match
from repro.sqlkit.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    error_codes,
    has_errors,
    render_diagnostics,
)
from repro.sqlkit.errors import SqlError, SqlParseError, SqlTokenError
from repro.sqlkit.hardness import Hardness, hardness_level, hardness_rating
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql
from repro.sqlkit.sql2nl import describe_query, describe_unit
from repro.sqlkit.units import SqlUnit, UnitType, decompose

__all__ = [
    "AggExpr",
    "Arith",
    "ColumnRef",
    "Condition",
    "FromClause",
    "JoinCond",
    "Literal",
    "OrderItem",
    "Predicate",
    "Query",
    "SelectQuery",
    "SetQuery",
    "Star",
    "ValueExpr",
    "SqlError",
    "SqlParseError",
    "SqlTokenError",
    "Hardness",
    "hardness_level",
    "hardness_rating",
    "parse_sql",
    "to_sql",
    "exact_match",
    "SqlUnit",
    "UnitType",
    "decompose",
    "describe_query",
    "describe_unit",
    "SemanticAnalyzer",
    "analyze",
    "walk",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "error_codes",
    "has_errors",
    "render_diagnostics",
]
