"""Recursive-descent SQL parser for the Spider-compatible subset.

The parser accepts Spider-style SQL, including ``AS T1`` table aliases and
``JOIN`` clauses with or without ``ON`` conditions.  Aliases are resolved to
real table names during parsing, so the produced AST is alias-free and two
queries that differ only in alias naming compare equal.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sqlkit import tokens as tk
from repro.sqlkit.ast import (
    AGG_FUNCS,
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    JoinCond,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.errors import SqlParseError


def parse_sql(sql: str) -> Query:
    """Parse *sql* into a :class:`Query` AST.

    Raises:
        SqlParseError: when the text is not a valid query in the subset.
        SqlTokenError: on lexical errors.
    """
    parser = _Parser(tk.tokenize(sql))
    query = parser.parse_query()
    if not parser.at_end():
        token = parser.peek()
        raise SqlParseError(f"trailing input at token {token.value!r}")
    return query


class _Parser:
    """Stateful token-stream parser."""

    def __init__(self, tokens: list[tk.Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers.

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    def peek(self, offset: int = 0) -> tk.Token | None:
        index = self._pos + offset
        if index >= len(self._tokens):
            return None
        return self._tokens[index]

    def advance(self) -> tk.Token:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of input")
        self._pos += 1
        return token

    def accept_kw(self, *names: str) -> tk.Token | None:
        token = self.peek()
        if token is not None and token.is_kw(*names):
            return self.advance()
        return None

    def expect_kw(self, name: str) -> tk.Token:
        token = self.accept_kw(name)
        if token is None:
            found = self.peek()
            got = found.value if found is not None else "end of input"
            raise SqlParseError(f"expected {name.upper()}, got {got!r}")
        return token

    def accept_punct(self, value: str) -> tk.Token | None:
        token = self.peek()
        if token is not None and token.kind == tk.PUNCT and token.value == value:
            return self.advance()
        return None

    def expect_punct(self, value: str) -> tk.Token:
        token = self.accept_punct(value)
        if token is None:
            found = self.peek()
            got = found.value if found is not None else "end of input"
            raise SqlParseError(f"expected {value!r}, got {got!r}")
        return token

    def expect_ident(self) -> str:
        token = self.peek()
        if token is None or token.kind != tk.IDENT:
            got = token.value if token is not None else "end of input"
            raise SqlParseError(f"expected identifier, got {got!r}")
        self.advance()
        return token.value

    # ------------------------------------------------------------------
    # Grammar productions.

    def parse_query(self) -> Query:
        query: Query = self.parse_select()
        while True:
            setop = self.accept_kw("union", "intersect", "except")
            if setop is None:
                return query
            right = self.parse_select()
            query = SetQuery(op=setop.value, left=query, right=right)

    def parse_select(self) -> SelectQuery:
        self.expect_kw("select")
        distinct = self.accept_kw("distinct") is not None
        select_items = [self.parse_value_expr()]
        while self.accept_punct(","):
            select_items.append(self.parse_value_expr())

        self.expect_kw("from")
        from_clause, aliases = self.parse_from()

        where = None
        if self.accept_kw("where"):
            where = self.parse_condition()

        group_by: tuple[ColumnRef, ...] = ()
        having = None
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_cols = [self._as_column(self.parse_value_expr())]
            while self.accept_punct(","):
                group_cols.append(self._as_column(self.parse_value_expr()))
            group_by = tuple(group_cols)
            if self.accept_kw("having"):
                having = self.parse_condition()

        order_by: tuple[OrderItem, ...] = ()
        if self.accept_kw("order"):
            self.expect_kw("by")
            items = [self.parse_order_item()]
            while self.accept_punct(","):
                items.append(self.parse_order_item())
            order_by = tuple(items)

        limit = None
        if self.accept_kw("limit"):
            token = self.advance()
            if token.kind != tk.NUMBER:
                raise SqlParseError(f"expected LIMIT count, got {token.value!r}")
            limit = int(float(token.value))

        query = SelectQuery(
            select=tuple(select_items),
            from_=from_clause,
            distinct=distinct,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )
        return _resolve_aliases(query, aliases)

    def parse_from(self) -> tuple[FromClause, dict[str, str]]:
        """Parse the FROM clause, returning it plus the alias->table map."""
        if self.accept_punct("("):
            subquery = self.parse_query()
            self.expect_punct(")")
            aliases: dict[str, str] = {}
            if self.accept_kw("as"):
                self.expect_ident()  # subquery alias is dropped
            return FromClause(subquery=subquery), aliases

        tables: list[str] = []
        joins: list[JoinCond] = []
        aliases = {}

        def table_ref() -> None:
            name = self.expect_ident()
            tables.append(name)
            if self.accept_kw("as"):
                aliases[self.expect_ident().lower()] = name
            else:
                nxt = self.peek()
                if nxt is not None and nxt.kind == tk.IDENT:
                    aliases[self.expect_ident().lower()] = name

        table_ref()
        while self.accept_kw("join") or self.accept_punct(","):
            table_ref()
            if self.accept_kw("on"):
                left = self._as_column(self.parse_term())
                op = self.advance()
                if op.kind != tk.OP or op.value != "=":
                    raise SqlParseError("join conditions must be equi-joins")
                right = self._as_column(self.parse_term())
                joins.append(JoinCond(left=left, right=right))
                # Spider sometimes chains AND-ed join conditions.
                while self.accept_kw("and"):
                    left = self._as_column(self.parse_term())
                    op = self.advance()
                    if op.kind != tk.OP or op.value != "=":
                        raise SqlParseError("join conditions must be equi-joins")
                    right = self._as_column(self.parse_term())
                    joins.append(JoinCond(left=left, right=right))
        return FromClause(tables=tuple(tables), joins=tuple(joins)), aliases

    def parse_condition(self) -> Condition:
        predicates = [self.parse_predicate()]
        connectors: list[str] = []
        while True:
            connector = self.accept_kw("and", "or")
            if connector is None:
                break
            connectors.append(connector.value)
            predicates.append(self.parse_predicate())
        return Condition(predicates=tuple(predicates), connectors=tuple(connectors))

    def parse_predicate(self) -> Predicate:
        negated = self.accept_kw("not") is not None
        left = self.parse_value_expr()
        if self.accept_kw("not"):
            negated = True
        op_token = self.peek()
        if op_token is None:
            raise SqlParseError("expected comparison operator")
        if op_token.kind == tk.OP:
            self.advance()
            op = op_token.value
            right = self._parse_comparison_rhs()
            return Predicate(left=left, op=op, right=right, negated=negated)
        if op_token.is_kw("like"):
            self.advance()
            right = self.parse_term()
            return Predicate(left=left, op="like", right=right, negated=negated)
        if op_token.is_kw("in"):
            self.advance()
            self.expect_punct("(")
            nxt = self.peek()
            if nxt is not None and nxt.is_kw("select"):
                sub = self.parse_query()
                self.expect_punct(")")
                return Predicate(left=left, op="in", right=sub, negated=negated)
            literals = [self._parse_literal()]
            while self.accept_punct(","):
                literals.append(self._parse_literal())
            self.expect_punct(")")
            return Predicate(
                left=left, op="in", right=tuple(literals), negated=negated
            )
        if op_token.is_kw("between"):
            self.advance()
            low = self.parse_term()
            self.expect_kw("and")
            high = self.parse_term()
            return Predicate(
                left=left, op="between", right=low, right2=high, negated=negated
            )
        raise SqlParseError(f"expected comparison operator, got {op_token.value!r}")

    def _parse_comparison_rhs(self):
        if self.accept_punct("("):
            nxt = self.peek()
            if nxt is not None and nxt.is_kw("select"):
                sub = self.parse_query()
                self.expect_punct(")")
                return sub
            expr = self.parse_value_expr()
            self.expect_punct(")")
            return expr
        return self.parse_value_expr()

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_value_expr()
        desc = False
        if self.accept_kw("desc"):
            desc = True
        else:
            self.accept_kw("asc")
        return OrderItem(expr=expr, desc=desc)

    def parse_value_expr(self) -> ValueExpr:
        expr = self.parse_term()
        while True:
            token = self.peek()
            if token is None:
                return expr
            if token.kind == tk.OP and token.value in ("+", "-", "/"):
                self.advance()
                right = self.parse_term()
                expr = Arith(op=token.value, left=expr, right=right)
            elif (
                token.kind == tk.PUNCT
                and token.value == "*"
                and isinstance(expr, (ColumnRef, AggExpr, Arith, Literal))
                and self._looks_like_arith_star()
            ):
                self.advance()
                right = self.parse_term()
                expr = Arith(op="*", left=expr, right=right)
            else:
                return expr

    def _looks_like_arith_star(self) -> bool:
        """Disambiguate ``a * b`` (arith) from ``count(*)`` / ``SELECT *``."""
        nxt = self.peek(1)
        return nxt is not None and nxt.kind in (tk.IDENT, tk.NUMBER, tk.STRING)

    def parse_term(self) -> ValueExpr:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of input in expression")
        if token.kind == tk.PUNCT and token.value == "*":
            self.advance()
            return Star()
        if token.kind == tk.KW and token.value in AGG_FUNCS:
            self.advance()
            self.expect_punct("(")
            distinct = self.accept_kw("distinct") is not None
            if self.accept_punct("*"):
                arg: ValueExpr = Star()
            else:
                arg = self.parse_value_expr()
            self.expect_punct(")")
            return AggExpr(func=token.value, arg=arg, distinct=distinct)
        if token.kind == tk.IDENT:
            self.advance()
            if self.accept_punct("."):
                if self.accept_punct("*"):
                    return Star(table=token.value)
                column = self.expect_ident()
                return ColumnRef(column=column, table=token.value)
            return ColumnRef(column=token.value)
        if token.kind in (tk.NUMBER, tk.STRING):
            return self._parse_literal()
        if token.kind == tk.OP and token.value == "-":
            self.advance()
            literal = self._parse_literal()
            if not isinstance(literal.value, (int, float)):
                raise SqlParseError("negation applies to numbers only")
            return Literal(value=-literal.value)
        if token.kind == tk.PUNCT and token.value == "(":
            self.advance()
            expr = self.parse_value_expr()
            self.expect_punct(")")
            return expr
        raise SqlParseError(f"unexpected token {token.value!r} in expression")

    def _parse_literal(self) -> Literal:
        token = self.advance()
        if token.kind == tk.STRING:
            return Literal(value=token.value)
        if token.kind == tk.NUMBER:
            if "." in token.value:
                return Literal(value=float(token.value))
            return Literal(value=int(token.value))
        raise SqlParseError(f"expected literal, got {token.value!r}")

    @staticmethod
    def _as_column(expr: ValueExpr) -> ColumnRef:
        if not isinstance(expr, ColumnRef):
            raise SqlParseError(f"expected column reference, got {expr!r}")
        return expr


# ----------------------------------------------------------------------
# Alias resolution.


def _resolve_aliases(query: SelectQuery, aliases: dict[str, str]) -> SelectQuery:
    """Rewrite alias table qualifiers to real table names."""
    if not aliases:
        return query

    def fix_col(ref: ColumnRef) -> ColumnRef:
        if ref.table is not None and ref.table.lower() in aliases:
            return replace(ref, table=aliases[ref.table.lower()])
        return ref

    def fix_expr(expr: ValueExpr) -> ValueExpr:
        if isinstance(expr, ColumnRef):
            return fix_col(expr)
        if isinstance(expr, Star):
            if expr.table is not None and expr.table.lower() in aliases:
                return replace(expr, table=aliases[expr.table.lower()])
            return expr
        if isinstance(expr, AggExpr):
            return replace(expr, arg=fix_expr(expr.arg))
        if isinstance(expr, Arith):
            return replace(expr, left=fix_expr(expr.left), right=fix_expr(expr.right))
        return expr

    def fix_condition(condition: Condition | None) -> Condition | None:
        if condition is None:
            return None
        fixed = []
        for predicate in condition.predicates:
            right = predicate.right
            if isinstance(right, (Literal, ColumnRef, Star, AggExpr, Arith)):
                right = fix_expr(right)
            right2 = predicate.right2
            if right2 is not None:
                right2 = fix_expr(right2)
            fixed.append(
                replace(
                    predicate, left=fix_expr(predicate.left), right=right, right2=right2
                )
            )
        return replace(condition, predicates=tuple(fixed))

    from_ = query.from_
    if from_.tables:
        from_ = replace(
            from_,
            joins=tuple(
                JoinCond(left=fix_col(j.left), right=fix_col(j.right))
                for j in from_.joins
            ),
        )
    return replace(
        query,
        select=tuple(fix_expr(e) for e in query.select),
        from_=from_,
        where=fix_condition(query.where),
        group_by=tuple(fix_col(c) for c in query.group_by),
        having=fix_condition(query.having),
        order_by=tuple(
            replace(item, expr=fix_expr(item.expr)) for item in query.order_by
        ),
    )
