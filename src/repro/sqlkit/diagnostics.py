"""Typed diagnostics emitted by the schema-aware semantic analyzer.

Every finding of :mod:`repro.sqlkit.analyze` is a :class:`Diagnostic`
carrying a stable code (``SQL001``, ``SQL002``, ...), a severity, a
human-readable message and the AST path of the offending node, so
consumers (the candidate gate, eval reports, tests) can key on codes
without parsing messages.

Codes are partitioned by severity: ``SQL0xx`` are **errors** (the query
cannot be valid against the schema) and ``SQL1xx`` are **warnings**
(legal but suspicious constructs).  The inventory is documented in
DESIGN.md §11 and frozen by a golden-rendering test; new codes may be
added, existing codes must never be renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Severity levels, ordered from least to most severe.
WARNING = "warning"
ERROR = "error"
SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True)
class DiagnosticCode:
    """One registered diagnostic code: identity, severity and meaning."""

    code: str  # stable identifier, e.g. "SQL002"
    name: str  # short kebab-case slug, e.g. "unknown-column"
    severity: str  # default severity for the code
    summary: str  # one-line description for docs / --list output


#: The full inventory of codes the analyzer can emit.
DIAGNOSTIC_CODES: dict[str, DiagnosticCode] = {
    spec.code: spec
    for spec in (
        DiagnosticCode(
            "SQL001",
            "unknown-table",
            ERROR,
            "FROM or a column qualifier references a table the schema "
            "does not define",
        ),
        DiagnosticCode(
            "SQL002",
            "unknown-column",
            ERROR,
            "a column reference resolves to no column of any table in "
            "scope",
        ),
        DiagnosticCode(
            "SQL003",
            "ambiguous-column",
            ERROR,
            "an unqualified column name exists in more than one table in "
            "scope",
        ),
        DiagnosticCode(
            "SQL004",
            "type-mismatch",
            ERROR,
            "a predicate or arithmetic expression combines incompatible "
            "text/number operands",
        ),
        DiagnosticCode(
            "SQL005",
            "join-type-mismatch",
            ERROR,
            "an equi-join condition compares columns of different types",
        ),
        DiagnosticCode(
            "SQL006",
            "ungrouped-projection",
            ERROR,
            "the SELECT list mixes aggregates with columns that are not "
            "in GROUP BY",
        ),
        DiagnosticCode(
            "SQL007",
            "having-without-group-by",
            ERROR,
            "HAVING appears on a query with no GROUP BY clause",
        ),
        DiagnosticCode(
            "SQL008",
            "set-arity-mismatch",
            ERROR,
            "the two sides of a UNION/INTERSECT/EXCEPT project different "
            "column counts",
        ),
        DiagnosticCode(
            "SQL009",
            "subquery-arity",
            ERROR,
            "a subquery used as a predicate operand projects more than "
            "one column",
        ),
        DiagnosticCode(
            "SQL010",
            "ungrouped-order-by",
            ERROR,
            "ORDER BY references a non-aggregated column outside GROUP BY "
            "on a grouped query",
        ),
        DiagnosticCode(
            "SQL011",
            "nested-aggregate",
            ERROR,
            "an aggregate function is applied to another aggregate",
        ),
        DiagnosticCode(
            "SQL012",
            "aggregate-in-where",
            ERROR,
            "an aggregate function appears in the WHERE clause",
        ),
        DiagnosticCode(
            "SQL101",
            "limit-without-order-by",
            WARNING,
            "LIMIT without ORDER BY returns an arbitrary subset of rows",
        ),
        DiagnosticCode(
            "SQL102",
            "duplicate-select-item",
            WARNING,
            "the SELECT list repeats an identical expression",
        ),
        DiagnosticCode(
            "SQL103",
            "self-comparison",
            WARNING,
            "a predicate compares a column against itself",
        ),
    )
}

#: Codes whose presence makes a query statically invalid.
ERROR_CODES: frozenset[str] = frozenset(
    code
    for code, spec in DIAGNOSTIC_CODES.items()
    if spec.severity == ERROR
)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to an AST path.

    ``path`` is a dotted/indexed locator into the analyzed query
    (``"select[1]"``, ``"where.predicates[0].right"``, ``"left.having"``
    for set queries), stable across runs for identical input.
    """

    code: str
    severity: str
    message: str
    path: str = ""

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unregistered diagnostic code: {self.code}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity}")

    @property
    def name(self) -> str:
        """The code's kebab-case slug (``unknown-column``)."""
        return DIAGNOSTIC_CODES[self.code].name

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
        }

    def render(self) -> str:
        """Compiler-style one-line rendering."""
        location = f" at {self.path}" if self.path else ""
        return f"{self.severity}[{self.code}] {self.message}{location}"


def make_diagnostic(code: str, message: str, path: str = "") -> Diagnostic:
    """A :class:`Diagnostic` with the code's registered severity."""
    return Diagnostic(
        code=code,
        severity=DIAGNOSTIC_CODES[code].severity,
        message=message,
        path=path,
    )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic in the collection is error-severity."""
    return any(d.is_error for d in diagnostics)


def error_codes(diagnostics: Iterable[Diagnostic]) -> list[str]:
    """The codes of the error-severity diagnostics, in emission order."""
    return [d.code for d in diagnostics if d.is_error]


def render_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """Multi-line rendering of a diagnostic list (one finding per line)."""
    lines = [diagnostic.render() for diagnostic in diagnostics]
    if not lines:
        return "no diagnostics"
    return "\n".join(lines)
