"""Query canonicalisation helpers.

``normalize`` rewrites a query into a canonical structural form so that
structural equality (``==`` on the frozen AST) and the exact-match comparison
in :mod:`repro.sqlkit.compare` behave predictably:

- identifiers are lowercased,
- ``x = y`` with ``negated=True`` becomes ``x != y``,
- string literals are lowercased (Spider's EM ignores values entirely, but
  execution comparison is case-insensitive for values in our benchmarks).
"""

from __future__ import annotations

from dataclasses import replace

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    JoinCond,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)


def normalize(query: Query) -> Query:
    """Return the canonical form of *query*."""
    if isinstance(query, SetQuery):
        return SetQuery(
            op=query.op, left=normalize(query.left), right=normalize(query.right)
        )
    return _normalize_select(query)


def _normalize_select(query: SelectQuery) -> SelectQuery:
    from_ = query.from_
    if from_.subquery is not None:
        from_ = FromClause(subquery=normalize(from_.subquery))
    else:
        from_ = FromClause(
            tables=tuple(t.lower() for t in from_.tables),
            joins=tuple(
                JoinCond(left=_norm_col(j.left), right=_norm_col(j.right))
                for j in from_.joins
            ),
        )
    return SelectQuery(
        select=tuple(_norm_expr(e) for e in query.select),
        from_=from_,
        distinct=query.distinct,
        where=_norm_condition(query.where),
        group_by=tuple(_norm_col(c) for c in query.group_by),
        having=_norm_condition(query.having),
        order_by=tuple(
            OrderItem(expr=_norm_expr(i.expr), desc=i.desc) for i in query.order_by
        ),
        limit=query.limit,
    )


def _norm_col(ref: ColumnRef) -> ColumnRef:
    table = ref.table.lower() if ref.table is not None else None
    return ColumnRef(column=ref.column.lower(), table=table)


def _norm_expr(expr: ValueExpr) -> ValueExpr:
    if isinstance(expr, ColumnRef):
        return _norm_col(expr)
    if isinstance(expr, Star):
        if expr.table is not None:
            return Star(table=expr.table.lower())
        return expr
    if isinstance(expr, AggExpr):
        return replace(expr, arg=_norm_expr(expr.arg))
    if isinstance(expr, Arith):
        return Arith(op=expr.op, left=_norm_expr(expr.left), right=_norm_expr(expr.right))
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return Literal(value=expr.value.lower())
    return expr


def _norm_condition(condition: Condition | None) -> Condition | None:
    if condition is None:
        return None
    predicates = []
    for predicate in condition.predicates:
        right = predicate.right
        if isinstance(right, (SelectQuery, SetQuery)):
            right = normalize(right)
        elif isinstance(right, tuple):
            right = tuple(_norm_expr(lit) for lit in right)
        else:
            right = _norm_expr(right)
        right2 = _norm_expr(predicate.right2) if predicate.right2 is not None else None
        op, negated = predicate.op, predicate.negated
        if op == "=" and negated:
            op, negated = "!=", False
        predicates.append(
            Predicate(
                left=_norm_expr(predicate.left),
                op=op,
                right=right,
                right2=right2,
                negated=negated,
            )
        )
    return Condition(predicates=tuple(predicates), connectors=condition.connectors)
