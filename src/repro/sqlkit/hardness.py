"""SQL hardness: Spider difficulty levels and MetaSQL's numeric rating.

Two related notions, both defined over the AST:

- :func:`hardness_level` reimplements the Spider benchmark's four-way
  component-counting criteria (Easy / Medium / Hard / Extra Hard).
- :func:`hardness_rating` computes MetaSQL's integer *hardness value*
  metadata.  The paper's worked examples are not mutually consistent, so the
  per-component scores below are fitted to match as many of the published
  examples as possible (see DESIGN.md §4): a WHERE-only query rates 200, a
  PROJECT+EXCEPT query rates 400, a WHERE+subquery query rates 450.
"""

from __future__ import annotations

import enum

from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    Condition,
    Query,
    SelectQuery,
    SetQuery,
)


class Hardness(str, enum.Enum):
    """Spider's four difficulty levels."""

    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"
    EXTRA = "extra"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Rating contribution per SQL component (see module docstring).
RATING_BASE = 100
RATING_SCORES = {
    "join": 50,
    "where": 100,
    "extra_predicate": 50,
    "group": 100,
    "having": 50,
    "order": 50,
    "limit": 25,
    "subquery": 250,
    "setop": 300,
    "agg": 25,
}


def hardness_rating(query: Query) -> int:
    """MetaSQL hardness value: base 100 plus per-component scores.

    The final value is rounded to the nearest 25 (scores are multiples of 25
    already, so this is a no-op guard against future drift).
    """
    rating = RATING_BASE + _rating_components(query)
    return int(round(rating / 25.0) * 25)


def _rating_components(query: Query) -> int:
    if isinstance(query, SetQuery):
        return (
            RATING_SCORES["setop"]
            + _rating_components(query.left)
            + _rating_components(query.right)
        )
    score = 0
    if len(query.from_.tables) > 1:
        score += RATING_SCORES["join"] * (len(query.from_.tables) - 1)
    if query.from_.subquery is not None:
        score += RATING_SCORES["subquery"]
        score += _rating_components(query.from_.subquery)
    if query.where is not None:
        score += RATING_SCORES["where"]
        score += RATING_SCORES["extra_predicate"] * (len(query.where.predicates) - 1)
        score += _condition_subquery_score(query.where)
    if query.group_by:
        score += RATING_SCORES["group"]
    if query.having is not None:
        score += RATING_SCORES["having"]
        score += _condition_subquery_score(query.having)
    if query.order_by:
        score += RATING_SCORES["order"]
    if query.limit is not None:
        score += RATING_SCORES["limit"]
    aggs = _count_aggs(query)
    if aggs > 1:
        score += RATING_SCORES["agg"] * (aggs - 1)
    return score


def _condition_subquery_score(condition: Condition) -> int:
    score = 0
    for predicate in condition.predicates:
        if predicate.has_subquery:
            score += RATING_SCORES["subquery"]
            score += _rating_components(predicate.right)  # type: ignore[arg-type]
    return score


def hardness_level(query: Query) -> Hardness:
    """Spider's Easy/Medium/Hard/Extra-Hard classification."""
    comp1 = _count_component1(query)
    comp2 = _count_component2(query)
    others = _count_others(query)

    if comp1 <= 1 and others == 0 and comp2 == 0:
        return Hardness.EASY
    if (others <= 2 and comp1 <= 1 and comp2 == 0) or (
        comp1 <= 2 and others < 2 and comp2 == 0
    ):
        return Hardness.MEDIUM
    if (
        (others > 2 and comp1 <= 2 and comp2 == 0)
        or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
        or (comp1 <= 1 and others == 0 and comp2 <= 1)
    ):
        return Hardness.HARD
    return Hardness.EXTRA


def _main_selects(query: Query):
    """Top-level selects (set-operation branches), not predicate subqueries."""
    if isinstance(query, SetQuery):
        yield from _main_selects(query.left)
        yield from _main_selects(query.right)
    else:
        yield query


def _count_component1(query: Query) -> int:
    """WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR, LIKE occurrences."""
    count = 0
    for select in _main_selects(query):
        if select.where is not None:
            count += 1
            count += sum(1 for c in select.where.connectors if c == "or")
            count += sum(1 for p in select.where.predicates if p.op == "like")
        if select.group_by:
            count += 1
        if select.order_by:
            count += 1
        if select.limit is not None:
            count += 1
        if len(select.from_.tables) > 1:
            count += 1
    return count


def _count_component2(query: Query) -> int:
    """EXCEPT, UNION, INTERSECT and nested subqueries."""
    count = 0
    if isinstance(query, SetQuery):
        count += 1
        count += _count_component2(query.left)
        count += _count_component2(query.right)
        return count
    if query.from_.subquery is not None:
        count += 1 + _count_component2(query.from_.subquery)
    for condition in (query.where, query.having):
        if condition is None:
            continue
        for predicate in condition.predicates:
            if predicate.has_subquery:
                count += 1 + _count_component2(predicate.right)  # type: ignore[arg-type]
    return count


def _count_others(query: Query) -> int:
    """Number of 'other' complexity factors exceeding the simple baseline."""
    count = 0
    for select in _main_selects(query):
        if _count_aggs(select) > 1:
            count += 1
        if len(select.select) > 1:
            count += 1
        if select.where is not None and len(select.where.predicates) > 1:
            count += 1
        if len(select.group_by) > 1:
            count += 1
    return count


def _count_aggs(select: SelectQuery) -> int:
    count = 0
    for expr in select.select:
        count += _aggs_in_expr(expr)
    for item in select.order_by:
        count += _aggs_in_expr(item.expr)
    if select.having is not None:
        for predicate in select.having.predicates:
            count += _aggs_in_expr(predicate.left)
    return count


def _aggs_in_expr(expr) -> int:
    if isinstance(expr, AggExpr):
        return 1
    if isinstance(expr, Arith):
        return _aggs_in_expr(expr.left) + _aggs_in_expr(expr.right)
    return 0
