"""The tenant-addressed dispatch seam and the hot-swap protocol.

:class:`Router` sits between :class:`~repro.serve.service.TranslationService`
and the pipelines: every submit/translate call resolves a tenant id to a
:class:`~repro.tenancy.registry.Tenant`, charges its admission quota, and
leases its shard for exactly one translation.  The seam is deliberately
thin — ``Router.single(pipeline)`` wraps one pipeline as the ``default``
tenant with no quota, and that path is bit-identical to calling the
pipeline directly (same object, no extra work per call beyond one lock'd
pointer read) — so continuous batching (ROADMAP item 1) can later ride
on the same interface.

Zero-downtime hot swap (:meth:`Router.swap`):

1. Load the replacement shard from the snapshot *source* — a checkpoint
   directory, a :class:`~repro.serve.checkpoint.CheckpointStore` (last
   good snapshot wins), a ready pipeline object, or a zero-arg loader
   callable (tests).  Loading happens entirely *outside* the shard lock:
   traffic keeps flowing on the current epoch.
2. Validate the result (it must be a trained pipeline).  A corrupt or
   torn snapshot raises the checkpoint taxonomy here, which the router
   converts into an **automatic rollback**: the previous epoch keeps
   serving, ``metasql_tenant_swap_total{outcome="rollback"}`` is
   incremented, a fault-free ``tenant_swap`` journal event is appended,
   and a typed :class:`~repro.sqlkit.errors.TenantSwapError` propagates
   to the operator.
3. Atomically install the new shard behind the epoch/refcount guard:
   in-flight requests finish on the old shard, new requests see the new
   one (``outcome="ok"``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.core.resilience import fire
from repro.obs.metrics import get_registry
from repro.sqlkit.errors import (
    SqlError,
    TenantSwapError,
    UnknownTenant,
)
from repro.tenancy.quota import TenantQuota
from repro.tenancy.registry import ShardLease, Tenant, TenantRegistry

#: The tenant id ``Router.single`` registers and unaddressed calls use.
DEFAULT_TENANT = "default"


class Router:
    """Tenant-addressed dispatch over a :class:`TenantRegistry`."""

    def __init__(
        self,
        registry: TenantRegistry | None = None,
        journal=None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else TenantRegistry()
        self.journal = journal
        self._clock = clock if clock is not None else time.monotonic
        #: Optional observer called with every swap event record (the
        #: serving layer hooks this to flight-record rollbacks); raising
        #: observers are swallowed — routing never fails on telemetry.
        self.on_event: Callable[[dict], None] | None = None

    @classmethod
    def single(cls, pipeline: object, journal=None) -> "Router":
        """A router serving one unmetered ``default`` tenant.

        This is the single-tenant fast path the service wraps a bare
        pipeline in: no quota, no extra admission work, bit-identical
        translate output.
        """
        router = cls(journal=journal)
        router.registry.register(DEFAULT_TENANT, pipeline)
        return router

    # ------------------------------------------------------------------
    # Resolution and dispatch.

    def resolve(self, tenant_id: str | None = None) -> Tenant:
        """The tenant for *tenant_id* (None: the default/only tenant)."""
        if tenant_id is None:
            if DEFAULT_TENANT in self.registry:
                return self.registry.get(DEFAULT_TENANT)
            tenants = self.registry.tenants()
            if len(tenants) == 1:
                return tenants[0]
            raise UnknownTenant(
                "<unaddressed>", known=self.registry.ids()
            )
        return self.registry.get(tenant_id)

    def admit(self, tenant_id: str | None = None) -> Tenant:
        """Resolve + charge the tenant's quota (see :meth:`Tenant.admit`)."""
        tenant = self.resolve(tenant_id)
        tenant.admit()
        return tenant

    @contextmanager
    def lease(self, tenant_id: str | None = None) -> Iterator[ShardLease]:
        """Lease the tenant's current shard for one translation."""
        tenant = self.resolve(tenant_id)
        with tenant.shard.acquire() as lease:
            yield lease

    @contextmanager
    def lease_group(
        self, tenant_id: str | None, size: int
    ) -> Iterator[ShardLease]:
        """Lease the tenant's shard once for a *size*-member batch.

        The group shares one atomically captured ``(pipeline, epoch)``
        pair — a hot swap never tears a batch across epochs — while the
        epoch's in-flight refcount covers every member, so
        :meth:`swap`'s drain still waits for all of them.
        """
        tenant = self.resolve(tenant_id)
        with tenant.shard.acquire(count=size) as lease:
            yield lease

    @property
    def default_pipeline(self) -> object | None:
        """The default tenant's current shard, when one exists."""
        try:
            return self.resolve(None).shard.pipeline
        except UnknownTenant:
            return None

    def register(
        self,
        tenant_id: str,
        pipeline: object,
        quota: TenantQuota | None = None,
        store: object | None = None,
        schema: object | None = None,
        lexicon: object | None = None,
    ) -> Tenant:
        """Convenience passthrough to the registry."""
        return self.registry.register(
            tenant_id,
            pipeline,
            quota=quota,
            store=store,
            schema=schema,
            lexicon=lexicon,
        )

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant health sections, keyed by tenant id."""
        return self.registry.snapshot()

    def any_breaker_open(self) -> bool:
        """Whether any tenant's board has an open breaker (readiness)."""
        for tenant in self.registry.tenants():
            board = tenant.breakers
            if board is not None and board.any_open():
                return True
        return False

    # ------------------------------------------------------------------
    # Hot swap.

    def swap(
        self,
        tenant_id: str,
        source: object,
        config=None,
        drain_timeout: float | None = None,
    ) -> int:
        """Atomically replace *tenant_id*'s shard from *source*.

        Returns the new shard epoch on success.  On a corrupt/unloadable
        snapshot the previous epoch keeps serving (automatic rollback)
        and a typed :class:`TenantSwapError` is raised.  When
        *drain_timeout* is given, the call additionally waits up to that
        many seconds for the old epoch's in-flight requests to finish
        (pure bookkeeping — correctness never needs the wait).
        """
        tenant = self.resolve(tenant_id)
        previous_epoch = tenant.shard.epoch
        try:
            fire("router.swap")
            pipeline = self._load(source, config)
            if not getattr(pipeline, "_trained", True):
                raise TenantSwapError(
                    tenant.tenant_id,
                    previous_epoch,
                    "snapshot restored an untrained pipeline",
                )
        except (SqlError, OSError) as exc:
            self._record_swap(
                tenant, "rollback", previous_epoch, error=str(exc)
            )
            if isinstance(exc, TenantSwapError):
                raise
            raise TenantSwapError(
                tenant.tenant_id, previous_epoch, str(exc)
            ) from exc
        epoch = tenant.shard.install(pipeline)
        self._record_swap(tenant, "ok", epoch)
        if drain_timeout is not None:
            tenant.shard.drain(previous_epoch, timeout=drain_timeout)
        return epoch

    @staticmethod
    def _load(source: object, config) -> object:
        """Materialize a pipeline from any accepted snapshot *source*.

        Imports are lazy so :mod:`repro.tenancy` never imports
        :mod:`repro.serve` at module scope (the service imports us).
        """
        if hasattr(source, "translate_ranked_report"):
            return source  # a ready shard
        if callable(source):
            return source()  # injectable loader (tests, custom stores)
        from repro.serve.checkpoint import CheckpointStore

        if isinstance(source, CheckpointStore):
            return source.load_latest(config)
        import pathlib

        from repro.core.persist import load_pipeline

        path = pathlib.Path(source)
        if (path / "manifest.json").is_file():
            return load_pipeline(path, config)
        return CheckpointStore(path).load_latest(config)

    def _record_swap(
        self,
        tenant: Tenant,
        outcome: str,
        epoch: int,
        error: str | None = None,
    ) -> None:
        """Swap bookkeeping: tenant history, metrics, journal event.

        The journal event is deliberately :class:`FaultRecord`-free — a
        rolled-back swap is the protocol *working*, not a pipeline
        fault — and journalling is best-effort (it never fails a swap).
        """
        now = self._clock()
        tenant.last_swap_at = now
        tenant.last_swap_outcome = outcome
        if outcome == "ok":
            tenant.swaps_ok += 1
        else:
            tenant.swaps_rolled_back += 1
        get_registry().counter(
            "metasql_tenant_swap_total",
            "Shard hot-swap attempts by tenant and outcome.",
            labelnames=("tenant", "outcome"),
        ).labels(tenant=tenant.tenant_id, outcome=outcome).inc()
        record = {
            "event": "tenant_swap",
            "tenant": tenant.tenant_id,
            "outcome": outcome,
            "epoch": epoch,
        }
        if error is not None:
            record["error"] = error
        if self.on_event is not None:
            try:
                self.on_event(dict(record))
            except Exception:  # repolint: allow[broad-except] — observers never fail a swap
                pass
        if self.journal is None:
            return
        try:
            self.journal.append(record)
        except Exception:  # repolint: allow[broad-except] — journalling never fails a swap
            pass
