"""Multi-tenant registry, routing seam, and per-tenant fault isolation.

One process, many schema worlds (ROADMAP item 4): a
:class:`TenantRegistry` maps tenant id -> (schema, lexicon, trained
ranker shard, checkpoint store); a :class:`Router` dispatches every
tenant-addressed translate call through an epoch/refcount
:class:`ShardGuard` so a shard can be hot-swapped with zero downtime;
:class:`TenantQuota` bounds each tenant's admission rate and queue share
so a noisy tenant is shed with typed
:class:`~repro.sqlkit.errors.TenantOverloaded` instead of browning out
its neighbours.  Per-tenant breaker boards come for free: every tenant
owns its own pipeline, hence its own
:class:`~repro.core.resilience.BreakerBoard`.
"""

from repro.tenancy.quota import TenantQuota, TokenBucket
from repro.tenancy.registry import (
    ShardGuard,
    ShardLease,
    Tenant,
    TenantRegistry,
)
from repro.tenancy.router import DEFAULT_TENANT, Router

__all__ = [
    "DEFAULT_TENANT",
    "Router",
    "ShardGuard",
    "ShardLease",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
]
