"""Per-tenant admission quotas: token buckets and bounded queue shares.

The serving layer's global bounded queue (PR 2) protects the *process*;
these primitives protect the *neighbours*.  Each tenant may carry a
:class:`TenantQuota` — a sustained token-bucket admission rate plus a
bounded share of the global queue — enforced at submit time, before the
request ever touches the shared queue.  A tenant that floods gets typed
:class:`~repro.sqlkit.errors.TenantOverloaded` rejections while every
other tenant's admission path is untouched.

Both knobs are optional and default to "unmetered", so the single-tenant
fast path pays nothing (``TenantQuota()`` admits everything and the
default tenant created by ``Router.single`` carries no quota at all).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.devtools.lockdep import new_lock
from repro.sqlkit.errors import ConfigError


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (both limits optional).

    - ``rate``/``burst`` — a token bucket: sustained admissions per
      second with a ``burst``-deep reservoir, so short spikes pass and
      sustained floods are shed.
    - ``max_share`` — the tenant's bounded share of the global queue:
      at most this many of the tenant's requests may be queued or in
      flight at once, so even a tenant whose bucket is generous cannot
      monopolize the shared worker pool.
    """

    #: Sustained admissions per second; None leaves the rate unmetered.
    rate: float | None = None
    #: Token-bucket capacity (ignored when ``rate`` is None).
    burst: int = 8
    #: Max queued + in-flight requests for the tenant; None = unbounded.
    max_share: int | None = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(
                f"tenant quota rate must be positive, got {self.rate!r}"
            )
        if self.burst < 1:
            raise ConfigError(
                f"tenant quota burst must be >= 1, got {self.burst!r}"
            )
        if self.max_share is not None and self.max_share < 1:
            raise ConfigError(
                f"tenant quota max_share must be >= 1, got {self.max_share!r}"
            )

    @property
    def unmetered(self) -> bool:
        """Whether this quota admits everything (no limits set)."""
        return self.rate is None and self.max_share is None


class TokenBucket:
    """Thread-safe token bucket with an injectable monotonic clock.

    Tokens refill continuously at ``rate`` per second up to ``burst``;
    :meth:`try_acquire` is non-blocking — admission control sheds, it
    never waits.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"token bucket rate must be positive: {rate!r}")
        if burst <= 0:
            raise ConfigError(f"token bucket burst must be positive: {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = new_lock("TokenBucket._lock")
        self._tokens = float(burst)  # start full: cold tenants get a burst
        self._refilled_at = self._clock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take *amount* tokens if available; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def available(self) -> float:
        """Current token count (after refill), for health snapshots."""
        with self._lock:
            self._refill_locked()
            return self._tokens
