"""Tenant registry: per-tenant shards behind an epoch/refcount guard.

A *tenant* is one schema world: its database schema, lexicon, trained
ranker shard (a ``MetaSQL`` pipeline — duck-typed, so tests can register
stubs), optional :class:`~repro.serve.checkpoint.CheckpointStore`, and
admission quota.  The registry maps tenant id to that bundle; the
:class:`~repro.tenancy.router.Router` dispatches translate calls through
it.

The hot-swap correctness core lives here, in :class:`ShardGuard`:

- Every request takes a :class:`ShardLease` — a ``(pipeline, epoch)``
  pair captured atomically under the guard's lock, with the epoch's
  in-flight refcount incremented for the lease's lifetime.
- :meth:`ShardGuard.install` atomically replaces the pipeline and bumps
  the epoch.  In-flight leases keep their old pipeline object (Python
  references keep it alive), so they finish on the epoch they started
  on; every lease taken after the install sees the new epoch.  No lease
  can ever observe a torn ``(old pipeline, new epoch)`` pair.
- :meth:`ShardGuard.drain` lets a swapper wait until an old epoch's
  refcount hits zero (bookkeeping/tests; correctness never needs it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.devtools.lockdep import new_condition, new_lock
from repro.sqlkit.errors import ConfigError, TenantOverloaded, UnknownTenant
from repro.tenancy.quota import TenantQuota, TokenBucket


@dataclass(frozen=True)
class ShardLease:
    """One request's atomically captured view of a tenant's shard."""

    pipeline: object
    epoch: int


class ShardGuard:
    """Epoch/refcount guard around one tenant's pipeline shard."""

    def __init__(self, pipeline: object, epoch: int = 1) -> None:
        self._cond = new_condition("ShardGuard._cond")
        self._pipeline = pipeline
        self._epoch = epoch
        self._inflight: dict[int, int] = {}

    @property
    def epoch(self) -> int:
        with self._cond:
            return self._epoch

    @property
    def pipeline(self) -> object:
        """The current shard (health/introspection; requests lease)."""
        with self._cond:
            return self._pipeline

    @contextmanager
    def acquire(self, count: int = 1) -> Iterator[ShardLease]:
        """Lease the current ``(pipeline, epoch)`` pair.

        *count* is how many requests the lease covers: a serving
        micro-batch leases its whole group with one atomic capture —
        every member runs on the same ``(pipeline, epoch)`` pair even
        if a hot swap lands mid-batch — while the epoch's in-flight
        refcount still tracks each member, so :meth:`drain` waits for
        all of them.
        """
        if count < 1:
            raise ValueError(f"lease count must be >= 1, got {count!r}")
        with self._cond:
            lease = ShardLease(pipeline=self._pipeline, epoch=self._epoch)
            self._inflight[lease.epoch] = (
                self._inflight.get(lease.epoch, 0) + count
            )
        try:
            yield lease
        finally:
            with self._cond:
                remaining = self._inflight.get(lease.epoch, 0) - count
                if remaining <= 0:
                    self._inflight.pop(lease.epoch, None)
                else:
                    self._inflight[lease.epoch] = remaining
                self._cond.notify_all()

    def install(self, pipeline: object) -> int:
        """Atomically replace the shard; returns the new epoch."""
        with self._cond:
            self._epoch += 1
            self._pipeline = pipeline
            return self._epoch

    def inflight(self, epoch: int | None = None) -> int:
        """Active leases for one epoch (None: across all epochs)."""
        with self._cond:
            if epoch is not None:
                return self._inflight.get(epoch, 0)
            return sum(self._inflight.values())

    def drain(self, epoch: int, timeout: float | None = None) -> bool:
        """Wait for *epoch*'s in-flight count to reach zero."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._inflight.get(epoch, 0) == 0, timeout=timeout
            )


class Tenant:
    """One registered tenant: shard guard, quota state, swap history."""

    def __init__(
        self,
        tenant_id: str,
        pipeline: object,
        quota: TenantQuota | None = None,
        store: object | None = None,
        schema: object | None = None,
        lexicon: object | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if not tenant_id:
            raise ConfigError("tenant id must be a non-empty string")
        self.tenant_id = tenant_id
        self.shard = ShardGuard(pipeline)
        self.quota = quota or TenantQuota()
        self.store = store
        self.schema = schema
        self.lexicon = lexicon
        self._clock = clock if clock is not None else time.monotonic
        self._bucket = (
            TokenBucket(self.quota.rate, self.quota.burst, clock=self._clock)
            if self.quota.rate is not None
            else None
        )
        self._lock = new_lock("Tenant._lock")
        self._pending = 0  # admitted requests: queued + in flight
        self._rejected = 0  # quota rejections (rate or share)
        self.swaps_ok = 0
        self.swaps_rolled_back = 0
        self.last_swap_at: float | None = None
        self.last_swap_outcome: str | None = None

    # ------------------------------------------------------------------
    # Admission (called by the service's submit path).

    def admit(self) -> None:
        """Charge one admission against the tenant's quota.

        Raises :class:`TenantOverloaded` when the token bucket is dry or
        the tenant's bounded queue share is full; on success the
        tenant's pending count is incremented and the caller *must*
        eventually call :meth:`release` (the service does so when the
        request finishes or fails to enqueue).
        """
        with self._lock:
            if (
                self.quota.max_share is not None
                and self._pending >= self.quota.max_share
            ):
                self._rejected += 1
                raise TenantOverloaded(
                    self.tenant_id,
                    "queue-share",
                    f"{self._pending}/{self.quota.max_share} in flight",
                )
        if self._bucket is not None and not self._bucket.try_acquire():
            with self._lock:
                self._rejected += 1
            raise TenantOverloaded(
                self.tenant_id,
                "rate",
                f"sustained rate above {self.quota.rate}/s",
            )
        with self._lock:
            self._pending += 1

    def release(self) -> None:
        """Return one admitted slot (request finished or never enqueued)."""
        with self._lock:
            self._pending = max(0, self._pending - 1)

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def breakers(self):
        """The current shard's breaker board (per-tenant by construction:
        each tenant holds its own pipeline, hence its own board)."""
        return getattr(self.shard.pipeline, "breakers", None)

    def snapshot(self) -> dict:
        """Per-tenant health section (JSON-ready)."""
        board = self.breakers
        states = board.states() if board is not None else {}
        with self._lock:
            pending, rejected = self._pending, self._rejected
        return {
            "epoch": self.shard.epoch,
            "in_flight": self.shard.inflight(),
            "pending": pending,
            "max_share": self.quota.max_share,
            "rate": self.quota.rate,
            "rejected": rejected,
            "breakers": states,
            "breaker_open": any(state == "open" for state in states.values()),
            "swaps_ok": self.swaps_ok,
            "swaps_rolled_back": self.swaps_rolled_back,
            "last_swap_at": self.last_swap_at,
            "last_swap_outcome": self.last_swap_outcome,
        }


class TenantRegistry:
    """Thread-safe map of tenant id -> :class:`Tenant`."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._lock = new_lock("TenantRegistry._lock")
        self._tenants: dict[str, Tenant] = {}

    def register(
        self,
        tenant_id: str,
        pipeline: object,
        quota: TenantQuota | None = None,
        store: object | None = None,
        schema: object | None = None,
        lexicon: object | None = None,
    ) -> Tenant:
        """Add a tenant; duplicate ids are a configuration error."""
        tenant = Tenant(
            tenant_id,
            pipeline,
            quota=quota,
            store=store,
            schema=schema,
            lexicon=lexicon,
            clock=self._clock,
        )
        with self._lock:
            if tenant_id in self._tenants:
                raise ConfigError(f"tenant {tenant_id!r} already registered")
            self._tenants[tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenant(tenant_id, known=self.ids())
        return tenant

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant health sections, keyed by tenant id."""
        return {
            tenant.tenant_id: tenant.snapshot() for tenant in self.tenants()
        }
