"""ASCII table rendering for benchmark reports.

Each experiment prints its measured rows next to the paper's published rows
so the reproduction's *shape* can be checked at a glance.
"""

from __future__ import annotations


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a simple aligned ASCII table."""
    columns = len(headers)
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(
            len(headers[i]),
            max((len(row[i]) for row in cells), default=0),
        )
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(headers[i].ljust(widths[i]) for i in range(columns))
    )
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell * 100:.1f}" if 0 <= cell <= 1 else f"{cell:.1f}"
    return str(cell)


def pct(value: float) -> str:
    """Format a [0,1] fraction as a percentage string."""
    return f"{value * 100:.1f}"


def delta(measured: float, baseline: float) -> str:
    """Render an improvement annotation like the paper's subscripts."""
    diff = (measured - baseline) * 100
    sign = "+" if diff >= 0 else ""
    return f"({sign}{diff:.1f})"
