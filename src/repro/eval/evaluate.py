"""Dataset-level evaluation of base models and MetaSQL pipelines.

Produces an :class:`EvalResult` holding one :class:`EvalRecord` per example
(ranked exact-match flags, EX flag, hardness level, statement-type tags), so
every paper table's breakdown can be computed from one evaluation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resilience import TranslationReport
from repro.data.dataset import Dataset, Example
from repro.eval.metrics import execution_match, mrr, precision_at_k
from repro.models.base import TranslationModel
from repro.sqlkit.ast import Query, SetQuery, iter_selects
from repro.sqlkit.compare import exact_match
from repro.sqlkit.hardness import Hardness


@dataclass
class EvalRecord:
    """Evaluation outcome for one example."""

    example: Example
    predictions: list[Query]
    exact_flags: list[bool]
    execution_hit: bool
    #: Resilience report for the translation (MetaSQL pipelines only).
    report: TranslationReport | None = None

    @property
    def em(self) -> bool:
        return bool(self.exact_flags and self.exact_flags[0])

    @property
    def degraded(self) -> bool:
        return self.report is not None and self.report.degraded

    @property
    def hardness(self) -> Hardness:
        return self.example.hardness


@dataclass
class EvalResult:
    """Aggregated evaluation over a dataset."""

    name: str
    records: list[EvalRecord] = field(default_factory=list)

    @property
    def em(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.em for r in self.records) / len(self.records)

    @property
    def ex(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.execution_hit for r in self.records) / len(self.records)

    def precision_at(self, k: int) -> float:
        return precision_at_k([r.exact_flags for r in self.records], k)

    @property
    def mrr(self) -> float:
        return mrr([r.exact_flags for r in self.records])

    @property
    def degraded_rate(self) -> float:
        """Fraction of examples whose translation degraded a stage."""
        if not self.records:
            return 0.0
        return sum(r.degraded for r in self.records) / len(self.records)

    def fault_counts(self) -> dict[str, int]:
        """Number of fault records per logical stage, across all examples."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.report is None:
                continue
            for fault in record.report.faults:
                counts[fault.stage] = counts.get(fault.stage, 0) + 1
        return counts

    @property
    def lint_rejected_total(self) -> int:
        """Candidates pruned by the semantic-lint gate, across all examples."""
        return sum(
            r.report.lint_rejected
            for r in self.records
            if r.report is not None
        )

    def lint_reject_counts(self) -> dict[str, int]:
        """Lint rejections per diagnostic code, across all examples."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.report is None:
                continue
            for code, count in record.report.lint_codes.items():
                counts[code] = counts.get(code, 0) + count
        return counts

    @property
    def verify_demoted_total(self) -> int:
        """Candidates demoted/pruned by the verify stage, across examples."""
        return sum(
            r.report.verify_demoted
            for r in self.records
            if r.report is not None
        )

    def verify_outcome_counts(self) -> dict[str, int]:
        """Verify-stage execution outcomes, summed across all examples."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.report is None:
                continue
            for outcome, count in record.report.verify_outcomes.items():
                counts[outcome] = counts.get(outcome, 0) + count
        return counts

    @property
    def repair_attempts_total(self) -> int:
        """Metadata-perturbed regeneration attempts, across all examples."""
        return sum(
            r.report.repair_attempts
            for r in self.records
            if r.report is not None
        )

    @property
    def repair_success_rate(self) -> float:
        """Fraction of repair-attempting translations that succeeded."""
        attempted = [
            r
            for r in self.records
            if r.report is not None and r.report.repair_attempts
        ]
        if not attempted:
            return 0.0
        return sum(
            r.report.repair_succeeded for r in attempted
        ) / len(attempted)

    def em_by_hardness(self) -> dict[str, float]:
        buckets: dict[str, list[bool]] = {h.value: [] for h in Hardness}
        for record in self.records:
            buckets[record.hardness.value].append(record.em)
        return {
            level: (sum(flags) / len(flags) if flags else 0.0)
            for level, flags in buckets.items()
        }

    def ex_by_hardness(self) -> dict[str, float]:
        """EX rate per hardness bucket (the axis bench_verify deltas)."""
        buckets: dict[str, list[bool]] = {h.value: [] for h in Hardness}
        for record in self.records:
            buckets[record.hardness.value].append(record.execution_hit)
        return {
            level: (sum(flags) / len(flags) if flags else 0.0)
            for level, flags in buckets.items()
        }

    def em_by_statement_type(self) -> dict[str, float]:
        buckets: dict[str, list[bool]] = {
            t: [] for t in ("orderby", "groupby", "nested", "negation")
        }
        for record in self.records:
            for tag in statement_types(record.example.sql):
                buckets[tag].append(record.em)
        return {
            tag: (sum(flags) / len(flags) if flags else 0.0)
            for tag, flags in buckets.items()
        }

    def counts_by_statement_type(self) -> dict[str, int]:
        counts = {t: 0 for t in ("orderby", "groupby", "nested", "negation")}
        for record in self.records:
            for tag in statement_types(record.example.sql):
                counts[tag] += 1
        return counts


def reports_degraded_rate(reports) -> float:
    """Fraction of :class:`TranslationReport`s that degraded a stage.

    The same notion as :attr:`EvalResult.degraded_rate`, usable over any
    report collection — the serving layer feeds its rolling window of
    recent reports through this for health snapshots.
    """
    reports = list(reports)
    if not reports:
        return 0.0
    return sum(report.degraded for report in reports) / len(reports)


def statement_types(query: Query) -> set[str]:
    """Table 6 statement-type tags for a query."""
    tags: set[str] = set()
    queries = [query]
    if isinstance(query, SetQuery):
        tags.add("nested")
    for select in iter_selects(query):
        if select.order_by:
            tags.add("orderby")
        if select.group_by:
            tags.add("groupby")
        if select.from_.subquery is not None:
            tags.add("nested")
        for condition in (select.where, select.having):
            if condition is None:
                continue
            for predicate in condition.predicates:
                if predicate.has_subquery:
                    tags.add("nested")
                if predicate.negated or predicate.op == "!=":
                    tags.add("negation")
    return tags


def evaluate_model(
    model: TranslationModel,
    dataset: Dataset,
    beam_size: int = 5,
    compute_execution: bool = True,
    limit: int | None = None,
) -> EvalResult:
    """Evaluate a base translation model (standard beam decoding)."""
    result = EvalResult(name=f"{model.name}@{dataset.name}")
    examples = dataset.examples[:limit] if limit else dataset.examples
    for example in examples:
        db = dataset.database(example.db_id)
        candidates = model.translate(example.question, db, beam_size=beam_size)
        predictions = [c.query for c in candidates]
        flags = [exact_match(p, example.sql) for p in predictions[:5]]
        execution_hit = bool(predictions) and compute_execution and (
            execution_match(predictions[0], example.sql, db)
        )
        result.records.append(
            EvalRecord(
                example=example,
                predictions=predictions,
                exact_flags=flags,
                execution_hit=execution_hit,
            )
        )
    return result


def evaluate_metasql(
    pipeline,
    dataset: Dataset,
    compute_execution: bool = True,
    limit: int | None = None,
    journal=None,
) -> EvalResult:
    """Evaluate a trained MetaSQL pipeline (two-stage ranked output).

    *journal* optionally takes a :class:`repro.obs.journal.Journal` (or a
    path, opened for the duration of the call): every scored example is
    appended as one ``{"event": "eval", ...}`` JSONL record carrying the
    hardness level, EM/EX flags and the per-stage latencies from the
    translation's trace — the input
    :mod:`repro.eval.journal_analysis` aggregates offline.
    """
    result = EvalResult(
        name=f"{pipeline.model.name}+metasql@{dataset.name}"
    )
    owns_journal = False
    if journal is not None and not hasattr(journal, "append"):
        from repro.obs.journal import Journal

        journal = Journal(journal)
        owns_journal = True
    examples = dataset.examples[:limit] if limit else dataset.examples
    try:
        pairs = [
            (example.question, dataset.database(example.db_id))
            for example in examples
        ]
        # The batched driver prewarms shared featurization (stage-1
        # question embeddings, rendering memos) across the whole pass.
        if hasattr(pipeline, "translate_many"):
            outcomes = pipeline.translate_many(pairs)
        else:
            outcomes = [
                pipeline.translate_ranked_report(question, db)
                for question, db in pairs
            ]
        for example, (__, db), outcome in zip(examples, pairs, outcomes):
            predictions = [r.query for r in outcome.translations]
            flags = [exact_match(p, example.sql) for p in predictions[:5]]
            execution_hit = False
            if predictions and compute_execution:
                try:
                    execution_hit = execution_match(
                        predictions[0], example.sql, db, report=outcome.report
                    )
                except Exception as exc:  # repolint: allow[broad-except] — eval isolation
                    outcome.report.record_exception(
                        "execute", exc, fallback="no-execution"
                    )
            record = EvalRecord(
                example=example,
                predictions=predictions,
                exact_flags=flags,
                execution_hit=execution_hit,
                report=outcome.report,
            )
            result.records.append(record)
            if journal is not None:
                journal.append(_journal_line(record))
    finally:
        if owns_journal:
            journal.close()
    return result


def _journal_line(record: EvalRecord) -> dict:
    """One eval-journal record (schema documented in DESIGN.md §10)."""
    report = record.report
    trace = report.trace or {}
    return {
        "event": "eval",
        "question": record.example.question,
        "db_id": record.example.db_id,
        "hardness": record.hardness.value,
        "em": record.em,
        "ex": record.execution_hit,
        "ok": bool(record.predictions),
        "degraded": record.degraded,
        "deadline_expired": report.deadline_expired,
        "lint_rejected": report.lint_rejected,
        "lint_codes": dict(sorted(report.lint_codes.items())),
        "verify_demoted": report.verify_demoted,
        "verify_outcomes": dict(sorted(report.verify_outcomes.items())),
        "repair_attempts": report.repair_attempts,
        "repair_succeeded": report.repair_succeeded,
        "faults": [
            {"stage": f.stage, "fallback": f.fallback} for f in report.faults
        ],
        "latency_s": round(trace.get("duration", 0.0), 6),
        "stages": {
            stage: round(seconds, 6)
            for stage, seconds in report.stage_durations().items()
        },
    }
