"""Failure-category analysis (Section IV-E of the paper).

The paper attributes MetaSQL's remaining failures to three causes; this
module reproduces that taxonomy automatically for any trained pipeline:

- **metadata mismatch** — the classifier's predicted labels cannot compose
  the gold metadata, so generation is steered toward the wrong structure;
- **auto-regressive decoding** — even conditioned on the *oracle* metadata,
  the base model cannot decode the gold query (the paper's join-path
  example);
- **ranking** — the gold query is among the candidates but is not ranked
  first (predominantly a second-stage problem).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metadata import extract_metadata
from repro.data.dataset import Dataset, Example
from repro.sqlkit.compare import exact_match


@dataclass
class FailureCase:
    """One categorised failure."""

    example: Example
    category: str
    top_prediction: str | None


@dataclass
class FailureAnalysis:
    """Counts and cases per failure category."""

    total: int = 0
    correct: int = 0
    cases: list[FailureCase] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Failure counts per category."""
        result = {
            "metadata mismatch": 0,
            "auto-regressive decoding": 0,
            "ranking": 0,
        }
        for case in self.cases:
            result[case.category] += 1
        return result

    def render(self) -> str:
        """Human-readable summary of the taxonomy."""
        lines = [
            f"Failure analysis over {self.total} questions "
            f"({self.correct} correct):"
        ]
        for category, count in self.counts().items():
            lines.append(f"  {category:26s} {count}")
        return "\n".join(lines)


def analyze_failures(
    pipeline, dataset: Dataset, limit: int | None = None
) -> FailureAnalysis:
    """Categorise every top-1 failure of *pipeline* on *dataset*."""
    analysis = FailureAnalysis()
    examples = dataset.examples[:limit] if limit else dataset.examples
    for example in examples:
        db = dataset.database(example.db_id)
        analysis.total += 1
        ranked = pipeline.translate_ranked(example.question, db)
        if ranked and exact_match(ranked[0].query, example.sql):
            analysis.correct += 1
            continue
        top = ranked[0].sql if ranked else None

        if any(exact_match(r.query, example.sql) for r in ranked):
            category = "ranking"
        else:
            gold_meta = extract_metadata(example.sql)
            predicted_tags, predicted_ratings = pipeline.classifier.predict(
                example.question, db
            )
            covered = gold_meta.tags <= (set(predicted_tags) | {"project"})
            if not covered:
                category = "metadata mismatch"
            else:
                # Oracle conditioning: can the base model decode gold at all?
                oracle = pipeline.candidates(
                    example.question, db, compositions=[gold_meta]
                )
                if any(exact_match(c.query, example.sql) for c in oracle):
                    category = "ranking"
                else:
                    category = "auto-regressive decoding"
        analysis.cases.append(
            FailureCase(
                example=example, category=category, top_prediction=top
            )
        )
    return analysis
