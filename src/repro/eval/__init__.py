"""Evaluation harness: metrics, dataset evaluation, report rendering."""

from repro.eval.evaluate import EvalRecord, EvalResult, evaluate_metasql, evaluate_model
from repro.eval.journal_analysis import JournalSummary, aggregate_journal
from repro.eval.metrics import execution_match, mrr, precision_at_k

__all__ = [
    "EvalRecord",
    "EvalResult",
    "JournalSummary",
    "aggregate_journal",
    "evaluate_model",
    "evaluate_metasql",
    "execution_match",
    "precision_at_k",
    "mrr",
]
