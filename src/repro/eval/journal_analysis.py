"""Offline aggregation of observability journals.

:func:`evaluate_metasql` (with ``journal=``) and the serving layer both
append one JSONL record per translation to a
:class:`repro.obs.journal.Journal`.  This module turns those journals back
into the paper's breakdown axes — accuracy and latency per hardness level,
latency per pipeline stage — without re-running any model: the journal is
the single artifact a run leaves behind, and everything here is derived
from it.

Only ``event == "eval"`` records carry accuracy flags; serving records
(``event == "translate"``) contribute latency and degradation counts but
are excluded from EM/EX rates.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs.journal import iter_journal

#: Percentiles reported for every latency distribution.
PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class LatencySummary:
    """Order statistics over one latency series (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    @classmethod
    def of(cls, values: list[float]) -> "LatencySummary":
        if not values:
            return cls()
        data = np.asarray(values, dtype=np.float64)
        p50, p90, p99 = np.percentile(data, PERCENTILES)
        return cls(
            count=len(values),
            mean=float(data.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p90": round(self.p90, 6),
            "p99": round(self.p99, 6),
        }


@dataclass
class HardnessBucket:
    """Accuracy + latency for one hardness level."""

    total: int = 0
    em_hits: int = 0
    ex_hits: int = 0
    degraded: int = 0
    #: Candidates the verify stage demoted/pruned (sum over records).
    verify_demoted: int = 0
    #: Records with at least one verify demotion.
    demoted_records: int = 0
    repair_attempts: int = 0
    #: Records that attempted at least one repair.
    repair_records: int = 0
    repair_succeeded: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def em(self) -> float:
        return self.em_hits / self.total if self.total else 0.0

    @property
    def ex(self) -> float:
        return self.ex_hits / self.total if self.total else 0.0

    @property
    def demotion_rate(self) -> float:
        """Fraction of records the verify stage reordered."""
        return self.demoted_records / self.total if self.total else 0.0

    @property
    def repair_success_rate(self) -> float:
        """Fraction of repair-attempting records that succeeded."""
        if not self.repair_records:
            return 0.0
        return self.repair_succeeded / self.repair_records

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "em": round(self.em, 4),
            "ex": round(self.ex, 4),
            "degraded": self.degraded,
            "verify_demoted": self.verify_demoted,
            "demotion_rate": round(self.demotion_rate, 4),
            "repair_attempts": self.repair_attempts,
            "repair_success_rate": round(self.repair_success_rate, 4),
            "latency": LatencySummary.of(self.latencies).as_dict(),
        }


@dataclass
class TenantBucket:
    """Per-tenant traffic/health view (multi-tenant serving journals)."""

    total: int = 0
    degraded: int = 0
    deadline_expired: int = 0
    faults: int = 0
    #: Hot-swap events by outcome (``ok``/``rollback`` -> count).
    swaps: dict[str, int] = field(default_factory=dict)
    #: Highest shard epoch observed serving this tenant's requests.
    max_epoch: int = 0
    latencies: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "degraded": self.degraded,
            "deadline_expired": self.deadline_expired,
            "faults": self.faults,
            "swaps": dict(sorted(self.swaps.items())),
            "max_epoch": self.max_epoch,
            "latency": LatencySummary.of(self.latencies).as_dict(),
        }


@dataclass
class JournalSummary:
    """Aggregated view over every record in one or more journals."""

    total: int = 0
    eval_records: int = 0
    serve_records: int = 0
    degraded: int = 0
    deadline_expired: int = 0
    lint_rejected: int = 0
    lint_codes: dict[str, int] = field(default_factory=dict)
    verify_demoted: int = 0
    verify_outcomes: dict[str, int] = field(default_factory=dict)
    repair_attempts: int = 0
    repair_succeeded: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    #: Alert transitions per objective (keyed ``name`` or
    #: ``name[tenant]``): ``{"firing": n, "resolved": n}``.
    slo_alerts: dict[str, dict[str, int]] = field(default_factory=dict)
    by_hardness: dict[str, HardnessBucket] = field(default_factory=dict)
    by_tenant: dict[str, TenantBucket] = field(default_factory=dict)
    stage_latencies: dict[str, list[float]] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "eval_records": self.eval_records,
            "serve_records": self.serve_records,
            "degraded": self.degraded,
            "deadline_expired": self.deadline_expired,
            "lint_rejected": self.lint_rejected,
            "lint_codes": dict(sorted(self.lint_codes.items())),
            "verify_demoted": self.verify_demoted,
            "verify_outcomes": dict(sorted(self.verify_outcomes.items())),
            "repair_attempts": self.repair_attempts,
            "repair_succeeded": self.repair_succeeded,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "slo_alerts": {
                name: dict(sorted(counts.items()))
                for name, counts in sorted(self.slo_alerts.items())
            },
            "latency": LatencySummary.of(self.latencies).as_dict(),
            "by_hardness": {
                level: bucket.as_dict()
                for level, bucket in sorted(self.by_hardness.items())
            },
            "by_tenant": {
                tenant: bucket.as_dict()
                for tenant, bucket in sorted(self.by_tenant.items())
            },
            "by_stage": {
                stage: LatencySummary.of(values).as_dict()
                for stage, values in sorted(self.stage_latencies.items())
            },
        }

    def render(self) -> str:
        """Human-readable breakdown table."""
        lines = [
            f"Journal summary over {self.total} records "
            f"({self.eval_records} eval, {self.serve_records} serve):",
            f"  degraded {self.degraded}, "
            f"deadline expired {self.deadline_expired}",
        ]
        if self.lint_rejected:
            codes = ", ".join(
                f"{code}={count}"
                for code, count in sorted(self.lint_codes.items())
            )
            lines.append(
                f"  lint rejected {self.lint_rejected} candidates"
                + (f" ({codes})" if codes else "")
            )
        if self.verify_demoted or self.verify_outcomes:
            outcomes = ", ".join(
                f"{outcome}={count}"
                for outcome, count in sorted(self.verify_outcomes.items())
            )
            lines.append(
                f"  verify demoted {self.verify_demoted} candidates"
                + (f" ({outcomes})" if outcomes else "")
            )
        if self.repair_attempts:
            lines.append(
                f"  repair attempts {self.repair_attempts}, "
                f"succeeded {self.repair_succeeded}"
            )
        if self.slo_alerts:
            lines.append("  slo alerts:")
            for name, counts in sorted(self.slo_alerts.items()):
                fired = counts.get("firing", 0)
                resolved = counts.get("resolved", 0)
                lines.append(
                    f"    {name:20s} fired={fired} resolved={resolved}"
                )
        overall = LatencySummary.of(self.latencies)
        lines.append(
            f"  latency p50/p90/p99: {overall.p50 * 1e3:.2f}/"
            f"{overall.p90 * 1e3:.2f}/{overall.p99 * 1e3:.2f} ms"
        )
        if self.by_hardness:
            lines.append("  by hardness:")
            for level, bucket in sorted(self.by_hardness.items()):
                latency = LatencySummary.of(bucket.latencies)
                lines.append(
                    f"    {level:10s} n={bucket.total:<5d} "
                    f"EM={bucket.em:.3f} EX={bucket.ex:.3f} "
                    f"demote={bucket.demotion_rate:.3f} "
                    f"repair={bucket.repair_success_rate:.3f} "
                    f"p90={latency.p90 * 1e3:.2f}ms"
                )
        if self.by_tenant:
            lines.append("  by tenant:")
            for tenant, bucket in sorted(self.by_tenant.items()):
                latency = LatencySummary.of(bucket.latencies)
                swaps = sum(bucket.swaps.values())
                rollbacks = bucket.swaps.get("rollback", 0)
                lines.append(
                    f"    {tenant:10s} n={bucket.total:<5d} "
                    f"degraded={bucket.degraded} faults={bucket.faults} "
                    f"swaps={swaps} (rollback={rollbacks}) "
                    f"epoch={bucket.max_epoch} "
                    f"p99={latency.p99 * 1e3:.2f}ms"
                )
        if self.stage_latencies:
            lines.append("  by stage:")
            for stage, values in sorted(self.stage_latencies.items()):
                latency = LatencySummary.of(values)
                lines.append(
                    f"    {stage:10s} n={latency.count:<5d} "
                    f"mean={latency.mean * 1e3:.2f}ms "
                    f"p90={latency.p90 * 1e3:.2f}ms"
                )
        return "\n".join(lines)


def aggregate_journal(
    *paths: str | pathlib.Path, events: tuple[str, ...] | None = None
) -> JournalSummary:
    """Fold one or more journal files into a :class:`JournalSummary`.

    *events* optionally restricts which ``event`` values are counted
    (e.g. ``("eval",)``); by default both eval and serve records are
    aggregated.  Records missing expected keys contribute what they have —
    a journal from an older schema never makes aggregation fail.
    """
    summary = JournalSummary()
    for path in paths:
        for record in iter_journal(path):
            event = record.get("event")
            if events is not None and event not in events:
                continue
            summary.total += 1
            if event == "eval":
                summary.eval_records += 1
                _fold_eval(summary, record)
            elif event == "translate":
                summary.serve_records += 1
            if event == "tenant_swap":
                _fold_swap(summary, record)
                continue  # swap events carry no request fields
            if event == "slo_alert":
                _fold_slo_alert(summary, record)
                continue  # alert transitions carry no request fields
            _fold_tenant(summary, record)
            _fold_common(summary, record)
    return summary


def _fold_swap(summary: JournalSummary, record: dict) -> None:
    """A ``tenant_swap`` journal event: count it per tenant and outcome."""
    tenant = record.get("tenant", "unknown")
    bucket = summary.by_tenant.setdefault(tenant, TenantBucket())
    outcome = record.get("outcome", "unknown")
    bucket.swaps[outcome] = bucket.swaps.get(outcome, 0) + 1
    epoch = record.get("epoch")
    if isinstance(epoch, int):
        bucket.max_epoch = max(bucket.max_epoch, epoch)


def _fold_slo_alert(summary: JournalSummary, record: dict) -> None:
    """An ``slo_alert`` journal event: count transitions per objective."""
    name = record.get("slo", "unknown")
    tenant = record.get("tenant")
    key = f"{name}[{tenant}]" if tenant else str(name)
    counts = summary.slo_alerts.setdefault(key, {})
    state = record.get("state", "unknown")
    counts[state] = counts.get(state, 0) + 1


def _fold_tenant(summary: JournalSummary, record: dict) -> None:
    """Fold one tenant-labelled request record into its tenant bucket.

    Pre-tenancy journals have no ``tenant`` key and simply produce an
    empty ``by_tenant`` section — aggregation never fails on an older
    schema.
    """
    tenant = record.get("tenant")
    if not isinstance(tenant, str):
        return
    bucket = summary.by_tenant.setdefault(tenant, TenantBucket())
    bucket.total += 1
    bucket.degraded += bool(record.get("degraded"))
    bucket.deadline_expired += bool(record.get("deadline_expired"))
    faults = record.get("faults")
    if isinstance(faults, list):
        bucket.faults += len(faults)
    epoch = record.get("shard_epoch")
    if isinstance(epoch, int):
        bucket.max_epoch = max(bucket.max_epoch, epoch)
    latency = record.get("latency_s")
    if isinstance(latency, (int, float)):
        bucket.latencies.append(float(latency))


def _fold_eval(summary: JournalSummary, record: dict) -> None:
    level = record.get("hardness", "unknown")
    bucket = summary.by_hardness.setdefault(level, HardnessBucket())
    bucket.total += 1
    bucket.em_hits += bool(record.get("em"))
    bucket.ex_hits += bool(record.get("ex"))
    bucket.degraded += bool(record.get("degraded"))
    demoted = record.get("verify_demoted")
    if isinstance(demoted, int) and demoted > 0:
        bucket.verify_demoted += demoted
        bucket.demoted_records += 1
    attempts = record.get("repair_attempts")
    if isinstance(attempts, int) and attempts > 0:
        bucket.repair_attempts += attempts
        bucket.repair_records += 1
        bucket.repair_succeeded += bool(record.get("repair_succeeded"))
    latency = record.get("latency_s")
    if isinstance(latency, (int, float)):
        bucket.latencies.append(float(latency))


def _fold_common(summary: JournalSummary, record: dict) -> None:
    summary.degraded += bool(record.get("degraded"))
    summary.deadline_expired += bool(record.get("deadline_expired"))
    lint_rejected = record.get("lint_rejected")
    if isinstance(lint_rejected, int):
        summary.lint_rejected += lint_rejected
    lint_codes = record.get("lint_codes")
    if isinstance(lint_codes, dict):
        for code, count in lint_codes.items():
            if isinstance(count, int):
                summary.lint_codes[code] = (
                    summary.lint_codes.get(code, 0) + count
                )
    demoted = record.get("verify_demoted")
    if isinstance(demoted, int):
        summary.verify_demoted += demoted
    verify_outcomes = record.get("verify_outcomes")
    if isinstance(verify_outcomes, dict):
        for outcome, count in verify_outcomes.items():
            if isinstance(count, int):
                summary.verify_outcomes[outcome] = (
                    summary.verify_outcomes.get(outcome, 0) + count
                )
    attempts = record.get("repair_attempts")
    if isinstance(attempts, int):
        summary.repair_attempts += attempts
        summary.repair_succeeded += bool(record.get("repair_succeeded"))
    for fault in record.get("faults", ()):
        if isinstance(fault, dict):
            stage = fault.get("stage", "unknown")
            summary.fault_counts[stage] = (
                summary.fault_counts.get(stage, 0) + 1
            )
    latency = record.get("latency_s")
    if isinstance(latency, (int, float)):
        summary.latencies.append(float(latency))
    stages = record.get("stages")
    if isinstance(stages, dict):
        for stage, seconds in stages.items():
            if isinstance(seconds, (int, float)):
                summary.stage_latencies.setdefault(stage, []).append(
                    float(seconds)
                )
