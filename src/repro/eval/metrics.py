"""Evaluation metrics (Section IV-A4).

- **Translation accuracy (EM)** — Spider exact-set-match, via
  :func:`repro.sqlkit.compare.exact_match`.
- **Execution accuracy (EX)** — result-multiset equality after executing
  both queries (order-sensitive only when the gold query has ORDER BY).
- **Precision@K** — gold query present in the top-K ranked translations.
- **Translation MRR** — mean reciprocal rank of the gold query within the
  top-5 ranked list (reciprocal rank 0 when absent, as in the paper).
"""

from __future__ import annotations

from collections import Counter

from repro.schema.database import Database
from repro.schema.executor import ExecutionBudget, execute
from repro.sqlkit.ast import Query, SetQuery
from repro.sqlkit.compare import exact_match
from repro.sqlkit.errors import SqlError

#: Default per-query step allowance for the EX metric.  Generous for any
#: legitimate benchmark query, but bounds a pathological candidate (e.g.
#: a huge accidental cartesian product) so evaluation cannot hang.
EX_BUDGET_STEPS = 2_000_000


def _has_order(query: Query) -> bool:
    if isinstance(query, SetQuery):
        return _has_order(query.left) or _has_order(query.right)
    return bool(query.order_by)


def _normalise_row(row: tuple) -> tuple:
    out = []
    for value in row:
        if isinstance(value, str):
            out.append(value.lower())
        elif isinstance(value, float) and value.is_integer():
            out.append(int(value))
        elif isinstance(value, float):
            out.append(round(value, 6))
        else:
            out.append(value)
    return tuple(out)


def execution_match(
    predicted: Query,
    gold: Query,
    db: Database,
    budget_steps: int | None = EX_BUDGET_STEPS,
    report=None,
) -> bool:
    """EX: do both queries produce the same results on *db*?

    Each execution runs under a fresh step budget (*budget_steps*; None
    disables it); a candidate that exhausts it counts as a non-match,
    exactly like any other execution error.  When *report* (a
    :class:`~repro.core.resilience.TranslationReport`) is given, absorbed
    execution faults are recorded on it.
    """
    try:
        predicted_rows = execute(
            predicted, db, budget=ExecutionBudget(max_steps=budget_steps)
        )
        gold_rows = execute(
            gold, db, budget=ExecutionBudget(max_steps=budget_steps)
        )
    except SqlError as exc:
        if report is not None:
            report.record_exception("execute", exc, fallback="no-execution")
        return False
    predicted_rows = [_normalise_row(r) for r in predicted_rows]
    gold_rows = [_normalise_row(r) for r in gold_rows]
    if _has_order(gold):
        return predicted_rows == gold_rows
    return Counter(predicted_rows) == Counter(gold_rows)


def precision_at_k(ranked_hits: list[list[bool]], k: int) -> float:
    """Fraction of questions whose top-k ranked list contains the gold query.

    ``ranked_hits[i][j]`` indicates whether the j-th ranked candidate for
    question i exactly matches its gold query.
    """
    if not ranked_hits:
        return 0.0
    hits = sum(1 for flags in ranked_hits if any(flags[:k]))
    return hits / len(ranked_hits)


def mrr(ranked_hits: list[list[bool]], cutoff: int = 5) -> float:
    """Mean reciprocal rank within the top *cutoff* (0 when absent)."""
    if not ranked_hits:
        return 0.0
    total = 0.0
    for flags in ranked_hits:
        for rank, hit in enumerate(flags[:cutoff], start=1):
            if hit:
                total += 1.0 / rank
                break
    return total / len(ranked_hits)


def ranked_exact_flags(
    candidates: list[Query], gold: Query, cutoff: int = 5
) -> list[bool]:
    """Exact-match flags of a ranked candidate list against gold."""
    return [exact_match(c, gold) for c in candidates[:cutoff]]
