"""Performance layer: batch-first scoring support and bounded memoization.

The ranking hot path evaluates one candidate per sampled metadata
composition (Section III-C of the paper); the generate-then-rank cost is
governed by how cheaply the rankers sweep that candidate list.  This
package supplies the two mechanisms the rest of the codebase batches and
memoizes with:

- :mod:`repro.perf.cache` — a bounded, thread-safe LRU cache with
  hit/miss/eviction counters wired into the ambient metrics registry and
  an ambient kill-switch (:func:`~repro.perf.cache.caching_scope`) that
  bypasses every cache without changing any result;
- :mod:`repro.perf.memo` — process-wide memos for the SQL2NL renderings
  (``sql_surface`` / ``unit_phrases``) and normalized-SQL keys, which
  repeat heavily across compositions within a request and across
  requests in the serving layer.

The batch-first scoring itself lives with the models it accelerates
(:mod:`repro.core.rank_stage1`, :mod:`repro.core.rank_stage2`,
:mod:`repro.nn.encoder`); DESIGN.md §12 documents cache keys,
invalidation-on-refit, and the thread-safety contract with ``serve/``.
"""

from repro.perf.cache import LRUCache, caching_enabled, caching_scope
from repro.perf.memo import (
    cached_normal_sql,
    cached_sql_surface,
    cached_unit_phrases,
)

__all__ = [
    "LRUCache",
    "caching_enabled",
    "caching_scope",
    "cached_normal_sql",
    "cached_sql_surface",
    "cached_unit_phrases",
]
