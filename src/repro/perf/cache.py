"""Bounded, thread-safe LRU memoization for the ranking hot path.

:class:`LRUCache` is the one cache primitive the performance layer uses:
a dict-ordered LRU with a hard entry bound, a version counter bumped on
:meth:`~LRUCache.invalidate` (refitting a tower invalidates its
embeddings), and hit/miss/eviction counters published to the *ambient*
metrics registry (:func:`repro.obs.metrics.get_registry`) so the serving
layer's per-service registry sees cache behaviour without extra wiring.

Caching is globally defeasible: :func:`caching_scope` installs a
:class:`~contextvars.ContextVar` override under which every
:meth:`~LRUCache.get_or` computes fresh and stores nothing.  The contract
— verified by test and relied on throughout — is that enabling or
disabling caching never changes any computed result, only how often the
underlying computation runs.

Thread-safety contract (relied on by ``serve/``'s worker pool): all
mutations happen under a per-cache lock; metric increments and user
compute callbacks run *outside* the lock, so a slow featurization never
blocks other workers' lookups.  Two threads missing the same key may
both compute it; last store wins, which is harmless because cached
computations are deterministic functions of their key.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from repro.devtools.lockdep import new_lock
from repro.obs.metrics import get_registry

_CACHING: ContextVar[bool] = ContextVar("perf_caching_enabled", default=True)

#: Sentinel returned by :meth:`LRUCache.lookup` on a miss.
MISS = object()


def caching_enabled() -> bool:
    """Whether the ambient scope currently allows cache hits/stores."""
    return _CACHING.get()


@contextmanager
def caching_scope(enabled: bool) -> Iterator[None]:
    """Ambiently enable/disable every :class:`LRUCache` in this context."""
    token = _CACHING.set(enabled)
    try:
        yield
    finally:
        _CACHING.reset(token)


class LRUCache:
    """A bounded LRU mapping with obs counters and version invalidation.

    Entries are evicted least-recently-*used* first: a hit refreshes
    recency.  ``max_entries`` is a hard bound enforced on every store;
    :meth:`resize` shrinks (evicting oldest) or grows it in place.
    """

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("LRUCache needs max_entries >= 1")
        self.name = name
        self.max_entries = max_entries
        self._data: dict = {}
        self._lock = new_lock("LRUCache._lock")
        self._version = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Memoized (registry, counter-children) so the common case pays
        # one identity check instead of three registry lookups per event.
        self._children: tuple | None = None

    # -- metrics -------------------------------------------------------

    def _publish(self, hits: int = 0, misses: int = 0, evictions: int = 0):
        """Feed the ambient registry's cache counters (outside the lock)."""
        registry = get_registry()
        children = self._children
        if children is None or children[0] is not registry:
            children = (
                registry,
                registry.counter(
                    "metasql_cache_hits_total",
                    "Cache hits by cache name.",
                    labelnames=("cache",),
                ).labels(cache=self.name),
                registry.counter(
                    "metasql_cache_misses_total",
                    "Cache misses by cache name.",
                    labelnames=("cache",),
                ).labels(cache=self.name),
                registry.counter(
                    "metasql_cache_evictions_total",
                    "LRU evictions by cache name.",
                    labelnames=("cache",),
                ).labels(cache=self.name),
            )
            self._children = children
        if hits:
            children[1].inc(hits)
        if misses:
            children[2].inc(misses)
        if evictions:
            children[3].inc(evictions)

    # -- core operations -----------------------------------------------

    def lookup(self, key):
        """The cached value for *key*, or the :data:`MISS` sentinel.

        Counts a hit or miss; a hit refreshes the entry's recency.  When
        caching is ambiently disabled this is an uncounted miss.
        """
        if not _CACHING.get():
            return MISS
        with self._lock:
            if key in self._data:
                value = self._data.pop(key)
                self._data[key] = value  # reinsert = most recently used
                self.hits += 1
                hit = True
            else:
                self.misses += 1
                hit, value = False, MISS
        self._publish(hits=int(hit), misses=int(not hit))
        return value

    def put(self, key, value) -> None:
        """Store *key* -> *value*, evicting LRU entries past the bound.

        A no-op when caching is ambiently disabled.
        """
        if not _CACHING.get():
            return
        evicted = 0
        with self._lock:
            version = self._version
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.max_entries:
                oldest = next(iter(self._data))
                del self._data[oldest]
                evicted += 1
            if version != self._version:  # raced an invalidate(): drop
                self._data.pop(key, None)
            self.evictions += evicted
        if evicted:
            self._publish(evictions=evicted)

    def get_or(self, key, compute: Callable[[], object]):
        """The cached value for *key*, computing and storing on a miss.

        *compute* runs outside the lock; concurrent misses on the same
        key may compute twice (deterministic computations make that
        merely redundant, never wrong).
        """
        value = self.lookup(key)
        if value is not MISS:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- management ----------------------------------------------------

    def invalidate(self) -> None:
        """Drop every entry and bump the version (e.g. after a refit)."""
        with self._lock:
            self._data.clear()
            self._version += 1

    def resize(self, max_entries: int) -> None:
        """Change the entry bound, evicting oldest entries if shrinking."""
        if max_entries <= 0:
            raise ValueError("LRUCache needs max_entries >= 1")
        evicted = 0
        with self._lock:
            self.max_entries = max_entries
            while len(self._data) > self.max_entries:
                oldest = next(iter(self._data))
                del self._data[oldest]
                evicted += 1
            self.evictions += evicted
        if evicted:
            self._publish(evictions=evicted)

    @property
    def version(self) -> int:
        """Monotonic invalidation counter (bumped by :meth:`invalidate`)."""
        return self._version

    def stats(self) -> dict[str, int]:
        """Point-in-time counters (for health endpoints and tests)."""
        with self._lock:
            return {
                "size": len(self._data),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "version": self._version,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data
