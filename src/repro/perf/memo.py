"""Process-wide memos for SQL renderings on the ranking hot path.

Every candidate that reaches the rankers is rendered three ways — its
``sql_surface`` (canonical SQL + rule-based NL description, the stage-1
SQL-tower input), its ``unit_phrases`` (the stage-2 fine-head inputs,
cf. SQL2NL), and its normalized-SQL dedupe key.  The same queries recur
across metadata compositions within one request and across requests in
the serving layer, so each rendering is memoized in a bounded
:class:`~repro.perf.cache.LRUCache`.

Cache keys are ``(vocabulary, canonical SQL text)``: the vocabulary (a
frozen :class:`~repro.schema.schema.Schema` or ``None`` for the default
identifier vocabulary) is hashable and the canonical text uniquely
identifies the AST (printer/parser round-trip), so renderings are pure
functions of their key and never need version invalidation.  Callers
that already hold the candidate's canonical text (the generator renders
it for its own dedupe) pass it via ``sql_text`` to skip re-printing.
"""

from __future__ import annotations

from repro.perf.cache import LRUCache
from repro.sqlkit.ast import Query
from repro.sqlkit.normalize import normalize
from repro.sqlkit.printer import to_sql
from repro.sqlkit.sql2nl import describe_query, unit_phrases

SURFACE_CACHE = LRUCache("sql_surface", max_entries=8192)
PHRASE_CACHE = LRUCache("unit_phrases", max_entries=8192)
NORMAL_CACHE = LRUCache("normal_sql", max_entries=8192)


def cached_sql_surface(
    query: Query, vocab=None, sql_text: str | None = None
) -> str:
    """Memoized stage-1 surface text: canonical SQL + NL description."""
    text = to_sql(query) if sql_text is None else sql_text

    def compute() -> str:
        vocab_args = (vocab,) if vocab is not None else ()
        return f"{text} ; {describe_query(query, *vocab_args)}"

    return SURFACE_CACHE.get_or((vocab, text), compute)


def cached_unit_phrases(
    query: Query, vocab=None, sql_text: str | None = None
) -> tuple[str, ...]:
    """Memoized stage-2 unit phrases, one per SQL unit."""
    text = to_sql(query) if sql_text is None else sql_text

    def compute() -> tuple[str, ...]:
        vocab_args = (vocab,) if vocab is not None else ()
        return tuple(unit_phrases(query, *vocab_args))

    return PHRASE_CACHE.get_or((vocab, text), compute)


def cached_normal_sql(query: Query, sql_text: str | None = None) -> str:
    """Memoized canonical text of the *normalized* query (dedupe key)."""
    text = to_sql(query) if sql_text is None else sql_text
    return NORMAL_CACHE.get_or(text, lambda: to_sql(normalize(query)))


def invalidate_all() -> None:
    """Drop every rendering memo (tests and long-lived processes)."""
    for cache in (SURFACE_CACHE, PHRASE_CACHE, NORMAL_CACHE):
        cache.invalidate()
