"""Lexicon alignment model: naive-Bayes word/SQL-element co-occurrence.

The learned analogue of neural schema linking: from training NL/SQL pairs it
estimates how strongly each question token indicates each schema element
(table, column) or SQL operation.  Scores are smoothed log-likelihood ratios;
string overlap between question tokens and identifier tokens provides the
zero-shot signal that survives transfer to unseen (ScienceBenchmark-like)
schemas.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

from repro.data.dataset import Dataset
from repro.nn.text import tokenize_text
from repro.schema.schema import Schema, Table
from repro.sqlkit.ast import (
    Query,
    iter_column_refs,
    iter_selects,
    query_tables,
)

#: Tokens too generic to carry alignment signal.
STOPWORDS = frozenset(
    """a an the of for from with and or is are was were in on to me all any
    that who whose which what show find list give return tell how many much
    number records their there them it its by per each different""".split()
)


def content_tokens(text: str) -> list[str]:
    """Question tokens with stopwords removed."""
    return [t for t in tokenize_text(text) if t not in STOPWORDS]


class Lexicon:
    """Token <-> element association scores learned from a training set."""

    def __init__(self, smoothing: float = 0.4) -> None:
        self.smoothing = smoothing
        self._pair_counts: dict[str, Counter] = defaultdict(Counter)
        self._element_counts: Counter = Counter()
        self._token_counts: Counter = Counter()
        self._total_examples = 0

    # ------------------------------------------------------------------
    # Training.

    def fit(self, train: Dataset) -> "Lexicon":
        """Count token/element co-occurrences over the training set."""
        for example in train.examples:
            tokens = set(content_tokens(example.question))
            elements = self._elements_of(example.sql, example.db_id)
            self._total_examples += 1
            for token in tokens:
                self._token_counts[token] += 1
            for element in elements:
                self._element_counts[element] += 1
                counter = self._pair_counts[element]
                for token in tokens:
                    counter[token] += 1
        return self

    @staticmethod
    def _elements_of(query: Query, db_id: str) -> set[str]:
        elements: set[str] = set()
        for table in query_tables(query):
            elements.add(f"{db_id}:tab:{table}")
        for select in iter_selects(query):
            exprs = list(select.select)
            exprs.extend(i.expr for i in select.order_by)
            for condition in (select.where, select.having):
                if condition is not None:
                    exprs.extend(p.left for p in condition.predicates)
            exprs.extend(select.group_by)
            for expr in exprs:
                for ref in iter_column_refs(expr):
                    elements.add(f"{db_id}:col:{ref.key()}")
        return elements

    # ------------------------------------------------------------------
    # Scoring.

    def _association(self, element: str, tokens: list[str]) -> float:
        """Smoothed log-likelihood-ratio association score."""
        pair = self._pair_counts.get(element)
        element_count = self._element_counts.get(element, 0)
        if pair is None or element_count == 0:
            return 0.0
        score = 0.0
        total = max(self._total_examples, 1)
        for token in tokens:
            joint = pair.get(token, 0)
            token_count = self._token_counts.get(token, 0)
            if token_count == 0:
                continue
            p_token_given_element = (joint + self.smoothing) / (
                element_count + 2 * self.smoothing
            )
            p_token = (token_count + self.smoothing) / (
                total + 2 * self.smoothing
            )
            score += math.log(p_token_given_element / p_token)
        return score

    @staticmethod
    def _name_overlap(tokens: set[str], phrases: list[str]) -> float:
        """String-matching signal: identifier/phrase tokens in the question."""
        best = 0.0
        for phrase in phrases:
            phrase_tokens = set(tokenize_text(phrase))
            if not phrase_tokens:
                continue
            hit = len(phrase_tokens & tokens) / len(phrase_tokens)
            best = max(best, hit)
        return best

    def score_table(self, question: str, db_id: str, table: Table) -> float:
        """Alignment score between the question and a table."""
        tokens = content_tokens(question)
        token_set = set(tokens)
        learned = self._association(
            f"{db_id}:tab:{table.name.lower()}", tokens
        )
        phrases = [table.name, table.nl, *table.synonyms]
        overlap = self._name_overlap(token_set, phrases)
        # Column coverage: a table whose column phrases blanket the question
        # is almost certainly in the FROM clause.
        column_hits = sorted(
            (
                self._name_overlap(
                    token_set, [c.name, c.nl, *c.synonyms]
                )
                for c in table.columns
            ),
            reverse=True,
        )
        coverage = sum(column_hits[:3])
        return learned + 3.0 * overlap + 1.2 * coverage

    def score_column(
        self, question: str, db_id: str, table: Table, column_name: str
    ) -> float:
        """Alignment score between the question and one column."""
        tokens = content_tokens(question)
        token_set = set(tokens)
        column = table.column(column_name)
        key = f"{table.name.lower()}.{column.name.lower()}"
        learned = self._association(f"{db_id}:col:{key}", tokens)
        phrases = [column.name, column.nl, *column.synonyms]
        overlap = self._name_overlap(token_set, phrases)
        return learned + 4.0 * overlap

    def rank_columns(
        self, question: str, db_id: str, schema: Schema, tables: list[str]
    ) -> list[tuple[float, str, str]]:
        """All (score, table, column) over *tables*, best first."""
        scored = []
        for table_name in tables:
            table = schema.table(table_name)
            for column in table.columns:
                score = self.score_column(question, db_id, table, column.name)
                scored.append((score, table.name.lower(), column.name.lower()))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        return scored
