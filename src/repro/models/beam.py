"""Generic beam search over staged decisions.

The decoder expands partial states stage by stage: each stage maps a state
to scored choices; the beam keeps the top ``width`` states by cumulative
score.  This is the auto-regressive skeleton shared by the Seq2seq and LLM
sims — decisions are local and made left-to-right, which is exactly the
failure mode MetaSQL targets (Section I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

State = TypeVar("State")


@dataclass(frozen=True)
class Beam(Generic[State]):
    """A scored partial state."""

    score: float
    state: State


def expand(
    beams: list[Beam],
    expander: Callable[[object], list[tuple[float, object]]],
    width: int,
) -> list[Beam]:
    """One beam-search step: expand every state, keep the best *width*.

    *expander* maps a state to ``[(choice_logprob, next_state), ...]``; an
    empty expansion keeps the state as-is (the stage does not apply).
    """
    next_beams: list[Beam] = []
    for beam in beams:
        choices = expander(beam.state)
        if not choices:
            next_beams.append(beam)
            continue
        for logprob, next_state in choices:
            next_beams.append(Beam(score=beam.score + logprob, state=next_state))
    next_beams.sort(key=lambda b: -b.score)
    return next_beams[:width]


def run(
    initial: list[Beam],
    stages: list[Callable[[object], list[tuple[float, object]]]],
    width: int,
) -> list[Beam]:
    """Run all *stages* in order, returning the final beam (best first)."""
    beams = sorted(initial, key=lambda b: -b.score)[:width]
    for stage in stages:
        beams = expand(beams, stage, width)
    return beams
