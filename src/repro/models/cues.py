"""Surface-cue evidence extraction for sketch prediction.

The real baselines' decoders consume rich contextual encodings; our sketch
NB over bag-of-words alone underuses the question's surface structure.  This
module extracts the schema-grounded evidence a trained decoder would pick
up: which DB values are literally mentioned (text predicates), number
mentions with comparison cues, clause keywords (group/order/superlatives/
set-operation connectives), producing a :class:`CueEvidence` whose agreement
with a candidate sketch is scored by :func:`cue_bonus`.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

from repro.models.mentions import extract_mentions, question_tokens
from repro.schema.database import Database

_EXCEPT_CUES = ("but not", "excluding", "that are not the ones", "except")
_INTERSECT_CUES = (
    "also the ones",
    "and also those",
    "at the same time",
    "that are also",
)
_UNION_CUES = ("or those", "together with those", "plus those")

_NOT_IN_CUES = (
    "that do not have a",
    "that do not have an",
    "without a",
    "without an",
    "are not among those",
)
_IN_CUES = ("that have a", "that have an", "are among those", "that are among")
_SCALAR_CUES = (
    "above the average",
    "below the average",
    "above the mean",
    "below the mean",
    "above the total",
    "below the total",
)

_GROUP_CUES = ("for each", "per ", "grouped by")
_ORDER_CUES = ("sorted by", "ordered by")
_DESC_CUES = ("descending", "most first")
_ASC_CUES = ("ascending", "least first")
# Superlative *ordering* phrasing is "with the highest X" / "that has the
# lowest X"; a bare "the largest X" is an aggregate projection instead.
_SUPERLATIVE_RE = re.compile(
    r"(?:with|has) the (highest|largest|most|lowest|smallest|least)"
)
_DISTINCT_CUES = ("different", "distinct", "unique")

_COUNT_OPENERS = (
    "how many",
    "count the number",
    "find the number of",
    "total number of",
    "the number of records",
)

_AGG_WORDS = {
    "average": "avg",
    "mean": "avg",
    "total": "sum",
    "sum": "sum",
    "minimum": "min",
    "smallest": "min",
    "lowest": "min",
    "maximum": "max",
    "largest": "max",
    "highest": "max",
}


@dataclass
class CueEvidence:
    """Schema-grounded surface evidence about a question's structure."""

    kind_counts: Counter = field(default_factory=Counter)
    has_or: bool = False
    nested: str | None = None  # in | not_in | scalar
    setop: str | None = None  # union | intersect | except
    from_subquery: bool = False
    group: bool = False
    having: bool = False
    order: str = "none"  # none | asc | desc (explicit sort phrasing)
    superlative: str = "none"  # none | high | low (order+limit-1 phrasing)
    limit_k: int | None = None
    count_question: bool = False
    agg_counts: Counter = field(default_factory=Counter)
    distinct: bool = False
    matched_values: list[tuple[str, str, str]] = field(default_factory=list)
    # (table, column, value) for DB values literally present in the question
    n_select_hint: int = 1  # projections separated by " and " before of/from
    table_hints: int = 1  # distinct table phrases mentioned in plural form
    arith: bool = False  # "difference between" / "range of" phrasing

    @property
    def expected_predicates(self) -> int:
        return sum(self.kind_counts.values())


def _contains_any(text: str, cues: tuple[str, ...]) -> bool:
    return any(cue in text for cue in cues)


def find_mentioned_values(
    question: str, db: Database, max_values: int = 4
) -> list[tuple[str, str, str, float]]:
    """DB text values whose tokens all appear in the question.

    Returns (table, column, value, coverage) tuples sorted by coverage and
    value length (longer, fully-covered values first).
    """
    tokens = set(question_tokens(question))
    hits: list[tuple[str, str, str, float]] = []
    seen_values: set[str] = set()
    for table in db.schema.tables:
        for column in table.columns:
            if column.ctype != "text":
                continue
            for value in db.column_values(table.name, column.name):
                if not isinstance(value, str):
                    continue
                key = value.lower()
                value_tokens = set(re.findall(r"[a-z0-9]+", key))
                if not value_tokens or not value_tokens <= tokens:
                    continue
                if (table.name, column.name, key) in seen_values:
                    continue
                seen_values.add((table.name, column.name, key))
                hits.append(
                    (
                        table.name.lower(),
                        column.name.lower(),
                        value,
                        float(len(value_tokens)),
                    )
                )
    hits.sort(key=lambda h: -h[3])
    # Keep at most one hit per (token-coverage) value string: prefer longest.
    deduped: list[tuple[str, str, str, float]] = []
    used_values: set[str] = set()
    for hit in hits:
        if hit[2].lower() in used_values:
            continue
        used_values.add(hit[2].lower())
        deduped.append(hit)
    return deduped[:max_values]


def extract_cues(question: str, db: Database) -> CueEvidence:
    """Compute all surface evidence for *question* against *db*."""
    text = question.lower()
    evidence = CueEvidence()
    mentions = extract_mentions(question)

    # Set operations.
    if _contains_any(text, _EXCEPT_CUES):
        evidence.setop = "except"
    elif _contains_any(text, _INTERSECT_CUES):
        evidence.setop = "intersect"
    elif _contains_any(text, _UNION_CUES):
        evidence.setop = "union"

    # Nested subqueries.
    if _contains_any(text, _SCALAR_CUES):
        evidence.nested = "scalar"
    elif _contains_any(text, _NOT_IN_CUES):
        evidence.nested = "not_in"
    elif _contains_any(text, _IN_CUES):
        evidence.nested = "in"

    # Grouping / having.
    evidence.group = _contains_any(text, _GROUP_CUES)
    evidence.having = any(m.is_count_threshold for m in mentions)

    # Ordering.
    if _contains_any(text, _ORDER_CUES):
        evidence.order = "desc" if _contains_any(text, _DESC_CUES) else "asc"
    superlative_match = _SUPERLATIVE_RE.search(text)
    if superlative_match is not None:
        word = superlative_match.group(1)
        evidence.superlative = (
            "high" if word in ("highest", "largest", "most") else "low"
        )
    for mention in mentions:
        if mention.is_limit:
            evidence.limit_k = int(mention.value)
            evidence.order = (
                "desc" if "most first" in text or "descending" in text else
                ("asc" if "least first" in text or "ascending" in text
                 else evidence.order)
            )

    # Count questions / FROM subquery.
    evidence.count_question = _contains_any(text, _COUNT_OPENERS)
    evidence.from_subquery = evidence.count_question and " values of " in text

    # Aggregates in the projection.
    for word, func in _AGG_WORDS.items():
        occurrences = text.count(word)
        if occurrences == 0:
            continue
        if word in ("highest", "largest", "most", "lowest", "smallest", "least"):
            # Superlative words next to "with the"/"has the" signal ORDER BY,
            # not an aggregate projection.
            order_uses = len(re.findall(rf"(?:with|has) the {word}", text))
            occurrences -= order_uses
        if word == "total" and "total number of" in text:
            occurrences -= text.count("total number of")
        if occurrences > 0:
            evidence.agg_counts[func] += occurrences

    evidence.distinct = _contains_any(text, _DISTINCT_CUES)
    evidence.arith = (
        "difference between" in text or "range of" in text
    )
    if evidence.arith:
        # The superlative words belong to the arithmetic phrase, not to
        # aggregate projections or ordering.
        evidence.agg_counts.clear()
        evidence.superlative = "none"

    # Grounded text predicates.
    values = find_mentioned_values(question, db)
    tokens = question_tokens(question)
    for table, column, value, __ in values:
        evidence.matched_values.append((table, column, value))
        position = _value_position(tokens, value)
        window = tokens[max(position - 5, 0) : position] if position >= 0 else []
        if "not" in window or "without" in window:
            evidence.kind_counts["neq"] += 1
        elif "contains" in window or "includes" in window:
            evidence.kind_counts["like"] += 1
        else:
            evidence.kind_counts["eq"] += 1

    # Numeric comparison predicates (mentions not otherwise spoken for).
    between_seen = False
    for mention in mentions:
        if mention.is_limit or mention.is_count_threshold:
            continue
        if mention.is_between_bound:
            if not between_seen:
                evidence.kind_counts["between"] += 1
                between_seen = True
            continue
        if mention.op != "=" and evidence.nested != "scalar":
            evidence.kind_counts["cmp"] += 1

    evidence.has_or = " or " in text and evidence.setop != "union"

    # Projection count: " and "-separated heads before the table mention.
    projection_region = re.split(r"\s(?:of|from|for)\s", text, maxsplit=1)[0]
    evidence.n_select_hint = min(projection_region.count(" and ") + 1, 3)

    # Join hint: distinct tables mentioned in plural form (the renderer says
    # "of <table>s with <other>s" for joins).
    plural_tables = 0
    for table in db.schema.tables:
        for phrase in (table.nl, table.name, *table.synonyms):
            plural = phrase if phrase.endswith("s") else phrase + "s"
            if plural.lower() in text:
                plural_tables += 1
                break
    evidence.table_hints = max(plural_tables, 1)
    return evidence


def _value_position(tokens: list[str], value: str) -> int:
    """Start position of the contiguous occurrence of *value* in *tokens*."""
    words = re.findall(r"[a-z0-9]+", value.lower())
    if not words:
        return -1
    for start in range(len(tokens) - len(words) + 1):
        if tokens[start : start + len(words)] == words:
            return start
    return -1


def cue_bonus(sketch, cues: CueEvidence) -> float:
    """Log-score agreement between a sketch and the surface evidence."""
    bonus = 0.0

    # Shape agreement.
    if cues.setop is not None:
        bonus += 4.0 if sketch.shape == f"setop:{cues.setop}" else -4.0
    elif sketch.shape.startswith("setop:"):
        bonus -= 4.0
    if cues.nested is not None:
        bonus += 3.5 if sketch.shape == f"nested:{cues.nested}" else -3.0
    elif sketch.shape.startswith("nested:"):
        bonus -= 3.0
    if cues.from_subquery:
        bonus += 3.0 if sketch.shape == "from_subquery" else -2.0
    elif sketch.shape == "from_subquery":
        bonus -= 3.0

    # Predicates.
    expected = cues.expected_predicates
    if sketch.shape.startswith("nested:"):
        # One predicate (grounded value or number mention) typically lives
        # inside the nested query, not in the outer WHERE.
        expected = max(expected - 1, 0)
    bonus -= 2.6 * abs(sketch.n_predicates - min(expected, 3))
    sketch_kinds = Counter(sketch.predicate_kinds)
    diff = sum((sketch_kinds - cues.kind_counts).values()) + sum(
        (cues.kind_counts - sketch_kinds).values()
    )
    if not sketch.shape.startswith("nested:"):
        bonus -= 1.5 * diff
    bonus += 1.2 if sketch.has_or == cues.has_or else -1.2

    # Projection count and join hints.
    if not cues.count_question:
        bonus -= 2.0 * abs(sketch.n_select - cues.n_select_hint)
    bonus -= 1.5 * abs(sketch.n_tables - min(cues.table_hints, 2))

    # Group / having.
    bonus += 2.2 if sketch.has_group == cues.group else -2.2
    bonus += 1.8 if sketch.has_having == cues.having else -1.8

    # Order / limit.
    wants_order = cues.order != "none" or cues.superlative != "none"
    if wants_order:
        desired_desc = cues.order == "desc" or cues.superlative == "high"
        desired = "desc" if desired_desc else "asc"
        bonus += 2.0 if sketch.order == desired else -1.6
        if cues.superlative != "none":
            bonus += 1.4 if sketch.limit == "one" else -1.0
        if cues.limit_k is not None:
            bonus += 1.4 if sketch.limit == "k" else -1.0
    else:
        bonus += 1.2 if sketch.order == "none" else -1.8

    # Counting.
    if cues.count_question:
        bonus += 1.8 if sketch.count_star else -1.8
    elif sketch.count_star and not sketch.has_group:
        bonus -= 1.4

    # Aggregate projections.
    sketch_aggs = Counter(sketch.select_aggs)
    agg_diff = sum((sketch_aggs - cues.agg_counts).values()) + sum(
        (cues.agg_counts - sketch_aggs).values()
    )
    bonus -= 3.5 * agg_diff

    # Distinct.
    bonus += 0.8 if sketch.distinct == cues.distinct else -0.8

    # Arithmetic projections.
    bonus += 2.2 if sketch.has_arith == cues.arith else -2.2
    return bonus
