"""Query sketches: structural signatures and their learned prediction.

A :class:`Sketch` captures the clause structure of a query without naming
columns or values — the decoding grammar's first, most consequential
decisions.  :class:`SketchModel` is a facet-factored naive-Bayes classifier
over question tokens; candidate sketches are restricted to signatures
observed in training (the same train-composition assumption MetaSQL makes
for metadata compositions).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, replace

from repro.data.dataset import Dataset
from repro.models.lexicon import content_tokens
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
)


@dataclass(frozen=True)
class Sketch:
    """Structural signature of a query."""

    shape: str = "plain"  # plain | setop:* | nested:in | nested:not_in |
    #                       nested:scalar | from_subquery
    n_tables: int = 1
    n_select: int = 1
    select_aggs: tuple[str, ...] = ()  # agg funcs among select items
    count_star: bool = False
    distinct: bool = False
    n_predicates: int = 0
    predicate_kinds: tuple[str, ...] = ()  # sorted kinds: eq neq cmp like between
    has_or: bool = False
    has_group: bool = False
    has_having: bool = False
    order: str = "none"  # none | asc | desc
    limit: str = "none"  # none | one | k
    order_on_agg: bool = False
    has_arith: bool = False  # arithmetic over aggregates in SELECT

    def facets(self) -> dict[str, object]:
        """Facet name -> value mapping used by the factored classifier."""
        return {
            "shape": self.shape,
            "n_tables": self.n_tables,
            "n_select": self.n_select,
            "select_aggs": self.select_aggs,
            "count_star": self.count_star,
            "distinct": self.distinct,
            "n_predicates": self.n_predicates,
            "predicate_kinds": self.predicate_kinds,
            "has_or": self.has_or,
            "has_group": self.has_group,
            "has_having": self.has_having,
            "order": self.order,
            "limit": self.limit,
            "order_on_agg": self.order_on_agg,
            "has_arith": self.has_arith,
        }

    # ------------------------------------------------------------------
    # Operator tags (the paper's tag-type metadata, Section III-A1).

    def operator_tags(self) -> frozenset[str]:
        """The metadata operator tags implied by this structure."""
        tags = {"project"}
        if self.shape.startswith("setop:"):
            tags.add(self.shape.split(":", 1)[1])
        if self.shape.startswith("nested:") or self.shape == "from_subquery":
            tags.add("subquery")
        if self.n_tables > 1:
            tags.add("join")
        if self.n_predicates > 0 or self.shape.startswith("nested:"):
            tags.add("where")
        if self.has_group:
            tags.add("group")
        if self.has_having:
            tags.add("having")
        if self.order != "none":
            tags.add("order")
        if self.limit != "none":
            tags.add("limit")
        if (
            self.select_aggs
            or self.count_star
            or self.order_on_agg
            or self.has_arith
        ):
            tags.add("agg")
        return frozenset(tags)


FACET_NAMES = tuple(Sketch().facets().keys())


def _predicate_kind(predicate: Predicate) -> str:
    if isinstance(predicate.right, (SelectQuery, SetQuery)):
        return "subquery"
    if predicate.op == "=":
        return "neq" if predicate.negated else "eq"
    if predicate.op == "!=":
        return "neq"
    if predicate.op in ("<", ">", "<=", ">="):
        return "cmp"
    if predicate.op == "like":
        return "like"
    if predicate.op == "between":
        return "between"
    if predicate.op == "in":
        return "in"
    return "other"


def extract_sketch(query: Query) -> Sketch:
    """Compute the structural signature of *query*."""
    if isinstance(query, SetQuery):
        base = extract_sketch(query.left)
        return replace(base, shape=f"setop:{query.op}")

    shape = "plain"
    if query.from_.subquery is not None:
        shape = "from_subquery"
    predicates: list[Predicate] = []
    if query.where is not None:
        predicates.extend(query.where.predicates)
    nested = [p for p in predicates if isinstance(p.right, (SelectQuery, SetQuery))]
    plain = [p for p in predicates if not isinstance(p.right, (SelectQuery, SetQuery))]
    if nested:
        first = nested[0]
        if first.op == "in":
            shape = "nested:not_in" if first.negated else "nested:in"
        else:
            shape = "nested:scalar"

    select_aggs = tuple(
        sorted(
            e.func
            for e in query.select
            if isinstance(e, AggExpr) and not isinstance(e.arg, Star)
        )
    )
    has_arith = any(isinstance(e, Arith) for e in query.select)
    count_star = any(
        isinstance(e, AggExpr) and isinstance(e.arg, Star) for e in query.select
    )
    order = "none"
    order_on_agg = False
    if query.order_by:
        order = "desc" if query.order_by[0].desc else "asc"
        order_on_agg = isinstance(query.order_by[0].expr, (AggExpr, Arith))
    limit = "none"
    if query.limit is not None:
        limit = "one" if query.limit == 1 else "k"

    return Sketch(
        shape=shape,
        n_tables=min(len(query.from_.tables), 3) or 1,
        n_select=min(len(query.select), 3),
        select_aggs=select_aggs,
        count_star=count_star,
        distinct=query.distinct,
        n_predicates=min(len(plain), 3),
        predicate_kinds=tuple(sorted(_predicate_kind(p) for p in plain)),
        has_or=query.where.has_or if query.where is not None else False,
        has_group=bool(query.group_by),
        has_having=query.having is not None,
        order=order,
        limit=limit,
        order_on_agg=order_on_agg,
        has_arith=has_arith,
    )


class SketchModel:
    """Facet-factored naive-Bayes sketch classifier.

    For each facet, Bernoulli NB over question tokens gives a log-posterior
    per facet value; a full sketch signature scores the sum of its facet
    log-posteriors plus a signature prior.  Only signatures observed in
    training are considered.
    """

    def __init__(self, smoothing: float = 0.3) -> None:
        self.smoothing = smoothing
        self._signatures: Counter[Sketch] = Counter()
        self._facet_value_counts: dict[str, Counter] = defaultdict(Counter)
        self._facet_token_counts: dict[tuple[str, object], Counter] = defaultdict(
            Counter
        )
        self._facet_token_totals: dict[tuple[str, object], int] = defaultdict(int)
        self._vocab: set[str] = set()
        self._total = 0

    def fit(self, train: Dataset) -> "SketchModel":
        """Count sketch signatures and facet/token statistics."""
        for example in train.examples:
            sketch = extract_sketch(example.sql)
            tokens = set(content_tokens(example.question))
            self._signatures[sketch] += 1
            self._total += 1
            self._vocab.update(tokens)
            for facet, value in sketch.facets().items():
                self._facet_value_counts[facet][value] += 1
                counter = self._facet_token_counts[(facet, value)]
                for token in tokens:
                    counter[token] += 1
                self._facet_token_totals[(facet, value)] += len(tokens)
        return self

    @property
    def signatures(self) -> list[Sketch]:
        """All training signatures, most frequent first."""
        return [s for s, __ in self._signatures.most_common()]

    def facet_log_posteriors(
        self, question: str
    ) -> dict[str, dict[object, float]]:
        """Per-facet normalised log-posteriors given *question*."""
        tokens = [t for t in set(content_tokens(question)) if t in self._vocab]
        vocab_size = max(len(self._vocab), 1)
        result: dict[str, dict[object, float]] = {}
        for facet, value_counts in self._facet_value_counts.items():
            logps: dict[object, float] = {}
            for value, count in value_counts.items():
                logp = math.log(count / self._total)
                token_counter = self._facet_token_counts[(facet, value)]
                denominator = (
                    self._facet_token_totals[(facet, value)]
                    + self.smoothing * vocab_size
                )
                for token in tokens:
                    # Multinomial smoothing: rare classes do not win on
                    # unseen tokens (their denominator shrinks too).
                    p = (token_counter.get(token, 0) + self.smoothing) / denominator
                    logp += math.log(p)
                logps[value] = logp
            # Normalise within the facet.
            peak = max(logps.values())
            total = sum(math.exp(v - peak) for v in logps.values())
            log_norm = peak + math.log(total)
            result[facet] = {v: lp - log_norm for v, lp in logps.items()}
        return result

    def score_sketches(
        self,
        question: str,
        candidates: list[Sketch] | None = None,
        cues=None,
    ) -> list[tuple[float, Sketch]]:
        """Score candidate signatures, best first.

        When *cues* (a :class:`repro.models.cues.CueEvidence`) is given,
        surface-evidence agreement is blended into the NB posterior.
        """
        from repro.models.cues import cue_bonus

        posteriors = self.facet_log_posteriors(question)
        if candidates is None:
            candidates = self.signatures
        scored = []
        for sketch in candidates:
            score = 0.0
            for facet, value in sketch.facets().items():
                facet_post = posteriors.get(facet, {})
                score += 0.15 * facet_post.get(value, -8.0)
            prior = self._signatures.get(sketch, 0)
            score += 0.35 * math.log(prior + 1.0)
            if cues is not None:
                score += cue_bonus(sketch, cues)
            scored.append((score, sketch))
        scored.sort(key=lambda item: -item[0])
        return scored
