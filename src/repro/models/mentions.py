"""Number-mention extraction from NL questions.

Each numeric literal in a question is turned into a :class:`NumberMention`
with an inferred comparison operator (from cue words in the preceding
window), its token position (for column-proximity pairing) and role flags
(HAVING-count threshold, LIMIT count, BETWEEN bound).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"\d+\.\d+|[a-z0-9]+")
_NUMBER_RE = re.compile(r"^\d+(?:\.\d+)?$")

#: cue word(s) -> comparison operator; bigrams are checked before unigrams.
_BIGRAM_CUES = {
    ("at", "least"): ">=",
    ("no", "less"): ">=",
    ("at", "most"): "<=",
    ("no", "more"): "<=",
}
_UNIGRAM_CUES = {
    "more": ">",
    "greater": ">",
    "above": ">",
    "over": ">",
    "exceeding": ">",
    "less": "<",
    "below": "<",
    "fewer": "<",
    "under": "<",
}

_COUNT_WORDS = frozenset({"records", "times", "entries", "rows"})


@dataclass(frozen=True)
class NumberMention:
    """One numeric literal mentioned in a question."""

    value: int | float
    op: str  # inferred comparison operator (default '=')
    position: int  # token index in the question
    is_count_threshold: bool = False  # "... more than 3 records"
    is_limit: bool = False  # "top 3 ..."
    is_between_bound: bool = False


def question_tokens(question: str) -> list[str]:
    """Lowercased question tokens with positions preserved."""
    return _TOKEN_RE.findall(question.lower())


def extract_mentions(question: str) -> list[NumberMention]:
    """All number mentions in *question*, in order of appearance."""
    tokens = question_tokens(question)
    mentions: list[NumberMention] = []
    between_remaining = 0
    for index, token in enumerate(tokens):
        if token == "between":
            between_remaining = 2
        if not _NUMBER_RE.match(token):
            continue
        value = float(token)
        number: int | float = int(value) if value.is_integer() else value
        window = tokens[max(index - 4, 0) : index]
        op = "="
        for offset in range(len(window) - 1):
            pair = (window[offset], window[offset + 1])
            if pair in _BIGRAM_CUES:
                op = _BIGRAM_CUES[pair]
                break
        else:
            for word in reversed(window):
                if word in _UNIGRAM_CUES:
                    op = _UNIGRAM_CUES[word]
                    break
        following = tokens[index + 1 : index + 3]
        is_count = bool(set(following) & _COUNT_WORDS) or (
            "times" in following
        )
        is_limit = bool(window) and window[-1] == "top"
        is_between = between_remaining > 0
        if between_remaining > 0:
            between_remaining -= 1
        mentions.append(
            NumberMention(
                value=number,
                op=op,
                position=index,
                is_count_threshold=is_count,
                is_limit=is_limit,
                is_between_bound=is_between,
            )
        )
    return mentions


def phrase_positions(tokens: list[str], phrase: str) -> list[int]:
    """Token positions in *tokens* where any word of *phrase* occurs."""
    words = set(_TOKEN_RE.findall(phrase.lower()))
    return [i for i, t in enumerate(tokens) if t in words]
