"""Translation-model interface shared by Seq2seq sims and LLM sims."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.schema.database import Database
from repro.sqlkit.ast import Query


@dataclass(frozen=True)
class Candidate:
    """One decoded SQL candidate with its (log-probability-like) score."""

    query: Query
    score: float

    def __lt__(self, other: "Candidate") -> bool:  # for heap/sort stability
        return self.score < other.score


class TranslationModel(abc.ABC):
    """Abstract NL2SQL translation model.

    ``translate`` returns beam candidates ordered best-first.  When
    ``metadata`` is supplied (a :class:`repro.core.metadata.QueryMetadata`),
    a metadata-aware model conditions its decoding on it; models not trained
    with metadata ignore it (mirroring the paper's optional augmented
    training step).
    """

    #: Whether the model fills literal values (BRIDGE/RESDSQL/LLMs do,
    #: GAP/LGESQL emit 'value' placeholders).
    predicts_values: bool = True

    #: Whether metadata-augmented training was applied (Section III-B1).
    metadata_trained: bool = False

    name: str = "model"

    @abc.abstractmethod
    def fit(self, train: Dataset) -> "TranslationModel":
        """Train (or, for LLM sims, index demonstrations) on *train*."""

    @abc.abstractmethod
    def translate(
        self,
        question: str,
        db: Database,
        metadata=None,
        beam_size: int = 5,
    ) -> list[Candidate]:
        """Decode up to *beam_size* candidates, best first."""

    def top1(self, question: str, db: Database, **kwargs) -> Query | None:
        """Convenience: the best candidate's query, or None."""
        candidates = self.translate(question, db, **kwargs)
        if not candidates:
            return None
        return candidates[0].query
