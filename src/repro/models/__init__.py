"""Simulated base NL2SQL translation models.

Stand-ins for the paper's BRIDGE/GAP/LGESQL/RESDSQL (Seq2seq) and
ChatGPT/GPT-4 (LLM) baselines: grammar-based semantic parsers with learned
lexicon alignment, sketch prediction and auto-regressive beam-search
decoding.  Presets in :mod:`repro.models.registry` mirror each baseline's
capability profile.
"""

from repro.models.base import Candidate, TranslationModel
from repro.models.llm import FewShotLLM
from repro.models.registry import MODEL_PRESETS, create_model
from repro.models.seq2seq import GrammarSeq2Seq

__all__ = [
    "Candidate",
    "TranslationModel",
    "GrammarSeq2Seq",
    "FewShotLLM",
    "create_model",
    "MODEL_PRESETS",
]
