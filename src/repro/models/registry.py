"""Model presets mirroring the paper's six baselines.

Knob values are calibrated so baseline EM on SpiderSim-dev follows the
paper's ordering (BRIDGE < GAP < LGESQL ~ RESDSQL; ChatGPT < GPT-4 with a
large EM/EX gap).  Absolute numbers differ from the paper — the substrate is
a simulator — but orderings and improvement shapes are preserved (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.models.base import TranslationModel
from repro.models.llm import FewShotLLM, LLMProfile
from repro.models.seq2seq import GrammarSeq2Seq, ModelProfile

#: name -> profile factory.
MODEL_PRESETS = {
    "bridge": lambda: GrammarSeq2Seq(
        ModelProfile(
            name="bridge",
            temperature=1.75,
            sketch_top=3,
            column_noise=1.4,
            value_skill=1.0,
            predicts_values=True,
            seed=11,
        )
    ),
    "gap": lambda: GrammarSeq2Seq(
        ModelProfile(
            name="gap",
            temperature=1.6,
            sketch_top=3,
            column_noise=1.28,
            value_skill=0.9,
            predicts_values=False,
            seed=22,
        )
    ),
    "lgesql": lambda: GrammarSeq2Seq(
        ModelProfile(
            name="lgesql",
            temperature=1.33,
            sketch_top=4,
            column_noise=1.06,
            value_skill=0.9,
            predicts_values=False,
            seed=33,
        )
    ),
    "resdsql": lambda: GrammarSeq2Seq(
        ModelProfile(
            name="resdsql",
            temperature=1.36,
            sketch_top=4,
            column_noise=1.1,
            value_skill=1.0,
            predicts_values=True,
            seed=44,
        )
    ),
    "chatgpt": lambda: FewShotLLM(
        LLMProfile(
            name="chatgpt",
            temperature=1.9,
            sketch_top=4,
            column_noise=1.5,
            value_skill=1.1,
            predicts_values=True,
            seed=55,
            n_demonstrations=9,
            style_shift=0.38,
            simplify_bias=0.5,
        )
    ),
    "gpt4": lambda: FewShotLLM(
        LLMProfile(
            name="gpt4",
            temperature=1.55,
            sketch_top=4,
            column_noise=1.2,
            value_skill=1.2,
            predicts_values=True,
            seed=66,
            n_demonstrations=9,
            style_shift=0.34,
            simplify_bias=0.35,
        )
    ),
}

#: Display names used in printed tables.
DISPLAY_NAMES = {
    "bridge": "Bridge",
    "gap": "GAP",
    "lgesql": "LGESQL",
    "resdsql": "RESDSQL-Large",
    "chatgpt": "ChatGPT",
    "gpt4": "GPT-4",
}


def create_model(name: str) -> TranslationModel:
    """Instantiate a fresh (unfitted) model preset by name."""
    try:
        factory = MODEL_PRESETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise ValueError(f"unknown model {name!r}; choose one of: {known}")
    return factory()
