"""FewShotLLM: the simulated LLM baseline (ChatGPT / GPT-4 stand-ins).

An LLM queried with few-shot prompts behaves differently from a fine-tuned
Seq2seq parser: it is *not* trained on the benchmark (retrieval over
demonstrations replaces fine-tuning), it predicts literal values well, its
outputs are diverse but drift from the benchmark's canonical SQL style
(semantically equivalent rewrites that fail exact-match), and it tends to
under-produce rare clause structures.  All four properties are modelled
here:

- sketch proposals come from k-NN retrieval over the demonstration pool,
  with a bias toward simplified structures (``simplify_bias``);
- decoded candidates are augmented with semantically-equivalent *style
  variants* (``style_shift``): ``BETWEEN`` -> two comparisons,
  ``count(*)`` -> ``count(pk)``, ``ORDER BY c LIMIT 1`` -> ``max(c)`` —
  execution-equivalent on our databases but exact-match-different, which
  reproduces the paper's EX > EM gap for LLMs;
- metadata arrives through the prompt (Table 3), so conditioning needs no
  fine-tuning: ``metadata_trained`` is always True.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.dataset import Dataset, Example
from repro.models.base import Candidate
from repro.models.seq2seq import GrammarSeq2Seq, ModelProfile
from repro.models.sketch import Sketch, extract_sketch
from repro.nn.text import TextFeaturizer
from repro.schema.database import Database
from repro.sqlkit.ast import (
    AggExpr,
    ColumnRef,
    Condition,
    Literal,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
)
from repro.sqlkit.errors import SqlError
from repro.sqlkit.printer import to_sql


@dataclass(frozen=True)
class LLMProfile(ModelProfile):
    """LLM-specific knobs on top of the shared decode profile."""

    n_demonstrations: int = 9
    style_shift: float = 0.3  # probability a candidate is style-rewritten
    simplify_bias: float = 0.2  # bonus mass on simplified sketch proposals


class FewShotLLM(GrammarSeq2Seq):
    """Retrieval-prompted translator; no benchmark fine-tuning."""

    def __init__(self, profile: LLMProfile) -> None:
        super().__init__(profile)
        self.llm_profile = profile
        self.metadata_trained = True  # prompts carry metadata (Table 3)
        self._pool: list[Example] = []
        self._pool_matrix: np.ndarray | None = None
        self._featurizer = TextFeaturizer(buckets=1024)

    # ------------------------------------------------------------------
    # "Training" = demonstration indexing.

    def fit(self, train: Dataset, with_metadata: bool = False) -> "FewShotLLM":
        """Index the demonstration pool (LLMs are not fine-tuned)."""
        super().fit(train, with_metadata=True)
        self.metadata_trained = True
        self._pool = list(train.examples)
        questions = [e.question for e in self._pool]
        self._featurizer.fit(questions)
        self._pool_matrix = self._featurizer.transform_many(questions)
        return self

    def retrieve(self, question: str, k: int | None = None) -> list[Example]:
        """k-NN demonstrations for the prompt."""
        if self._pool_matrix is None:
            raise RuntimeError("FewShotLLM is not fitted")
        k = k or self.llm_profile.n_demonstrations
        query_vec = self._featurizer.transform(question)
        similarities = self._pool_matrix @ query_vec
        order = np.argsort(-similarities)[:k]
        return [self._pool[int(i)] for i in order]

    def build_prompt(self, question: str, db: Database, metadata=None) -> str:
        """Few-shot prompt in the paper's Table 3 structure."""
        lines = [
            "#### Give you database schema, NL question, and metadata "
            "information of the target SQL, generate an SQL query.",
            "#### Learn from the generating examples:",
        ]
        for demo in self.retrieve(question, k=3):
            lines.append(f"Question: {demo.question}")
            lines.append(f"#### The target SQL is: {demo.sql_text}")
        schema_desc = "; ".join(
            f"Table {t.name} with columns "
            + ", ".join(f"'{c.name}'" for c in t.columns)
            for t in db.schema.tables
        )
        lines.append(
            "#### Please follow the previous example and help me generate "
            "the following SQL statement:"
        )
        lines.append(f"Schema: {schema_desc}")
        lines.append(f"Question: {question}")
        if metadata is not None:
            tags = ", ".join(sorted(getattr(metadata, "tags", ()))) or "none"
            lines.append(
                f"The target SQL only uses the following SQL keywords: {tags};"
            )
            rating = getattr(metadata, "rating", None)
            if rating is not None:
                lines.append(
                    f"The difficulty rating of the target SQL is {rating};"
                )
        lines.append("#### The target SQL is:")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Sketch proposals from retrieval instead of the NB classifier.

    def _candidate_sketches(self, question: str, metadata, db: Database):
        from repro.models.cues import cue_bonus, extract_cues

        cues = extract_cues(question, db)
        demos = self.retrieve(question)
        weights: dict[Sketch, float] = {}
        for rank, demo in enumerate(demos):
            sketch = extract_sketch(demo.sql)
            weights[sketch] = weights.get(sketch, 0.0) + 1.0 / (rank + 1.0)
            simplified = _simplify_sketch(sketch)
            if simplified != sketch:
                weights[simplified] = (
                    weights.get(simplified, 0.0)
                    + self.llm_profile.simplify_bias / (rank + 1.0)
                )
        scored = sorted(
            (
                (float(np.log(w + 1e-9)) + 0.6 * cue_bonus(sk, cues), sk)
                for sk, w in weights.items()
            ),
            key=lambda item: -item[0],
        )
        if metadata is not None:
            tags = frozenset(getattr(metadata, "tags", frozenset()))
            if tags:
                # The prompt states the allowed keywords: the LLM reliably
                # honours them, falling back to the classifier signatures
                # when no retrieved sketch matches.
                matching = [
                    (s, sk) for s, sk in scored if sk.operator_tags() == tags
                ]
                if not matching:
                    matching = [
                        (0.0, sk)
                        for sk in self.sketch_model.signatures
                        if sk.operator_tags() == tags
                    ]
                if matching:
                    scored = matching
            rating = getattr(metadata, "rating", None)
            if rating is not None:
                from repro.models.seq2seq import estimate_rating

                scored = [
                    (s - abs(estimate_rating(sk) - rating) / 300.0, sk)
                    for s, sk in scored
                ]
                scored.sort(key=lambda item: -item[0])
        return scored[: self.profile.sketch_top]

    # ------------------------------------------------------------------
    # Decoding with style variants.

    def translate(
        self,
        question: str,
        db: Database,
        metadata=None,
        beam_size: int = 5,
    ) -> list[Candidate]:
        """Decode candidates and append execution-equivalent style variants."""
        base = super().translate(
            question, db, metadata=metadata, beam_size=beam_size
        )
        rng = self._decode_rng(question, metadata)
        augmented: list[Candidate] = []
        seen: set[str] = set()
        for candidate in base:
            variant = _style_variant(candidate.query, db, rng)
            shifted = (
                variant is not None
                and rng.random() < self.llm_profile.style_shift
            )
            ordered = (
                [(variant, candidate.score + 0.01), (candidate.query, candidate.score)]
                if shifted
                else [(candidate.query, candidate.score)]
                + ([(variant, candidate.score - 0.5)] if variant is not None else [])
            )
            for query, score in ordered:
                key = to_sql(query)
                if key in seen:
                    continue
                seen.add(key)
                augmented.append(Candidate(query=query, score=score))
        augmented.sort(key=lambda c: -c.score)
        return augmented[: max(beam_size, len(base))]


# ----------------------------------------------------------------------
# Style rewrites: execution-equivalent, exact-match-different.


def _simplify_sketch(sketch: Sketch) -> Sketch:
    """Drop the least salient clause (LLMs under-produce rare structure)."""
    if sketch.shape.startswith("setop:") or sketch.shape.startswith("nested:"):
        return replace(sketch, shape="plain", n_predicates=max(sketch.n_predicates, 1), predicate_kinds=sketch.predicate_kinds or ("eq",))
    if sketch.has_having:
        return replace(sketch, has_having=False)
    if sketch.order != "none" and sketch.limit == "none":
        return replace(sketch, order="none", order_on_agg=False)
    if sketch.n_predicates > 1:
        return replace(
            sketch,
            n_predicates=1,
            predicate_kinds=sketch.predicate_kinds[:1],
        )
    return sketch


def _style_variant(query: Query, db: Database, rng: np.random.Generator) -> Query | None:
    """One semantically-equivalent rewrite of *query*, or None."""
    if isinstance(query, SetQuery):
        return None
    rewrites = []
    if _can_rewrite_between(query):
        rewrites.append(_rewrite_between)
    if _can_rewrite_count_star(query, db):
        rewrites.append(_rewrite_count_star)
    if _can_rewrite_superlative(query):
        rewrites.append(_rewrite_superlative)
    if _can_rewrite_int_cmp(query, db):
        rewrites.append(_rewrite_int_cmp)
    if not rewrites:
        return None
    rewrite = rewrites[int(rng.integers(len(rewrites)))]
    return rewrite(query, db)


def _can_rewrite_between(query: SelectQuery) -> bool:
    return query.where is not None and any(
        p.op == "between" for p in query.where.predicates
    )


def _rewrite_between(query: SelectQuery, db: Database) -> Query:
    predicates: list[Predicate] = []
    connectors: list[str] = []
    where = query.where
    assert where is not None
    for index, predicate in enumerate(where.predicates):
        if index > 0:
            connectors.append(where.connectors[index - 1])
        if predicate.op == "between" and predicate.right2 is not None:
            predicates.append(
                Predicate(left=predicate.left, op=">=", right=predicate.right)
            )
            connectors.append("and")
            predicates.append(
                Predicate(left=predicate.left, op="<=", right=predicate.right2)
            )
        else:
            predicates.append(predicate)
    return replace(
        query,
        where=Condition(
            predicates=tuple(predicates), connectors=tuple(connectors)
        ),
    )


def _can_rewrite_count_star(query: SelectQuery, db: Database) -> bool:
    has_count_star = any(
        isinstance(e, AggExpr) and isinstance(e.arg, Star)
        for e in query.select
    )
    return has_count_star and bool(query.from_.tables)


def _rewrite_count_star(query: SelectQuery, db: Database) -> Query:
    table = db.schema.table(query.from_.tables[0])
    column = table.columns[0]
    new_select = tuple(
        AggExpr(
            func="count",
            arg=ColumnRef(column=column.name.lower(), table=table.name.lower()),
        )
        if isinstance(e, AggExpr) and isinstance(e.arg, Star)
        else e
        for e in query.select
    )
    return replace(query, select=new_select)


def _int_cmp_targets(query: SelectQuery, db: Database) -> list[int]:
    """Indices of WHERE predicates rewritable as off-by-one comparisons.

    ``x >= 5`` equals ``x > 4`` (and ``<= 5`` equals ``< 6``) whenever the
    column holds integers only.
    """
    if query.where is None:
        return []
    targets = []
    for index, predicate in enumerate(query.where.predicates):
        if predicate.op not in (">=", "<="):
            continue
        if not isinstance(predicate.right, Literal):
            continue
        if not isinstance(predicate.right.value, int):
            continue
        left = predicate.left
        if not isinstance(left, ColumnRef) or left.table is None:
            continue
        try:
            values = db.column_values(left.table, left.column)
        except SqlError:  # unknown table/column: not rewritable, skip
            continue
        if values and all(isinstance(v, int) for v in values):
            targets.append(index)
    return targets


def _can_rewrite_int_cmp(query: SelectQuery, db: Database) -> bool:
    return bool(_int_cmp_targets(query, db))


def _rewrite_int_cmp(query: SelectQuery, db: Database) -> Query:
    targets = set(_int_cmp_targets(query, db))
    where = query.where
    assert where is not None
    predicates = []
    for index, predicate in enumerate(where.predicates):
        if index in targets:
            literal = predicate.right
            assert isinstance(literal, Literal)
            if predicate.op == ">=":
                predicates.append(
                    replace(
                        predicate, op=">", right=Literal(literal.value - 1)
                    )
                )
            else:
                predicates.append(
                    replace(
                        predicate, op="<", right=Literal(literal.value + 1)
                    )
                )
        else:
            predicates.append(predicate)
    return replace(
        query,
        where=Condition(
            predicates=tuple(predicates), connectors=where.connectors
        ),
    )


def _can_rewrite_superlative(query: SelectQuery) -> bool:
    return (
        query.limit == 1
        and len(query.order_by) == 1
        and len(query.select) == 1
        and isinstance(query.select[0], ColumnRef)
        and isinstance(query.order_by[0].expr, ColumnRef)
        and query.select[0] == query.order_by[0].expr
        and not query.group_by
        and query.where is None
    )


def _rewrite_superlative(query: SelectQuery, db: Database) -> Query:
    func = "max" if query.order_by[0].desc else "min"
    return replace(
        query,
        select=(AggExpr(func=func, arg=query.select[0]),),
        order_by=(),
        limit=None,
    )
