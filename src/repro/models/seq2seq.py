"""GrammarSeq2Seq: the simulated Seq2seq NL2SQL translation model.

A sketch-then-fill semantic parser with genuinely auto-regressive decoding:
a learned sketch classifier proposes clause structures, then beam search
fills tables, columns, predicates and values left-to-right, scored by the
learned lexicon plus per-question deterministic decision noise.  Four
presets (:mod:`repro.models.registry`) mirror BRIDGE/GAP/LGESQL/RESDSQL
capability profiles.

Metadata conditioning (Section III-B2): when the model was trained with
metadata prefixes (``metadata_trained``), a supplied
:class:`~repro.core.metadata.QueryMetadata` constrains the sketch stage —
operator tags select compatible structures, the hardness value biases the
structural size, and the correctness indicator modulates decode fidelity.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.data.dataset import Dataset
from repro.models import beam as beamlib
from repro.models.base import Candidate, TranslationModel
from repro.models.lexicon import Lexicon, content_tokens
from repro.models.mentions import (
    NumberMention,
    extract_mentions,
    question_tokens,
)
from repro.models.sketch import Sketch, SketchModel
from repro.schema.database import Database
from repro.schema.schema import NUMBER, TEXT, Schema
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    JoinCond,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
)
from repro.sqlkit.hardness import RATING_BASE, RATING_SCORES
from repro.sqlkit.printer import to_sql

_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


@dataclass(frozen=True)
class ModelProfile:
    """Capability knobs distinguishing the simulated baselines."""

    name: str
    temperature: float = 0.7  # scale of per-decision Gumbel noise
    sketch_top: int = 4  # how many sketch structures enter the beam
    column_noise: float = 0.4  # extra noise on column-choice scores
    value_skill: float = 1.0  # weight on value-evidence in predicate scores
    predicts_values: bool = True
    seed: int = 0


@dataclass(frozen=True)
class _State:
    """Partial decode state for one sketch."""

    sketch: Sketch
    tables: tuple[str, ...] = ()
    joins: tuple[JoinCond, ...] = ()
    select: tuple = ()
    where_predicates: tuple[Predicate, ...] = ()
    connectors: tuple[str, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    having: Condition | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    setop_right: Query | None = None
    from_inner: Query | None = None


def estimate_rating(sketch: Sketch) -> int:
    """Approximate hardness rating implied by a sketch's structure."""
    rating = RATING_BASE
    if sketch.n_tables > 1:
        rating += RATING_SCORES["join"] * (sketch.n_tables - 1)
    if sketch.n_predicates > 0:
        rating += RATING_SCORES["where"]
        rating += RATING_SCORES["extra_predicate"] * (sketch.n_predicates - 1)
    if sketch.shape.startswith("nested:"):
        rating += RATING_SCORES["subquery"] + RATING_SCORES["where"]
    if sketch.shape == "from_subquery":
        rating += RATING_SCORES["subquery"] + RATING_SCORES["group"]
        rating += RATING_SCORES["having"]
    if sketch.shape.startswith("setop:"):
        rating += RATING_SCORES["setop"] + RATING_SCORES["where"]
    if sketch.has_group:
        rating += RATING_SCORES["group"]
    if sketch.has_having:
        rating += RATING_SCORES["having"]
    if sketch.order != "none":
        rating += RATING_SCORES["order"]
    if sketch.limit != "none":
        rating += RATING_SCORES["limit"]
    n_aggs = len(sketch.select_aggs) + (1 if sketch.count_star else 0)
    if sketch.order_on_agg:
        n_aggs += 1
    if n_aggs > 1:
        rating += RATING_SCORES["agg"] * (n_aggs - 1)
    return rating


class GrammarSeq2Seq(TranslationModel):
    """Sketch-then-fill grammar parser with beam-search decoding."""

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self.name = profile.name
        self.predicts_values = profile.predicts_values
        self.metadata_trained = False
        self.lexicon = Lexicon()
        self.sketch_model = SketchModel()
        self._fitted = False

    # ------------------------------------------------------------------
    # Training.

    def fit(self, train: Dataset, with_metadata: bool = False) -> "GrammarSeq2Seq":
        """Learn lexicon + sketch statistics; optionally metadata-augmented.

        ``with_metadata=True`` corresponds to the paper's augmented training
        (metadata prefixes + negative samples): the model then honours
        metadata conditions at decode time.
        """
        self.lexicon = Lexicon().fit(train)
        self.sketch_model = SketchModel().fit(train)
        self.metadata_trained = with_metadata
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Decoding entry point.

    def translate(
        self,
        question: str,
        db: Database,
        metadata=None,
        beam_size: int = 5,
    ) -> list[Candidate]:
        """Decode up to *beam_size* candidates via staged beam search."""
        if not self._fitted:
            raise RuntimeError(f"model {self.name} is not fitted")
        if not self.metadata_trained:
            # Models not trained with metadata prefixes ignore the condition
            # entirely (Section III-B1).
            metadata = None
        rng = self._decode_rng(question, metadata)
        noise_scale = self.profile.temperature
        if metadata is not None and self.metadata_trained:
            indicator = getattr(metadata, "correctness", "correct")
            if indicator == "incorrect":
                # Trained to avoid the gold parse under the incorrect tag:
                # decoding becomes adversarially noisy.
                noise_scale = noise_scale * 3.0 + 1.5
            elif indicator is None or indicator == "none":
                noise_scale = noise_scale * 1.4 + 0.2

        sketches = self._candidate_sketches(question, metadata, db)
        if not sketches:
            return []

        context = _Context(
            model=self,
            question=question,
            db=db,
            rng=rng,
            noise=noise_scale,
        )
        initial = [
            beamlib.Beam(score=score, state=_State(sketch=sk))
            for score, sk in sketches
        ]
        stages = [
            context.stage_tables,
            context.stage_select,
            context.stage_where,
            context.stage_group,
            context.stage_having,
            context.stage_order,
            context.stage_setop,
        ]
        width = max(beam_size * 3, 8)
        final = beamlib.run(initial, stages, width)

        candidates: list[Candidate] = []
        seen: set[str] = set()
        for item in final:
            query = context.finalize(item.state)
            if query is None:
                continue
            key = to_sql(query)
            if key in seen:
                continue
            seen.add(key)
            candidates.append(Candidate(query=query, score=item.score))
            if len(candidates) >= beam_size:
                break
        return candidates

    # ------------------------------------------------------------------
    # Sketch stage.

    def _candidate_sketches(
        self, question: str, metadata, db: Database
    ) -> list[tuple[float, Sketch]]:
        from repro.models.cues import extract_cues

        cues = extract_cues(question, db)
        scored = self.sketch_model.score_sketches(question, cues=cues)
        if metadata is not None and self.metadata_trained:
            tags = frozenset(getattr(metadata, "tags", frozenset()))
            if tags:
                matching = [
                    (score, sk)
                    for score, sk in scored
                    if sk.operator_tags() == tags
                ]
                if not matching:
                    # Relax to supersets/subsets differing by soft tags only.
                    soft = {"agg", "limit", "having"}
                    matching = [
                        (score, sk)
                        for score, sk in scored
                        if sk.operator_tags() - soft == tags - soft
                    ]
                if matching:
                    scored = matching
            rating = getattr(metadata, "rating", None)
            if rating is not None:
                scored = [
                    (score - abs(estimate_rating(sk) - rating) / 200.0, sk)
                    for score, sk in scored
                ]
                scored.sort(key=lambda item: -item[0])
            scored = self._apply_correctness(question, metadata, scored)
        return scored[: self.profile.sketch_top]

    def _apply_correctness(self, question, metadata, scored):
        """Honour the correctness indicator at the sketch stage.

        Trained with ``incorrect``-tagged negative samples, the model has
        learned to associate that indicator with structures that do *not*
        fit the question: conditioning on it inverts the sketch preference.
        A missing indicator (never seen during augmented training) leaves
        the model partially uncalibrated: sketch scores get jittered.
        """
        indicator = getattr(metadata, "correctness", "correct")
        if indicator == "incorrect":
            flipped = [(-score, sketch) for score, sketch in scored]
            flipped.sort(key=lambda item: -item[0])
            return flipped
        if indicator is None or indicator == "none":
            rng = self._decode_rng(question, metadata)
            jittered = [
                (score + float(rng.normal(0.0, 2.5)), sketch)
                for score, sketch in scored
            ]
            jittered.sort(key=lambda item: -item[0])
            return jittered
        return scored

    def _decode_rng(self, question: str, metadata) -> np.random.Generator:
        meta_part = "" if metadata is None else repr(metadata)
        digest = zlib.crc32(
            f"{self.profile.seed}:{self.name}:{question}:{meta_part}".encode()
        )
        return np.random.default_rng(digest)


class _Context:
    """Per-question decode context: scoring, stages and finalisation."""

    def __init__(
        self,
        model: GrammarSeq2Seq,
        question: str,
        db: Database,
        rng: np.random.Generator,
        noise: float,
    ) -> None:
        self.model = model
        self.profile = model.profile
        self.lexicon = model.lexicon
        self.question = question
        self.db = db
        self.schema: Schema = db.schema
        self.rng = rng
        self.noise = noise
        self.tokens = set(content_tokens(question))
        self.qtokens = question_tokens(question)
        self.mentions = extract_mentions(question)
        #: mentions usable as WHERE comparison values.
        self.cmp_mentions = [
            m
            for m in self.mentions
            if not (m.is_limit or m.is_count_threshold or m.is_between_bound)
        ]
        self._phrase_cache: dict[str, list[int]] = {}
        # Question regions: projections are phrased before the first
        # table/filter marker, grouping after "for each"/"per", ordering
        # after sort/superlative markers.
        markers = {
            "of", "from", "for", "whose", "with", "that", "who", "which",
            "sorted", "ordered", "per", "grouped", "but", "excluding",
        }
        self._proj_end = next(
            (i for i, t in enumerate(self.qtokens) if t in markers and i > 0),
            len(self.qtokens),
        )
        self._group_pos = self._find_marker(("each", "per", "grouped"))
        self._order_pos = self._find_marker(
            ("sorted", "ordered", "highest", "lowest", "largest",
             "smallest", "top")
        )

    def _find_marker(self, words: tuple[str, ...]) -> int | None:
        for index, token in enumerate(self.qtokens):
            if token in words:
                return index
        return None

    # -- noise ---------------------------------------------------------

    def _gumbel(self, scale: float = 1.0) -> float:
        u = float(self.rng.uniform(1e-9, 1.0 - 1e-9))
        return -np.log(-np.log(u)) * self.noise * scale

    @staticmethod
    def _log_normalize(choices):
        """Rescale stage choices to log-probabilities (length-bias free)."""
        if not choices:
            return choices
        scores = np.array([score for score, __ in choices])
        peak = scores.max()
        lse = peak + np.log(np.exp(scores - peak).sum())
        return [(float(score - lse), state) for score, state in choices]

    # -- element scores --------------------------------------------------

    def _table_score(self, table_name: str) -> float:
        table = self.schema.table(table_name)
        return self.lexicon.score_table(
            self.question, self.schema.db_id, table
        ) + self._gumbel(0.6)

    def _column_score(self, table_name: str, column_name: str) -> float:
        table = self.schema.table(table_name)
        base = self.lexicon.score_column(
            self.question, self.schema.db_id, table, column_name
        )
        return base + self._gumbel(self.profile.column_noise)

    def _ranked_columns(
        self, tables: tuple[str, ...], ctype: str | None = None
    ) -> list[tuple[float, ColumnRef]]:
        scored = []
        for table_name in tables:
            table = self.schema.table(table_name)
            for column in table.columns:
                if ctype is not None and column.ctype != ctype:
                    continue
                score = self._column_score(table_name, column.name)
                scored.append(
                    (
                        score,
                        ColumnRef(
                            column=column.name.lower(), table=table_name.lower()
                        ),
                    )
                )
        scored.sort(key=lambda item: -item[0])
        return scored

    # -- stage 1: tables -------------------------------------------------

    def stage_tables(self, state: _State):
        """Stage 1: choose the FROM tables (single, FK pair, or chain)."""
        sketch = state.sketch
        choices = []
        if sketch.n_tables <= 1:
            scored = sorted(
                ((self._table_score(t.name), t.name.lower()) for t in self.schema.tables),
                key=lambda item: -item[0],
            )
            for score, name in scored[:3]:
                choices.append((score, replace(state, tables=(name,))))
            return self._log_normalize(choices)
        # Join: FK-linked pairs, or FK chains of three tables.
        def fk_join(fk) -> JoinCond:
            return JoinCond(
                left=ColumnRef(
                    column=fk.child_column.lower(),
                    table=fk.child_table.lower(),
                ),
                right=ColumnRef(
                    column=fk.parent_column.lower(),
                    table=fk.parent_table.lower(),
                ),
            )

        options = []
        if sketch.n_tables >= 3:
            fks = self.schema.foreign_keys
            for fk1 in fks:
                for fk2 in fks:
                    if fk1 is fk2:
                        continue
                    tables: list[str] = []
                    for name in (
                        fk1.child_table, fk1.parent_table,
                        fk2.child_table, fk2.parent_table,
                    ):
                        if name.lower() not in tables:
                            tables.append(name.lower())
                    if len(tables) != 3:
                        continue
                    score = sum(self._table_score(t) for t in tables)
                    options.append(
                        (score, tuple(tables), (fk_join(fk1), fk_join(fk2)))
                    )
        else:
            for fk in self.schema.foreign_keys:
                child = fk.child_table.lower()
                parent = fk.parent_table.lower()
                score = self._table_score(child) + self._table_score(parent)
                options.append((score, (child, parent), (fk_join(fk),)))
        options.sort(key=lambda item: -item[0])
        for score, tables, joins in options[:4]:
            choices.append((score, replace(state, tables=tables, joins=joins)))
        return self._log_normalize(choices)

    # -- stage 2: select ---------------------------------------------------

    def stage_select(self, state: _State):
        """Stage 2: fill the SELECT slots dictated by the sketch."""
        sketch = state.sketch
        slots: list[str] = []
        if sketch.count_star:
            slots.append("count_star")
        if sketch.has_arith:
            slots.append("arith")
        slots.extend(f"agg:{func}" for func in sketch.select_aggs)
        remaining = sketch.n_select - len(slots)
        slots.extend("col" for _ in range(max(remaining, 0)))
        ranked_all = self._ranked_columns(state.tables)
        ranked_num = self._ranked_columns(state.tables, NUMBER)
        combos: list[tuple[float, tuple]] = [(0.0, ())]
        for slot in slots:
            expanded: list[tuple[float, tuple]] = []
            for combo_score, items in combos:
                if slot == "count_star":
                    expanded.append(
                        (combo_score, items + (AggExpr(func="count", arg=Star()),))
                    )
                    continue
                if slot == "arith":
                    picked = 0
                    for score, ref in ranked_num:
                        expr = Arith(
                            op="-",
                            left=AggExpr(func="max", arg=ref),
                            right=AggExpr(func="min", arg=ref),
                        )
                        expanded.append((combo_score + score, items + (expr,)))
                        picked += 1
                        if picked >= 3:
                            break
                    if picked == 0:
                        expanded.append((combo_score - 2.0, items))
                    continue
                pool = ranked_num if slot.startswith("agg:") else ranked_all
                used = {
                    ref.key()
                    for expr in items
                    if isinstance(expr, ColumnRef)
                    for ref in (expr,)
                }
                picked = 0
                for score, ref in pool:
                    if slot == "col" and ref.key() in used:
                        continue
                    score = (
                        score
                        + self._region_bonus(ref, 0, self._proj_end)
                        + self._key_penalty(ref)
                    )
                    if slot.startswith("agg:"):
                        func = slot.split(":", 1)[1]
                        expr = AggExpr(func=func, arg=ref)
                    else:
                        expr = ref
                    expanded.append((combo_score + score, items + (expr,)))
                    picked += 1
                    if picked >= 3:
                        break
                if picked == 0:
                    expanded.append((combo_score - 2.0, items))
            combos = sorted(expanded, key=lambda item: -item[0])[:6]
        choices = []
        for score, items in combos:
            if not items:
                continue
            choices.append((score, replace(state, select=items)))
        return self._log_normalize(choices)

    # -- stage 3: where (plain predicates + nested subqueries) -----------

    def _predicate_candidates(
        self, tables: tuple[str, ...], kinds: tuple[str, ...]
    ) -> list[tuple[float, Predicate]]:
        """Grounded predicate candidates over in-scope columns."""
        candidates: list[tuple[float, Predicate]] = []
        kind_pool = kinds if kinds else ("eq", "cmp")
        for kind in set(kind_pool):
            if kind in ("eq", "neq", "like"):
                candidates.extend(self._text_predicates(tables, kind))
            elif kind in ("cmp", "between"):
                candidates.extend(self._number_predicates(tables, kind))
        candidates.sort(key=lambda item: -item[0])
        return candidates

    def _text_predicates(self, tables, kind):
        out = []
        for score, ref in self._ranked_columns(tables, TEXT)[:5]:
            values = self.db.column_values(ref.table, ref.column)
            best_value, best_hit = None, 0.0
            seen_values = set()
            for value in values:
                if not isinstance(value, str) or value in seen_values:
                    continue
                seen_values.add(value)
                value_tokens = set(re.findall(r"[a-z0-9]+", value.lower()))
                if not value_tokens:
                    continue
                hit = len(value_tokens & self.tokens) / len(value_tokens)
                if hit > best_hit:
                    best_hit, best_value = hit, value
            if best_value is None:
                continue
            evidence = self.profile.value_skill * 2.5 * best_hit
            evidence += self._value_proximity(ref, best_value)
            if kind == "like":
                token = best_value.split()[0]
                predicate = Predicate(
                    left=ref, op="like", right=Literal(f"%{token}%")
                )
            else:
                op = "=" if kind == "eq" else "!="
                predicate = Predicate(left=ref, op=op, right=Literal(best_value))
            out.append((score + evidence + self._gumbel(0.5), predicate))
        return out

    def _column_positions(self, ref: ColumnRef) -> list[int]:
        """Question positions where the column is mentioned.

        Contiguous full-phrase matches are preferred; otherwise tokens of
        the phrase that are *distinctive* (not part of the table's own
        phrase) are used, so "battle id" and "battle year" don't collide on
        the shared word "battle".
        """
        key = ref.key()
        if key in self._phrase_cache:
            return self._phrase_cache[key]
        table = self.schema.table(ref.table) if ref.table else None
        phrases = [ref.column.replace("_", " ")]
        table_words: set[str] = set()
        if table is not None:
            table_words = set(question_tokens(table.nl)) | set(
                question_tokens(table.name.replace("_", " "))
            )
            if table.has_column(ref.column):
                column = table.column(ref.column)
                phrases.append(column.nl)
                phrases.extend(column.synonyms)
        exact: list[int] = []
        loose: list[int] = []
        for phrase in phrases:
            words = question_tokens(phrase)
            if not words:
                continue
            # Contiguous full-phrase match.
            for start in range(len(self.qtokens) - len(words) + 1):
                if self.qtokens[start : start + len(words)] == words:
                    exact.extend(range(start, start + len(words)))
            distinctive = [w for w in words if w not in table_words] or words
            loose.extend(
                i for i, t in enumerate(self.qtokens) if t in set(distinctive)
            )
        positions = sorted(set(exact)) if exact else sorted(set(loose))
        self._phrase_cache[key] = positions
        return positions

    def _proximity(self, ref: ColumnRef, mention: NumberMention) -> float:
        """Affinity between a column mention and a number mention."""
        positions = self._column_positions(ref)
        if not positions:
            return 0.0
        distance = min(abs(p - mention.position) for p in positions)
        return max(0.0, 4.5 - 0.9 * distance)

    def _value_proximity(self, ref: ColumnRef, value: str) -> float:
        """Affinity between a column mention and a literal value mention."""
        value_words = re.findall(r"[a-z0-9]+", value.lower())
        if not value_words:
            return 0.0
        value_positions = [
            i for i, t in enumerate(self.qtokens) if t == value_words[0]
        ]
        positions = self._column_positions(ref)
        if not value_positions or not positions:
            return 0.0
        distance = min(
            abs(p - v) for p in positions for v in value_positions
        )
        return max(0.0, 4.0 - 0.8 * distance)

    def _region_bonus(
        self, ref: ColumnRef, start: int, end: int, weight: float = 3.0
    ) -> float:
        """Bipolar region evidence for a column mention.

        Mentioned inside the region: +weight.  Mentioned in the question but
        only *outside* the region (it plays some other role): -0.8*weight.
        Not mentioned at all: neutral.
        """
        positions = self._column_positions(ref)
        if not positions:
            return 0.0
        if any(start <= p < end for p in positions):
            return weight
        return -0.8 * weight

    def _key_penalty(self, ref: ColumnRef) -> float:
        """Id/key columns are rarely projected or sorted on."""
        if ref.table is not None and self.schema.is_key_column(
            ref.table, ref.column
        ):
            return -3.0
        return 0.0

    def _near_bonus(
        self, ref: ColumnRef, anchor: int | None, weight: float = 2.5
    ) -> float:
        """Bonus when the column is mentioned just after an anchor token."""
        if anchor is None:
            return 0.0
        positions = self._column_positions(ref)
        if not positions:
            return 0.0
        if any(anchor < p <= anchor + 6 for p in positions):
            return weight
        return 0.0

    def _number_predicates(self, tables, kind):
        out = []
        ranked = self._ranked_columns(tables, NUMBER)[:5]
        if kind == "between":
            bounds = [m for m in self.mentions if m.is_between_bound]
            if len(bounds) < 2:
                return out
            low, high = sorted((bounds[0].value, bounds[1].value))
            for score, ref in ranked:
                affinity = self._proximity(ref, bounds[0])
                predicate = Predicate(
                    left=ref,
                    op="between",
                    right=Literal(low),
                    right2=Literal(high),
                )
                out.append(
                    (score + affinity + 1.0 + self._gumbel(0.5), predicate)
                )
            return out
        for mention in self.cmp_mentions:
            op = mention.op
            if op == "=":
                # Numeric equality is rare; treat as a weak comparison guess.
                op = ">" if self.rng.random() < 0.5 else "<"
            affinities = [
                (self._proximity(ref, mention), score, ref)
                for score, ref in ranked
            ]
            best_affinity = max((a for a, __, __ in affinities), default=0.0)
            for affinity, score, ref in affinities:
                # The column mentioned closest to the number is almost
                # always the compared one; reward it ordinally.
                nearest = 3.0 if affinity == best_affinity and affinity > 0 else 0.0
                predicate = Predicate(
                    left=ref, op=op, right=Literal(mention.value)
                )
                out.append(
                    (
                        score + affinity + nearest + 0.8 + self._gumbel(0.5),
                        predicate,
                    )
                )
        return out

    def stage_where(self, state: _State):
        """Stage 3: fill WHERE predicates or construct the nested subquery."""
        sketch = state.sketch
        if sketch.shape.startswith("nested:"):
            return self._stage_nested(state)
        if sketch.n_predicates == 0:
            return []
        kinds = sketch.predicate_kinds
        pool = self._predicate_candidates(state.tables, kinds)
        if not pool:
            return [(-3.0, state)]
        combos: list[tuple[float, tuple[Predicate, ...]]] = [(0.0, ())]
        for __ in range(sketch.n_predicates):
            expanded = []
            for combo_score, preds in combos:
                used = {(p.left, p.op) for p in preds}
                picked = 0
                for score, predicate in pool:
                    if (predicate.left, predicate.op) in used:
                        continue
                    expanded.append((combo_score + score, preds + (predicate,)))
                    picked += 1
                    if picked >= 3:
                        break
                if picked == 0:
                    expanded.append((combo_score, preds))
            combos = sorted(expanded, key=lambda item: -item[0])[:5]
        connector = "or" if sketch.has_or else "and"
        choices = []
        for score, preds in combos:
            if not preds:
                continue
            connectors = tuple(connector for __ in range(len(preds) - 1))
            choices.append(
                (
                    score,
                    replace(
                        state, where_predicates=preds, connectors=connectors
                    ),
                )
            )
        return self._log_normalize(choices)

    def _stage_nested(self, state: _State):
        sketch = state.sketch
        table = state.tables[0] if state.tables else None
        if table is None:
            return []
        if sketch.shape == "nested:scalar":
            anchor = self._find_marker(("average", "mean", "total"))
            choices = []
            for score, ref in self._ranked_columns(state.tables, NUMBER)[:3]:
                score = score + self._near_bonus(ref, anchor, weight=3.0)
                inner = SelectQuery(
                    select=(AggExpr(func="avg", arg=ref),),
                    from_=FromClause(tables=(ref.table,)),
                )
                direction_up = any(
                    w in self.question.lower() for w in ("above", "more", "greater", "over")
                )
                op = ">" if direction_up else "<"
                predicate = Predicate(left=ref, op=op, right=inner)
                choices.append(
                    (score, replace(state, where_predicates=(predicate,)))
                )
            return self._log_normalize(choices)
        # nested:in / nested:not_in over a foreign key.
        negated = sketch.shape == "nested:not_in"
        choices = []
        for fk in self.schema.foreign_keys:
            if fk.parent_table.lower() != table:
                continue
            child = fk.child_table.lower()
            link_score = self._table_score(child)
            inner_select = ColumnRef(
                column=fk.child_column.lower(), table=child
            )
            inner_pool = self._predicate_candidates((child,), ("eq", "cmp"))
            inner_options: list[tuple[float, Condition | None]] = [(0.0, None)]
            for score, predicate in inner_pool[:2]:
                inner_options.append(
                    (score, Condition(predicates=(predicate,)))
                )
            for extra, inner_where in inner_options:
                inner = SelectQuery(
                    select=(inner_select,),
                    from_=FromClause(tables=(child,)),
                    where=inner_where,
                )
                predicate = Predicate(
                    left=ColumnRef(
                        column=fk.parent_column.lower(), table=table
                    ),
                    op="in",
                    right=inner,
                    negated=negated,
                )
                choices.append(
                    (
                        link_score + extra + self._gumbel(0.5),
                        replace(state, where_predicates=(predicate,)),
                    )
                )
        choices.sort(key=lambda item: -item[0])
        return self._log_normalize(choices[:4])

    # -- stage 4/5: group + having ----------------------------------------

    def stage_group(self, state: _State):
        """Stage 4: choose the GROUP BY column."""
        if not state.sketch.has_group:
            return []
        choices = []
        for score, ref in self._ranked_columns(state.tables, TEXT)[:3]:
            score = score + self._near_bonus(ref, self._group_pos)
            choices.append((score, replace(state, group_by=(ref,))))
        if not choices:
            for score, ref in self._ranked_columns(state.tables)[:2]:
                choices.append((score, replace(state, group_by=(ref,))))
        return self._log_normalize(choices)

    def _count_threshold(self) -> tuple[int, str]:
        """HAVING-count threshold and operator from the question."""
        for mention in self.mentions:
            if mention.is_count_threshold:
                op = ">=" if mention.op == ">=" else ">"
                return int(mention.value), op
        if self.mentions:
            mention = self.mentions[0]
            return int(mention.value), ">=" if mention.op == ">=" else ">"
        return 1, ">"

    def stage_having(self, state: _State):
        """Stage 5: build the HAVING count threshold."""
        if not state.sketch.has_having:
            return []
        threshold, op = self._count_threshold()
        having = Condition(
            predicates=(
                Predicate(
                    left=AggExpr(func="count", arg=Star()),
                    op=op,
                    right=Literal(threshold),
                ),
            )
        )
        return [(0.0, replace(state, having=having))]

    # -- stage 6: order + limit ------------------------------------------

    def stage_order(self, state: _State):
        """Stage 6: choose the ORDER BY key, direction and LIMIT."""
        sketch = state.sketch
        if sketch.order == "none":
            return []
        desc = sketch.order == "desc"
        limit = None
        if sketch.limit == "one":
            limit = 1
        elif sketch.limit == "k":
            limits = [m for m in self.mentions if m.is_limit]
            if limits:
                limit = int(limits[0].value)
            else:
                ints = [
                    int(m.value)
                    for m in self.mentions
                    if float(m.value).is_integer()
                ]
                limit = ints[0] if ints else 3
        choices = []
        if sketch.order_on_agg:
            expr = AggExpr(func="count", arg=Star())
            for existing in state.select:
                if isinstance(existing, AggExpr):
                    expr = existing
                    break
            choices.append(
                (
                    0.5,
                    replace(
                        state,
                        order_by=(OrderItem(expr=expr, desc=desc),),
                        limit=limit,
                    ),
                )
            )
            return choices
        for score, ref in self._ranked_columns(state.tables, NUMBER)[:3]:
            score = (
                score
                + self._near_bonus(ref, self._order_pos)
                + self._key_penalty(ref)
            )
            choices.append(
                (
                    score,
                    replace(
                        state,
                        order_by=(OrderItem(expr=ref, desc=desc),),
                        limit=limit,
                    ),
                )
            )
        return self._log_normalize(choices)

    # -- stage 7: set-operation right branch / FROM subquery ---------------

    def stage_setop(self, state: _State):
        """Stage 7: build the set-operation right branch or FROM subquery."""
        sketch = state.sketch
        if sketch.shape == "from_subquery":
            return self._stage_from_subquery(state)
        if not sketch.shape.startswith("setop:"):
            return []
        if not state.select or not state.tables:
            return []
        ref = None
        for expr in state.select:
            if isinstance(expr, ColumnRef):
                ref = expr
                break
        if ref is None:
            return []
        pool = self._predicate_candidates(state.tables, ("eq", "neq", "cmp"))
        choices = []
        for score, predicate in pool[:3]:
            right = SelectQuery(
                select=(ref,),
                from_=FromClause(tables=state.tables, joins=state.joins),
                where=Condition(predicates=(predicate,)),
            )
            choices.append((score, replace(state, setop_right=right)))
        return self._log_normalize(choices)

    def _stage_from_subquery(self, state: _State):
        choices = []
        threshold, __ = self._count_threshold()
        for score, ref in self._ranked_columns(state.tables, TEXT)[:3]:
            inner = SelectQuery(
                select=(ref,),
                from_=FromClause(tables=(ref.table,)),
                group_by=(ref,),
                having=Condition(
                    predicates=(
                        Predicate(
                            left=AggExpr(func="count", arg=Star()),
                            op=">",
                            right=Literal(threshold),
                        ),
                    )
                ),
            )
            choices.append((score, replace(state, from_inner=inner)))
        return self._log_normalize(choices)

    # -- finalisation -------------------------------------------------------

    def finalize(self, state: _State) -> Query | None:
        """Assemble the completed decode state into a Query (or None)."""
        sketch = state.sketch
        if not state.select:
            return None
        if sketch.shape == "from_subquery":
            if state.from_inner is None:
                return None
            query: Query = SelectQuery(
                select=(AggExpr(func="count", arg=Star()),),
                from_=FromClause(subquery=state.from_inner),
            )
            return self._strip_values(query)
        if not state.tables:
            return None
        where = None
        if state.where_predicates:
            where = Condition(
                predicates=state.where_predicates, connectors=state.connectors
            )
        select = state.select
        if sketch.distinct and not any(
            isinstance(e, AggExpr) for e in select
        ):
            distinct = True
        else:
            distinct = sketch.distinct
        main = SelectQuery(
            select=select,
            from_=FromClause(tables=state.tables, joins=state.joins),
            distinct=distinct,
            where=where,
            group_by=state.group_by,
            having=state.having,
            order_by=state.order_by,
            limit=state.limit,
        )
        if sketch.shape.startswith("setop:"):
            if state.setop_right is None:
                return None
            op = sketch.shape.split(":", 1)[1]
            left = replace(main, where=None) if op == "except" and where is None else main
            query = SetQuery(op=op, left=left, right=state.setop_right)
        else:
            query = main
        return self._strip_values(query)

    def _strip_values(self, query: Query) -> Query:
        """Replace literal values with placeholders for non-value models."""
        if self.profile.predicts_values:
            return query
        return _replace_literals(query)


# ----------------------------------------------------------------------
# Helpers.


def _replace_literals(query: Query) -> Query:
    """Rewrite every predicate literal to the 'value' placeholder."""
    if isinstance(query, SetQuery):
        return SetQuery(
            op=query.op,
            left=_replace_literals(query.left),
            right=_replace_literals(query.right),
        )

    def fix_condition(condition: Condition | None) -> Condition | None:
        if condition is None:
            return None
        fixed = []
        for predicate in condition.predicates:
            right = predicate.right
            if isinstance(right, Literal):
                right = Literal("value")
            elif isinstance(right, (SelectQuery, SetQuery)):
                right = _replace_literals(right)
            elif isinstance(right, tuple):
                right = tuple(Literal("value") for __ in right)
            right2 = predicate.right2
            if isinstance(right2, Literal):
                right2 = Literal("value")
            fixed.append(replace(predicate, right=right, right2=right2))
        return Condition(
            predicates=tuple(fixed), connectors=condition.connectors
        )

    from_ = query.from_
    if from_.subquery is not None:
        from_ = FromClause(subquery=_replace_literals(from_.subquery))
    return replace(
        query,
        from_=from_,
        where=fix_condition(query.where),
        having=fix_condition(query.having),
    )
