"""Multi-label metadata classifier (Section III-A2).

Maps an NL question (with schema context) to metadata labels: one label per
operator tag plus one per observed hardness-rating value.  Architecturally
this mirrors the paper's construction — the translation model's *encoder*
(here: the TF-IDF featurizer + schema-grounded cue features) with the
decoder replaced by a classification layer — trained with BCE-with-logits.

Labels whose logit exceeds the classification threshold ``p`` (default 0,
the paper's default) are selected; lowering ``p`` toward -60 admits noisier
labels (the Fig. 6a sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metadata import TAG_VOCABULARY, extract_metadata
from repro.core.resilience import fire
from repro.data.dataset import Dataset
from repro.models.cues import CueEvidence, extract_cues
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear, Module
from repro.nn.losses import bce_with_logits
from repro.nn.optim import Adam
from repro.nn.text import TextFeaturizer
from repro.schema.database import Database


def _cue_feature_vector(cues: CueEvidence) -> np.ndarray:
    """Dense schema-grounded features appended to the text features."""
    tags = [
        1.0 if cues.setop == op else 0.0
        for op in ("union", "intersect", "except")
    ]
    nested = [
        1.0 if cues.nested == kind else 0.0
        for kind in ("in", "not_in", "scalar")
    ]
    return np.array(
        tags
        + nested
        + [
            float(cues.expected_predicates),
            1.0 if cues.group else 0.0,
            1.0 if cues.having else 0.0,
            1.0 if cues.order != "none" else 0.0,
            1.0 if cues.superlative != "none" else 0.0,
            1.0 if cues.limit_k is not None else 0.0,
            1.0 if cues.count_question else 0.0,
            float(sum(cues.agg_counts.values())),
            1.0 if cues.distinct else 0.0,
            float(len(cues.matched_values)),
            float(cues.n_select_hint),
            float(min(cues.table_hints, 3)),
            1.0 if cues.from_subquery else 0.0,
        ]
    )


class _ClassifierNet(Module):
    """Shared encoder features -> hidden -> per-label logits."""

    def __init__(
        self, n_features: int, n_labels: int, rng: np.random.Generator
    ) -> None:
        self.hidden = Linear(n_features, 96, rng)
        self.output = Linear(96, n_labels, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.output(self.hidden(x).tanh())


@dataclass
class ClassifierConfig:
    """Training hyper-parameters of the metadata classifier."""
    epochs: int = 60
    batch_size: int = 64
    learning_rate: float = 2e-3
    buckets: int = 1024
    seed: int = 1234


class MetadataClassifier:
    """Multi-label classifier over operator tags and hardness values."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self._featurizer = TextFeaturizer(buckets=self.config.buckets)
        self._labels: list[object] = []
        self._label_index: dict[object, int] = {}
        self._net: _ClassifierNet | None = None
        self._losses: list[float] = []

    # ------------------------------------------------------------------

    @property
    def labels(self) -> list[object]:
        """Label vocabulary: tag strings plus ('rating', value) pairs."""
        return list(self._labels)

    @property
    def rating_labels(self) -> list[int]:
        """The observed hardness-rating label values, sorted."""
        return sorted(
            value for kind, value in (
                label for label in self._labels if isinstance(label, tuple)
            )
        )

    def _features(self, question: str, db: Database) -> np.ndarray:
        text = self._featurizer.transform(question)
        cues = _cue_feature_vector(extract_cues(question, db))
        return np.concatenate([text, cues])

    # ------------------------------------------------------------------

    def fit(self, train: Dataset) -> "MetadataClassifier":
        """Build the label vocabulary and train the classification head."""
        rng = np.random.default_rng(self.config.seed)
        # Build the label vocabulary from training metadata.
        observed_tags: set[str] = set()
        observed_ratings: set[int] = set()
        metadata = []
        for example in train.examples:
            meta = extract_metadata(example.sql)
            metadata.append(meta)
            observed_tags.update(meta.tags)
            observed_ratings.add(meta.rating)
        self._labels = [t for t in TAG_VOCABULARY if t in observed_tags]
        self._labels.extend(("rating", r) for r in sorted(observed_ratings))
        self._label_index = {label: i for i, label in enumerate(self._labels)}

        self._featurizer.fit([e.question for e in train.examples])
        features = np.stack(
            [
                self._features(e.question, train.database(e.db_id))
                for e in train.examples
            ]
        )
        targets = np.zeros((len(train.examples), len(self._labels)))
        for row, meta in enumerate(metadata):
            for tag in meta.tags:
                if tag in self._label_index:
                    targets[row, self._label_index[tag]] = 1.0
            rating_label = ("rating", meta.rating)
            targets[row, self._label_index[rating_label]] = 1.0

        self._net = _ClassifierNet(
            features.shape[1], len(self._labels), rng
        )
        optimizer = Adam(
            self._net.parameters(), lr=self.config.learning_rate
        )
        n = features.shape[0]
        self._losses = []
        for epoch in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.config.batch_size):
                index = order[start : start + self.config.batch_size]
                logits = self._net(Tensor(features[index]))
                loss = bce_with_logits(logits, Tensor(targets[index]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            self._losses.append(epoch_loss / max(batches, 1))
        return self

    # ------------------------------------------------------------------

    def logits(self, question: str, db: Database) -> dict[object, float]:
        """Raw label logits for *question*."""
        if self._net is None:
            raise RuntimeError("classifier is not fitted")
        features = self._features(question, db)
        raw = self._net(Tensor(features)).numpy()
        return {label: float(raw[i]) for i, label in enumerate(self._labels)}

    def predict(
        self, question: str, db: Database, threshold: float = 0.0
    ) -> tuple[set[str], list[int]]:
        """Selected (tags, candidate ratings) with logits above *threshold*.

        Ratings are sorted by logit, best first; at least one rating is
        always returned (the argmax) so composition never starves.
        """
        fire("classifier.predict")
        logits = self.logits(question, db)
        tags = {
            label
            for label, logit in logits.items()
            if isinstance(label, str) and logit > threshold
        }
        rating_items = [
            (logit, label[1])
            for label, logit in logits.items()
            if isinstance(label, tuple)
        ]
        rating_items.sort(key=lambda item: -item[0])
        ratings = [
            value for logit, value in rating_items if logit > threshold
        ]
        if not ratings and rating_items:
            ratings = [rating_items[0][1]]
        if not tags:
            tags = {"project"}
        return tags, ratings

    def training_losses(self) -> list[float]:
        """Per-epoch training losses (for convergence checks)."""
        return list(self._losses)
