"""Value grounding: fill literal placeholders before ranking.

Models that do not predict values (GAP, LGESQL) emit ``'value'``
placeholders.  The paper notes that MetaSQL "explicitly adds values before
the ranking procedure", which is why LGESQL+MetaSQL's execution accuracy
jumps.  This module implements that step: each placeholder is replaced by
the database value (picklist search) or question number that best matches
the NL question.
"""

from __future__ import annotations

import re
from dataclasses import replace

from repro.core.resilience import fire
from repro.models.mentions import extract_mentions, question_tokens
from repro.schema.database import Database
from repro.schema.schema import TEXT
from repro.sqlkit.ast import (
    ColumnRef,
    Condition,
    FromClause,
    Literal,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
)

_PLACEHOLDER = "value"


def ground_values(query: Query, question: str, db: Database) -> Query:
    """Replace ``'value'`` placeholders in *query* with grounded literals."""
    fire("values.ground_values")
    grounder = _Grounder(question, db)
    return grounder.rewrite(query)


class _Grounder:
    def __init__(self, question: str, db: Database) -> None:
        self.db = db
        self.question = question
        self.tokens = question_tokens(question)
        self.numbers = [
            m for m in extract_mentions(question) if not m.is_limit
        ]
        self._used_numbers: set[int] = set()

    # ------------------------------------------------------------------

    def rewrite(self, query: Query) -> Query:
        """Rewrite *query* with placeholders grounded (recursive)."""
        if isinstance(query, SetQuery):
            return SetQuery(
                op=query.op,
                left=self.rewrite(query.left),
                right=self.rewrite(query.right),
            )
        from_ = query.from_
        if from_.subquery is not None:
            from_ = FromClause(subquery=self.rewrite(from_.subquery))
        return replace(
            query,
            from_=from_,
            where=self._fix_condition(query.where),
            having=self._fix_condition(query.having),
        )

    def _fix_condition(self, condition: Condition | None) -> Condition | None:
        if condition is None:
            return None
        fixed = []
        for predicate in condition.predicates:
            fixed.append(self._fix_predicate(predicate))
        return Condition(
            predicates=tuple(fixed), connectors=condition.connectors
        )

    def _fix_predicate(self, predicate: Predicate) -> Predicate:
        right = predicate.right
        if isinstance(right, (SelectQuery, SetQuery)):
            return replace(predicate, right=self.rewrite(right))
        right2 = predicate.right2
        if self._is_placeholder(right):
            right = self._ground(predicate, first=True)
        if right2 is not None and self._is_placeholder(right2):
            right2 = self._ground(predicate, first=False)
        if isinstance(right, tuple):
            return replace(predicate, right=right)
        return replace(predicate, right=right, right2=right2)

    @staticmethod
    def _is_placeholder(value) -> bool:
        return isinstance(value, Literal) and value.value == _PLACEHOLDER

    # ------------------------------------------------------------------

    def _ground(self, predicate: Predicate, first: bool) -> Literal:
        left = predicate.left
        column_is_text = False
        resolved = left
        if isinstance(left, ColumnRef):
            schema = self.db.schema
            table_name = left.table
            if table_name is None or not schema.has_table(table_name):
                # Unqualified column: resolve through any owning table.
                owners = schema.tables_of_column(left.column)
                table_name = owners[0].name if owners else None
            if table_name is not None and schema.has_table(table_name):
                table = schema.table(table_name)
                if table.has_column(left.column):
                    column_is_text = table.column(left.column).ctype == TEXT
                    resolved = ColumnRef(
                        column=left.column, table=table_name.lower()
                    )
        if column_is_text and predicate.op in ("=", "!=", "like", "in"):
            value = self._best_text_value(resolved)
            if value is not None:
                if predicate.op == "like":
                    return Literal(f"%{str(value).split()[0]}%")
                return Literal(value)
            return Literal(_PLACEHOLDER)
        return self._best_number(first)

    def _best_text_value(self, ref: ColumnRef) -> str | None:
        """Picklist search: the column value best covered by the question."""
        token_set = set(self.tokens)
        best_value, best_score = None, 0.0
        seen: set[str] = set()
        for value in self.db.column_values(ref.table, ref.column):
            if not isinstance(value, str) or value in seen:
                continue
            seen.add(value)
            words = set(re.findall(r"[a-z0-9]+", value.lower()))
            if not words:
                continue
            coverage = len(words & token_set) / len(words)
            score = coverage * (1.0 + 0.1 * len(words))
            if coverage == 1.0 and score > best_score:
                best_score, best_value = score, value
        return best_value

    def _best_number(self, first: bool) -> Literal:
        available = [
            m
            for i, m in enumerate(self.numbers)
            if i not in self._used_numbers
        ]
        pool = available or self.numbers
        if not pool:
            return Literal(_PLACEHOLDER)
        mention = pool[0] if first else pool[-1]
        index = self.numbers.index(mention)
        self._used_numbers.add(index)
        return Literal(mention.value)
