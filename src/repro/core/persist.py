"""Persistence: save and load trained MetaSQL pipelines.

``save_pipeline`` writes every learned component to a directory —
the base model's lexicon/sketch statistics (and demonstration pool for LLM
sims), the multi-label classifier, the composition index and both ranking
stages — as JSON plus one ``weights.npz``.  ``load_pipeline`` restores a
pipeline that translates identically to the saved one, without retraining.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter, defaultdict

import numpy as np

from repro.core.classifier import _ClassifierNet
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.dataset import Example
from repro.models.llm import FewShotLLM
from repro.models.lexicon import Lexicon
from repro.models.registry import MODEL_PRESETS
from repro.models.sketch import Sketch, SketchModel
from repro.nn.encoder import EncoderTower
from repro.nn.text import TextFeaturizer
from repro.sqlkit.parser import parse_sql

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Sketch (de)serialisation.


def _sketch_to_json(sketch: Sketch) -> dict:
    return {
        "shape": sketch.shape,
        "n_tables": sketch.n_tables,
        "n_select": sketch.n_select,
        "select_aggs": list(sketch.select_aggs),
        "count_star": sketch.count_star,
        "distinct": sketch.distinct,
        "n_predicates": sketch.n_predicates,
        "predicate_kinds": list(sketch.predicate_kinds),
        "has_or": sketch.has_or,
        "has_group": sketch.has_group,
        "has_having": sketch.has_having,
        "order": sketch.order,
        "limit": sketch.limit,
        "order_on_agg": sketch.order_on_agg,
        "has_arith": sketch.has_arith,
    }


def _sketch_from_json(data: dict) -> Sketch:
    return Sketch(
        shape=data["shape"],
        n_tables=data["n_tables"],
        n_select=data["n_select"],
        select_aggs=tuple(data["select_aggs"]),
        count_star=data["count_star"],
        distinct=data["distinct"],
        n_predicates=data["n_predicates"],
        predicate_kinds=tuple(data["predicate_kinds"]),
        has_or=data["has_or"],
        has_group=data["has_group"],
        has_having=data["has_having"],
        order=data["order"],
        limit=data["limit"],
        order_on_agg=data["order_on_agg"],
        has_arith=data.get("has_arith", False),
    )


# ----------------------------------------------------------------------
# Model components.


def _lexicon_to_json(lexicon: Lexicon) -> dict:
    return {
        "smoothing": lexicon.smoothing,
        "pair_counts": {
            element: dict(counter)
            for element, counter in lexicon._pair_counts.items()
        },
        "element_counts": dict(lexicon._element_counts),
        "token_counts": dict(lexicon._token_counts),
        "total": lexicon._total_examples,
    }


def _lexicon_from_json(data: dict) -> Lexicon:
    lexicon = Lexicon(smoothing=data["smoothing"])
    lexicon._pair_counts = defaultdict(
        Counter,
        {e: Counter(c) for e, c in data["pair_counts"].items()},
    )
    lexicon._element_counts = Counter(data["element_counts"])
    lexicon._token_counts = Counter(data["token_counts"])
    lexicon._total_examples = data["total"]
    return lexicon


def _sketch_model_to_json(model: SketchModel) -> dict:
    signatures = []
    facet_records = []
    for sketch, count in model._signatures.items():
        signatures.append({"sketch": _sketch_to_json(sketch), "count": count})
    for (facet, value), counter in model._facet_token_counts.items():
        facet_records.append(
            {
                "facet": facet,
                "value": _json_value(value),
                "tokens": dict(counter),
                "total": model._facet_token_totals[(facet, value)],
                "count": model._facet_value_counts[facet][value],
            }
        )
    return {
        "smoothing": model.smoothing,
        "signatures": signatures,
        "facets": facet_records,
        "vocab": sorted(model._vocab),
        "total": model._total,
    }


def _json_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": list(value)}
    return value


def _value_from_json(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(value["__tuple__"])
    return value


def _sketch_model_from_json(data: dict) -> SketchModel:
    model = SketchModel(smoothing=data["smoothing"])
    for record in data["signatures"]:
        model._signatures[_sketch_from_json(record["sketch"])] = record["count"]
    for record in data["facets"]:
        key = (record["facet"], _value_from_json(record["value"]))
        model._facet_token_counts[key] = Counter(record["tokens"])
        model._facet_token_totals[key] = record["total"]
        model._facet_value_counts[record["facet"]][key[1]] = record["count"]
    model._vocab = set(data["vocab"])
    model._total = data["total"]
    return model


# ----------------------------------------------------------------------
# Tensors / towers.


def _collect_tower(weights: dict, prefix: str, tower: EncoderTower) -> None:
    weights[f"{prefix}.hidden.weight"] = tower.hidden.weight.data
    weights[f"{prefix}.hidden.bias"] = tower.hidden.bias.data
    weights[f"{prefix}.output.weight"] = tower.output.weight.data
    weights[f"{prefix}.output.bias"] = tower.output.bias.data


def _restore_tower(weights, prefix: str, tower: EncoderTower) -> None:
    tower.hidden.weight.data = weights[f"{prefix}.hidden.weight"]
    tower.hidden.bias.data = weights[f"{prefix}.hidden.bias"]
    tower.output.weight.data = weights[f"{prefix}.output.weight"]
    tower.output.bias.data = weights[f"{prefix}.output.bias"]


def _collect_mlp(weights: dict, prefix: str, mlp) -> None:
    for index, layer in enumerate(mlp.layers):
        weights[f"{prefix}.{index}.weight"] = layer.weight.data
        weights[f"{prefix}.{index}.bias"] = layer.bias.data


def _restore_mlp(weights, prefix: str, mlp) -> None:
    for index, layer in enumerate(mlp.layers):
        layer.weight.data = weights[f"{prefix}.{index}.weight"]
        layer.bias.data = weights[f"{prefix}.{index}.bias"]


# ----------------------------------------------------------------------
# Public API.


def save_pipeline(pipeline: MetaSQL, directory: str | pathlib.Path) -> None:
    """Persist every learned component of *pipeline* under *directory*."""
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    model = pipeline.model
    weights: dict[str, np.ndarray] = {}

    manifest = {
        "version": FORMAT_VERSION,
        "model_name": model.name,
        "model_is_llm": isinstance(model, FewShotLLM),
        "metadata_trained": model.metadata_trained,
    }

    # Base model statistics.
    model_state = {
        "lexicon": _lexicon_to_json(model.lexicon),
        "sketch_model": _sketch_model_to_json(model.sketch_model),
    }
    if isinstance(model, FewShotLLM):
        model_state["pool"] = [
            {"question": e.question, "query": e.sql_text, "db_id": e.db_id}
            for e in model._pool
        ]
        weights["llm.featurizer.idf"] = model._featurizer._idf
    (root / "model.json").write_text(json.dumps(model_state))

    # Classifier.
    classifier = pipeline.classifier
    classifier_state = {
        "labels": [_json_value(label) for label in classifier._labels],
        "buckets": classifier.config.buckets,
    }
    weights["classifier.featurizer.idf"] = classifier._featurizer._idf
    _collect_mlp_like_classifier(weights, classifier)
    (root / "classifier.json").write_text(json.dumps(classifier_state))

    # Composer.
    composer_state = [
        {"tags": sorted(tags), "rating": rating, "count": count}
        for (tags, rating), count in pipeline.composer._combos.items()
    ]
    (root / "composer.json").write_text(json.dumps(composer_state))

    # Stage 1.
    weights["stage1.featurizer.idf"] = pipeline.stage1._featurizer._idf
    _collect_tower(weights, "stage1.query", pipeline.stage1._query_tower)
    _collect_tower(weights, "stage1.sql", pipeline.stage1._sql_tower)

    # Stage 2.
    _collect_mlp(weights, "stage2.coarse", pipeline.stage2._coarse_head)
    _collect_mlp(weights, "stage2.fine", pipeline.stage2._fine_head)

    (root / "manifest.json").write_text(json.dumps(manifest))
    np.savez(root / "weights.npz", **weights)


def _collect_mlp_like_classifier(weights, classifier) -> None:
    net = classifier._net
    weights["classifier.hidden.weight"] = net.hidden.weight.data
    weights["classifier.hidden.bias"] = net.hidden.bias.data
    weights["classifier.output.weight"] = net.output.weight.data
    weights["classifier.output.bias"] = net.output.bias.data


def load_pipeline(
    directory: str | pathlib.Path, config: MetaSQLConfig | None = None
) -> MetaSQL:
    """Restore a pipeline saved by :func:`save_pipeline`."""
    root = pathlib.Path(directory)
    manifest = json.loads((root / "manifest.json").read_text())
    if manifest["version"] != FORMAT_VERSION:
        raise ValueError(
            f"unsupported pipeline format version {manifest['version']}"
        )
    weights = np.load(root / "weights.npz")

    model = MODEL_PRESETS[manifest["model_name"]]()
    model_state = json.loads((root / "model.json").read_text())
    model.lexicon = _lexicon_from_json(model_state["lexicon"])
    model.sketch_model = _sketch_model_from_json(model_state["sketch_model"])
    model.metadata_trained = manifest["metadata_trained"]
    model._fitted = True
    if isinstance(model, FewShotLLM):
        model._pool = [
            Example(
                question=record["question"],
                sql=parse_sql(record["query"]),
                db_id=record["db_id"],
            )
            for record in model_state["pool"]
        ]
        model._featurizer._idf = weights["llm.featurizer.idf"]
        model._pool_matrix = model._featurizer.transform_many(
            [e.question for e in model._pool]
        )
        model.metadata_trained = True

    pipeline = MetaSQL(model, config or MetaSQLConfig())

    # Classifier.
    classifier_state = json.loads((root / "classifier.json").read_text())
    classifier = pipeline.classifier
    classifier._labels = [
        _value_from_json(label) for label in classifier_state["labels"]
    ]
    classifier._label_index = {
        label: i for i, label in enumerate(classifier._labels)
    }
    classifier._featurizer = TextFeaturizer(
        buckets=classifier_state["buckets"]
    )
    classifier._featurizer._idf = weights["classifier.featurizer.idf"]
    rng = np.random.default_rng(0)
    classifier._net = _ClassifierNet(
        weights["classifier.hidden.weight"].shape[0],
        len(classifier._labels),
        rng,
    )
    classifier._net.hidden.weight.data = weights["classifier.hidden.weight"]
    classifier._net.hidden.bias.data = weights["classifier.hidden.bias"]
    classifier._net.output.weight.data = weights["classifier.output.weight"]
    classifier._net.output.bias.data = weights["classifier.output.bias"]

    # Composer.
    for record in json.loads((root / "composer.json").read_text()):
        key = (frozenset(record["tags"]), record["rating"])
        pipeline.composer._combos[key] = record["count"]
        pipeline.composer._tagsets[key[0]] += record["count"]

    # Stage 1.
    stage1 = pipeline.stage1
    stage1._featurizer._idf = weights["stage1.featurizer.idf"]
    stage1._query_tower = EncoderTower(
        stage1._featurizer, stage1.config.embed_dim, rng, hidden_dim=128
    )
    stage1._sql_tower = EncoderTower(
        stage1._featurizer, stage1.config.embed_dim, rng, hidden_dim=128
    )
    _restore_tower(weights, "stage1.query", stage1._query_tower)
    _restore_tower(weights, "stage1.sql", stage1._sql_tower)

    # Stage 2.
    _restore_mlp(weights, "stage2.coarse", pipeline.stage2._coarse_head)
    _restore_mlp(weights, "stage2.fine", pipeline.stage2._fine_head)
    pipeline.stage2._fitted = True

    pipeline._trained = True
    return pipeline
