"""Persistence: save and load trained MetaSQL pipelines, crash-safely.

``save_pipeline`` writes every learned component — the base model's
lexicon/sketch statistics (and demonstration pool for LLM sims), the
multi-label classifier, the composition index and both ranking stages —
as JSON plus one ``weights.npz``.  ``load_pipeline`` restores a pipeline
that translates identically to the saved one, without retraining.

Durability contract:

- **Atomic save.** The checkpoint is staged in a sibling temp directory
  (every file fsynced) and swapped into place with ``os.rename``; a crash
  at any point mid-write leaves the previous checkpoint untouched and
  loadable.  Stale staging litter from an interrupted save is removed on
  the next save.
- **Verified load.** ``manifest.json`` carries a format version plus
  per-file SHA-256 checksums and sizes; ``load_pipeline`` verifies them
  before touching any component, so truncation, bit-flips and missing
  files surface as a typed :class:`CheckpointError`
  (:class:`CheckpointCorrupt` / :class:`CheckpointVersionError`) instead
  of a partially restored pipeline.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import shutil
from collections import Counter, defaultdict

import numpy as np

from repro.core.classifier import _ClassifierNet
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.core.resilience import fire
from repro.data.dataset import Example
from repro.models.llm import FewShotLLM
from repro.models.lexicon import Lexicon
from repro.models.registry import MODEL_PRESETS
from repro.models.sketch import Sketch, SketchModel
from repro.nn.encoder import EncoderTower
from repro.nn.text import TextFeaturizer
from repro.sqlkit.errors import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointVersionError,
)
from repro.sqlkit.parser import parse_sql

#: v1 wrote bare files with no checksums; v2 adds the ``files`` manifest
#: section (sha256 + byte size per file) and the atomic staging save.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS: tuple[int, ...] = (FORMAT_VERSION,)

#: The component files every checkpoint must contain.
CHECKPOINT_FILES: tuple[str, ...] = (
    "model.json",
    "classifier.json",
    "composer.json",
    "weights.npz",
)


# ----------------------------------------------------------------------
# Sketch (de)serialisation.


def _sketch_to_json(sketch: Sketch) -> dict:
    return {
        "shape": sketch.shape,
        "n_tables": sketch.n_tables,
        "n_select": sketch.n_select,
        "select_aggs": list(sketch.select_aggs),
        "count_star": sketch.count_star,
        "distinct": sketch.distinct,
        "n_predicates": sketch.n_predicates,
        "predicate_kinds": list(sketch.predicate_kinds),
        "has_or": sketch.has_or,
        "has_group": sketch.has_group,
        "has_having": sketch.has_having,
        "order": sketch.order,
        "limit": sketch.limit,
        "order_on_agg": sketch.order_on_agg,
        "has_arith": sketch.has_arith,
    }


def _sketch_from_json(data: dict) -> Sketch:
    return Sketch(
        shape=data["shape"],
        n_tables=data["n_tables"],
        n_select=data["n_select"],
        select_aggs=tuple(data["select_aggs"]),
        count_star=data["count_star"],
        distinct=data["distinct"],
        n_predicates=data["n_predicates"],
        predicate_kinds=tuple(data["predicate_kinds"]),
        has_or=data["has_or"],
        has_group=data["has_group"],
        has_having=data["has_having"],
        order=data["order"],
        limit=data["limit"],
        order_on_agg=data["order_on_agg"],
        has_arith=data.get("has_arith", False),
    )


# ----------------------------------------------------------------------
# Model components.


def _lexicon_to_json(lexicon: Lexicon) -> dict:
    return {
        "smoothing": lexicon.smoothing,
        "pair_counts": {
            element: dict(counter)
            for element, counter in lexicon._pair_counts.items()
        },
        "element_counts": dict(lexicon._element_counts),
        "token_counts": dict(lexicon._token_counts),
        "total": lexicon._total_examples,
    }


def _lexicon_from_json(data: dict) -> Lexicon:
    lexicon = Lexicon(smoothing=data["smoothing"])
    lexicon._pair_counts = defaultdict(
        Counter,
        {e: Counter(c) for e, c in data["pair_counts"].items()},
    )
    lexicon._element_counts = Counter(data["element_counts"])
    lexicon._token_counts = Counter(data["token_counts"])
    lexicon._total_examples = data["total"]
    return lexicon


def _sketch_model_to_json(model: SketchModel) -> dict:
    signatures = []
    facet_records = []
    for sketch, count in model._signatures.items():
        signatures.append({"sketch": _sketch_to_json(sketch), "count": count})
    for (facet, value), counter in model._facet_token_counts.items():
        facet_records.append(
            {
                "facet": facet,
                "value": _json_value(value),
                "tokens": dict(counter),
                "total": model._facet_token_totals[(facet, value)],
                "count": model._facet_value_counts[facet][value],
            }
        )
    return {
        "smoothing": model.smoothing,
        "signatures": signatures,
        "facets": facet_records,
        "vocab": sorted(model._vocab),
        "total": model._total,
    }


def _json_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": list(value)}
    return value


def _value_from_json(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(value["__tuple__"])
    return value


def _sketch_model_from_json(data: dict) -> SketchModel:
    model = SketchModel(smoothing=data["smoothing"])
    for record in data["signatures"]:
        model._signatures[_sketch_from_json(record["sketch"])] = record["count"]
    for record in data["facets"]:
        key = (record["facet"], _value_from_json(record["value"]))
        model._facet_token_counts[key] = Counter(record["tokens"])
        model._facet_token_totals[key] = record["total"]
        model._facet_value_counts[record["facet"]][key[1]] = record["count"]
    model._vocab = set(data["vocab"])
    model._total = data["total"]
    return model


# ----------------------------------------------------------------------
# Tensors / towers.


def _collect_tower(weights: dict, prefix: str, tower: EncoderTower) -> None:
    weights[f"{prefix}.hidden.weight"] = tower.hidden.weight.data
    weights[f"{prefix}.hidden.bias"] = tower.hidden.bias.data
    weights[f"{prefix}.output.weight"] = tower.output.weight.data
    weights[f"{prefix}.output.bias"] = tower.output.bias.data


def _restore_tower(weights, prefix: str, tower: EncoderTower) -> None:
    tower.hidden.weight.data = weights[f"{prefix}.hidden.weight"]
    tower.hidden.bias.data = weights[f"{prefix}.hidden.bias"]
    tower.output.weight.data = weights[f"{prefix}.output.weight"]
    tower.output.bias.data = weights[f"{prefix}.output.bias"]


def _collect_mlp(weights: dict, prefix: str, mlp) -> None:
    for index, layer in enumerate(mlp.layers):
        weights[f"{prefix}.{index}.weight"] = layer.weight.data
        weights[f"{prefix}.{index}.bias"] = layer.bias.data


def _restore_mlp(weights, prefix: str, mlp) -> None:
    for index, layer in enumerate(mlp.layers):
        layer.weight.data = weights[f"{prefix}.{index}.weight"]
        layer.bias.data = weights[f"{prefix}.{index}.bias"]


# ----------------------------------------------------------------------
# Durable file primitives.


def _write_file(path: pathlib.Path, data: bytes) -> None:
    """Write *data* and force it to stable storage before returning."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so renames inside it survive a power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sha256(path: pathlib.Path) -> tuple[str, int]:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def _staging_dir(root: pathlib.Path) -> pathlib.Path:
    return root.parent / f".{root.name}.staging"


def _displaced_dir(root: pathlib.Path) -> pathlib.Path:
    return root.parent / f".{root.name}.old"


# ----------------------------------------------------------------------
# Public API.


def save_pipeline(pipeline: MetaSQL, directory: str | pathlib.Path) -> None:
    """Persist every learned component of *pipeline* under *directory*.

    The write is atomic with respect to crashes: the checkpoint is
    staged in a sibling temp directory and renamed into place, so an
    interrupted save (crash, ``kill -9``, fault) leaves any previous
    checkpoint at *directory* complete and loadable.
    """
    root = pathlib.Path(directory)
    root.parent.mkdir(parents=True, exist_ok=True)
    staging = _staging_dir(root)
    if staging.exists():  # litter from an interrupted save
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        _write_checkpoint(pipeline, staging)
        fire("persist.finalize")
        _swap_into_place(staging, root)
    except BaseException:  # repolint: allow[broad-except] — cleanup then re-raise
        shutil.rmtree(staging, ignore_errors=True)
        raise


def _write_checkpoint(pipeline: MetaSQL, root: pathlib.Path) -> None:
    """Write every checkpoint file (fsynced) plus the manifest into *root*."""
    model = pipeline.model
    weights: dict[str, np.ndarray] = {}

    manifest = {
        "version": FORMAT_VERSION,
        "model_name": model.name,
        "model_is_llm": isinstance(model, FewShotLLM),
        "metadata_trained": model.metadata_trained,
    }

    # Base model statistics.
    model_state = {
        "lexicon": _lexicon_to_json(model.lexicon),
        "sketch_model": _sketch_model_to_json(model.sketch_model),
    }
    if isinstance(model, FewShotLLM):
        model_state["pool"] = [
            {"question": e.question, "query": e.sql_text, "db_id": e.db_id}
            for e in model._pool
        ]
        weights["llm.featurizer.idf"] = model._featurizer._idf
    _write_file(root / "model.json", json.dumps(model_state).encode())

    # The mid-write failpoint: at this point some component files are on
    # disk but neither the weights nor the manifest are — the window an
    # interrupted save must not corrupt an existing checkpoint through.
    fire("persist.save")

    # Classifier.
    classifier = pipeline.classifier
    classifier_state = {
        "labels": [_json_value(label) for label in classifier._labels],
        "buckets": classifier.config.buckets,
    }
    weights["classifier.featurizer.idf"] = classifier._featurizer._idf
    _collect_mlp_like_classifier(weights, classifier)
    _write_file(
        root / "classifier.json", json.dumps(classifier_state).encode()
    )

    # Composer.
    composer_state = [
        {"tags": sorted(tags), "rating": rating, "count": count}
        for (tags, rating), count in pipeline.composer._combos.items()
    ]
    _write_file(root / "composer.json", json.dumps(composer_state).encode())

    # Stage 1.
    weights["stage1.featurizer.idf"] = pipeline.stage1._featurizer._idf
    _collect_tower(weights, "stage1.query", pipeline.stage1._query_tower)
    _collect_tower(weights, "stage1.sql", pipeline.stage1._sql_tower)

    # Stage 2.
    _collect_mlp(weights, "stage2.coarse", pipeline.stage2._coarse_head)
    _collect_mlp(weights, "stage2.fine", pipeline.stage2._fine_head)

    buffer = io.BytesIO()
    np.savez(buffer, **weights)
    _write_file(root / "weights.npz", buffer.getvalue())

    # The manifest goes last, sealing the files it checksums.
    manifest["files"] = {
        name: dict(zip(("sha256", "bytes"), _sha256(root / name)))
        for name in CHECKPOINT_FILES
    }
    _write_file(root / "manifest.json", json.dumps(manifest).encode())
    _fsync_dir(root)


def _swap_into_place(staging: pathlib.Path, root: pathlib.Path) -> None:
    """Atomically promote the complete *staging* checkpoint to *root*."""
    displaced = _displaced_dir(root)
    if displaced.exists():
        shutil.rmtree(displaced)
    if root.exists():
        os.rename(root, displaced)
    os.rename(staging, root)
    _fsync_dir(root.parent)
    shutil.rmtree(displaced, ignore_errors=True)


def verify_checkpoint(directory: str | pathlib.Path) -> dict:
    """Validate a checkpoint's manifest and checksums; return the manifest.

    Raises :class:`CheckpointCorrupt` on a missing/truncated/bit-flipped
    file (including the manifest itself) and
    :class:`CheckpointVersionError` on a format-version mismatch.
    """
    root = pathlib.Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise CheckpointCorrupt(
            f"no checkpoint manifest at {manifest_path}", path=root
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorrupt(
            f"checkpoint manifest at {manifest_path} is unreadable: {exc}",
            path=root,
        ) from exc
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CheckpointVersionError(version, SUPPORTED_VERSIONS, path=root)
    files = manifest.get("files")
    if not isinstance(files, dict) or not files:
        raise CheckpointCorrupt(
            f"checkpoint manifest at {manifest_path} lists no files",
            path=root,
        )
    for name, expected in files.items():
        path = root / name
        if not path.is_file():
            raise CheckpointCorrupt(
                f"checkpoint file {name!r} is missing from {root}", path=root
            )
        digest, size = _sha256(path)
        if size != expected.get("bytes"):
            raise CheckpointCorrupt(
                f"checkpoint file {name!r} is truncated or padded "
                f"({size} bytes, manifest says {expected.get('bytes')})",
                path=root,
            )
        if digest != expected.get("sha256"):
            raise CheckpointCorrupt(
                f"checkpoint file {name!r} fails its checksum "
                f"(bit-flip or partial write)",
                path=root,
            )
    return manifest


def _collect_mlp_like_classifier(weights, classifier) -> None:
    net = classifier._net
    weights["classifier.hidden.weight"] = net.hidden.weight.data
    weights["classifier.hidden.bias"] = net.hidden.bias.data
    weights["classifier.output.weight"] = net.output.weight.data
    weights["classifier.output.bias"] = net.output.bias.data


def load_pipeline(
    directory: str | pathlib.Path, config: MetaSQLConfig | None = None
) -> MetaSQL:
    """Restore a pipeline saved by :func:`save_pipeline`.

    The checkpoint is verified (format version, per-file checksums)
    before any component is restored, and any failure while restoring is
    wrapped, so the only outcomes are a fully restored pipeline or a
    typed :class:`CheckpointError` — never a partial load.
    """
    root = pathlib.Path(directory)
    manifest = verify_checkpoint(root)
    try:
        return _restore_pipeline(root, manifest, config)
    except CheckpointError:
        raise
    except Exception as exc:  # repolint: allow[broad-except] — typed-error boundary
        raise CheckpointCorrupt(
            f"checkpoint at {root} could not be restored: {exc!r}", path=root
        ) from exc


def _restore_pipeline(
    root: pathlib.Path, manifest: dict, config: MetaSQLConfig | None
) -> MetaSQL:
    # Eagerly materialise the arrays so the archive handle is closed
    # before any component restore runs (no file-handle leak).
    with np.load(root / "weights.npz") as archive:
        weights = {name: archive[name] for name in archive.files}

    model = MODEL_PRESETS[manifest["model_name"]]()
    model_state = json.loads((root / "model.json").read_text())
    model.lexicon = _lexicon_from_json(model_state["lexicon"])
    model.sketch_model = _sketch_model_from_json(model_state["sketch_model"])
    model.metadata_trained = manifest["metadata_trained"]
    model._fitted = True
    if isinstance(model, FewShotLLM):
        model._pool = [
            Example(
                question=record["question"],
                sql=parse_sql(record["query"]),
                db_id=record["db_id"],
            )
            for record in model_state["pool"]
        ]
        model._featurizer._idf = weights["llm.featurizer.idf"]
        model._pool_matrix = model._featurizer.transform_many(
            [e.question for e in model._pool]
        )
        model.metadata_trained = True

    pipeline = MetaSQL(model, config or MetaSQLConfig())

    # Classifier.
    classifier_state = json.loads((root / "classifier.json").read_text())
    classifier = pipeline.classifier
    classifier._labels = [
        _value_from_json(label) for label in classifier_state["labels"]
    ]
    classifier._label_index = {
        label: i for i, label in enumerate(classifier._labels)
    }
    classifier._featurizer = TextFeaturizer(
        buckets=classifier_state["buckets"]
    )
    classifier._featurizer._idf = weights["classifier.featurizer.idf"]
    rng = np.random.default_rng(0)
    classifier._net = _ClassifierNet(
        weights["classifier.hidden.weight"].shape[0],
        len(classifier._labels),
        rng,
    )
    classifier._net.hidden.weight.data = weights["classifier.hidden.weight"]
    classifier._net.hidden.bias.data = weights["classifier.hidden.bias"]
    classifier._net.output.weight.data = weights["classifier.output.weight"]
    classifier._net.output.bias.data = weights["classifier.output.bias"]

    # Composer.
    for record in json.loads((root / "composer.json").read_text()):
        key = (frozenset(record["tags"]), record["rating"])
        pipeline.composer._combos[key] = record["count"]
        pipeline.composer._tagsets[key[0]] += record["count"]

    # Stage 1.
    stage1 = pipeline.stage1
    stage1._featurizer._idf = weights["stage1.featurizer.idf"]
    stage1._query_tower = EncoderTower(
        stage1._featurizer, stage1.config.embed_dim, rng, hidden_dim=128
    )
    stage1._sql_tower = EncoderTower(
        stage1._featurizer, stage1.config.embed_dim, rng, hidden_dim=128
    )
    _restore_tower(weights, "stage1.query", stage1._query_tower)
    _restore_tower(weights, "stage1.sql", stage1._sql_tower)

    # Stage 2.
    _restore_mlp(weights, "stage2.coarse", pipeline.stage2._coarse_head)
    _restore_mlp(weights, "stage2.fine", pipeline.stage2._fine_head)
    pipeline.stage2._fitted = True

    pipeline._trained = True
    return pipeline
