"""Clause-wise NL/SQL semantic-similarity scores for ranker supervision.

The ranking models train on triples ``(q, s, y)`` where ``y`` measures how
similar candidate ``s`` is to the gold SQL of ``q`` (Section II-B): the gold
query scores 10; otherwise each differing clause applies a penalty until the
score reaches 0.  ``similarity_unit`` returns the same quantity on a [0, 1]
scale for the first-stage (cosine) ranker.
"""

from __future__ import annotations

from collections import Counter

from repro.sqlkit.ast import Query, SelectQuery, SetQuery
from repro.sqlkit.compare import (
    _expr_key,
    _predicate_key,
)
from repro.sqlkit.normalize import normalize

#: Penalty (on the 0..10 scale) per differing clause component.
CLAUSE_PENALTIES = {
    "select": 2.0,
    "from": 2.0,
    "where": 2.0,
    "group": 1.5,
    "having": 1.5,
    "order": 1.0,
    "limit": 0.5,
    "setop": 2.5,
    "nested": 2.0,
}


def similarity_score(candidate: Query, gold: Query) -> float:
    """Semantic similarity of *candidate* to *gold* on the paper's 0..10 scale."""
    penalty = _query_penalty(normalize(candidate), normalize(gold))
    return max(0.0, 10.0 - penalty)


def similarity_unit(candidate: Query, gold: Query) -> float:
    """Similarity on a [0, 1] scale (first-stage ranker target)."""
    return similarity_score(candidate, gold) / 10.0


def _query_penalty(candidate: Query, gold: Query) -> float:
    if isinstance(candidate, SetQuery) or isinstance(gold, SetQuery):
        if isinstance(candidate, SetQuery) != isinstance(gold, SetQuery):
            base = candidate if isinstance(candidate, SelectQuery) else candidate.left
            gold_base = gold if isinstance(gold, SelectQuery) else gold.left
            return CLAUSE_PENALTIES["setop"] + _query_penalty(
                _as_select(base), _as_select(gold_base)
            )
        penalty = 0.0
        if candidate.op != gold.op:
            penalty += CLAUSE_PENALTIES["setop"]
        penalty += _query_penalty(candidate.left, gold.left)
        penalty += _query_penalty(candidate.right, gold.right)
        return penalty
    return _select_penalty(candidate, gold)


def _as_select(query: Query) -> SelectQuery:
    while isinstance(query, SetQuery):
        query = query.left
    return query


def _set_mismatch(left: Counter, right: Counter) -> int:
    return sum((left - right).values()) + sum((right - left).values())


def _select_penalty(candidate: SelectQuery, gold: SelectQuery) -> float:
    penalty = 0.0

    cand_select = Counter(_expr_key(e) for e in candidate.select)
    gold_select = Counter(_expr_key(e) for e in gold.select)
    # One penalty step per mismatched select pair (symmetric difference / 2).
    penalty += (
        CLAUSE_PENALTIES["select"]
        * min(_set_mismatch(cand_select, gold_select), 4)
        / 2.0
    )
    penalty += (
        0.0
        if candidate.distinct == gold.distinct
        else CLAUSE_PENALTIES["select"] / 4.0
    )

    cand_tables = Counter(candidate.from_.tables)
    gold_tables = Counter(gold.from_.tables)
    if (candidate.from_.subquery is None) != (gold.from_.subquery is None):
        penalty += CLAUSE_PENALTIES["nested"]
    elif candidate.from_.subquery is not None and gold.from_.subquery is not None:
        penalty += _query_penalty(candidate.from_.subquery, gold.from_.subquery)
    else:
        penalty += CLAUSE_PENALTIES["from"] * min(
            _set_mismatch(cand_tables, gold_tables), 2
        ) / 2.0

    penalty += _condition_penalty(candidate, gold, "where")
    penalty += _condition_penalty(candidate, gold, "having")

    cand_group = Counter(c.key() for c in candidate.group_by)
    gold_group = Counter(c.key() for c in gold.group_by)
    if cand_group != gold_group:
        penalty += CLAUSE_PENALTIES["group"]

    cand_order = [(_expr_key(i.expr), i.desc) for i in candidate.order_by]
    gold_order = [(_expr_key(i.expr), i.desc) for i in gold.order_by]
    if cand_order != gold_order:
        penalty += CLAUSE_PENALTIES["order"]
    if (candidate.limit is None) != (gold.limit is None) or (
        candidate.limit is not None and candidate.limit != gold.limit
    ):
        penalty += CLAUSE_PENALTIES["limit"]
    return penalty


def _condition_penalty(
    candidate: SelectQuery, gold: SelectQuery, clause: str
) -> float:
    cand_cond = getattr(candidate, clause)
    gold_cond = getattr(gold, clause)
    if cand_cond is None and gold_cond is None:
        return 0.0
    if (cand_cond is None) != (gold_cond is None):
        return CLAUSE_PENALTIES[clause]
    cand_keys = Counter(_predicate_key(p) for p in cand_cond.predicates)
    gold_keys = Counter(_predicate_key(p) for p in gold_cond.predicates)
    mismatched = _set_mismatch(cand_keys, gold_keys)
    penalty = CLAUSE_PENALTIES[clause] * mismatched / 2.0
    if Counter(cand_cond.connectors) != Counter(gold_cond.connectors):
        penalty += CLAUSE_PENALTIES[clause] / 4.0
    # Nested subqueries compared recursively (greedy pairing).
    cand_subs = [p.right for p in cand_cond.predicates if p.has_subquery]
    gold_subs = [p.right for p in gold_cond.predicates if p.has_subquery]
    for cand_sub, gold_sub in zip(cand_subs, gold_subs):
        penalty += 0.5 * _query_penalty(cand_sub, gold_sub)
    if len(cand_subs) != len(gold_subs):
        penalty += CLAUSE_PENALTIES["nested"]
    return penalty
