"""Negative-sample collection (Section III-B1).

The paper gathers erroneous translations on the training set and tags them
``incorrect`` to augment both the translation model's metadata training and
the rankers' supervision.  Here negatives are produced the same way the
trained model would produce them: decoding under the ``incorrect``
correctness indicator (which the augmented model has learned to associate
with wrong parses) and keeping outputs that do not exactly match gold.
"""

from __future__ import annotations

import numpy as np

from repro.core.metadata import INCORRECT, extract_metadata
from repro.data.dataset import Dataset, Example
from repro.models.base import TranslationModel
from repro.sqlkit.ast import Query
from repro.sqlkit.compare import exact_match
from repro.sqlkit.printer import to_sql


def collect_negative_samples(
    model: TranslationModel,
    train: Dataset,
    max_examples: int = 200,
    per_example: int = 2,
    seed: int = 31,
) -> list[tuple[Example, Query]]:
    """Erroneous (example, wrong_query) pairs from *model* on *train*.

    Decodes each sampled training question under its gold metadata with the
    correctness indicator flipped to ``incorrect``; any decoded query that
    is not an exact match of gold becomes a negative sample.
    """
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(train.examples))[:max_examples]
    negatives: list[tuple[Example, Query]] = []
    for raw_index in indices:
        example = train.examples[int(raw_index)]
        db = train.database(example.db_id)
        metadata = extract_metadata(example.sql, correctness=INCORRECT)
        candidates = model.translate(
            example.question, db, metadata=metadata, beam_size=per_example
        )
        seen: set[str] = set()
        for candidate in candidates:
            if exact_match(candidate.query, example.sql):
                continue
            key = to_sql(candidate.query)
            if key in seen:
                continue
            seen.add(key)
            negatives.append((example, candidate.query))
    return negatives
