"""Query metadata (Section III-A).

Three metadata types control candidate generation:

- **operator tags** — one per logical operator the SQL query uses
  (``project``, ``where``, ``group``, ``order``, ``join``, ``subquery``,
  ``union``/``intersect``/``except``, ...),
- **hardness value** — the integer rating from
  :func:`repro.sqlkit.hardness.hardness_rating`,
- **correctness indicator** — ``correct``/``incorrect``; always ``correct``
  at inference, flipped on negative samples during augmented training.

``flatten`` produces the prefix string prepended to the NL query during
metadata-augmented training (Fig. 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.models.sketch import extract_sketch
from repro.sqlkit.ast import Query
from repro.sqlkit.hardness import hardness_rating

CORRECT = "correct"
INCORRECT = "incorrect"

#: The full operator-tag vocabulary.
TAG_VOCABULARY = (
    "project",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "join",
    "subquery",
    "agg",
    "union",
    "intersect",
    "except",
)


@dataclass(frozen=True)
class QueryMetadata:
    """One metadata condition for candidate generation."""

    tags: frozenset[str]
    rating: int
    correctness: str = CORRECT

    def flatten(self) -> str:
        """Prefix string: ``correct | rating : 400 | tags : project, except``."""
        tag_list = ", ".join(sorted(self.tags))
        return f"{self.correctness} | rating : {self.rating} | tags : {tag_list}"

    def with_correctness(self, correctness: str) -> "QueryMetadata":
        """A copy with the correctness indicator replaced."""
        return replace(self, correctness=correctness)

    def with_rating(self, rating: int) -> "QueryMetadata":
        """A copy with the hardness value replaced."""
        return replace(self, rating=rating)

    def __repr__(self) -> str:
        return f"QueryMetadata({self.flatten()})"


def extract_metadata(query: Query, correctness: str = CORRECT) -> QueryMetadata:
    """Weak-supervision metadata extraction from a gold SQL query.

    Operator tags come from the query's structural sketch; the hardness
    value from the rating calibration in :mod:`repro.sqlkit.hardness`.
    """
    sketch = extract_sketch(query)
    return QueryMetadata(
        tags=sketch.operator_tags(),
        rating=hardness_rating(query),
        correctness=correctness,
    )


def augment_question(question: str, metadata: QueryMetadata) -> str:
    """The metadata-prefixed model input of Fig. 3."""
    return f"{metadata.flatten()} | {question}"
