"""The MetaSQL pipeline (Fig. 2): decompose -> generate -> rank.

``MetaSQL`` wraps any :class:`~repro.models.base.TranslationModel`:

1. **train** — metadata-augment and fit the base model (Seq2seq only),
   fit the multi-label metadata classifier and the composition index, then
   generate candidate sets over a training subsample to supervise the
   two ranking stages (clause-similarity targets vs gold).
2. **translate** — classify metadata labels, compose conditions observed in
   training, generate one small beam per condition, ground placeholder
   values, first-stage-prune to 10 candidates, second-stage-rank, then
   execution-verify the top-k (:mod:`repro.core.verify`) and, when the
   best candidate still fails at runtime, run the bounded self-repair
   loop (:mod:`repro.core.repair`) before returning the top query (or
   the full ranked list).

Ablation flags reproduce Table 9: ``use_classifier=False`` conditions on
*all* observed compositions; ``use_stage2=False`` stops after the
first-stage ranker; ``phrase_supervision=False`` removes the fine-grained
losses from stage-2 training.

Every inference stage is wrapped by the resilience layer
(:mod:`repro.core.resilience`): a failing candidate is recorded and
skipped, a failing stage degrades to the previous stage's ordering
(stage-2 -> stage-1 -> generation order, classifier -> observed
compositions) under the configured :class:`DegradationPolicy`, and the
:class:`TranslationReport` attached to the output says exactly what was
absorbed.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.core.compose import ComposerConfig, MetadataComposer
from repro.core.generation import (
    CandidateGenerator,
    GeneratedCandidate,
    GeneratorConfig,
)
from repro.core.metadata import QueryMetadata, extract_metadata
from repro.core.rank_stage1 import (
    DualTowerRanker,
    RankingTriple,
    Stage1Config,
    sql_surface,
)
from repro.core.rank_stage2 import (
    ListItem,
    MultiGrainedRanker,
    RankingList,
    Stage2Config,
)
from repro.core.resilience import (
    FAULTS,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    FaultRecord,
    TranslationReport,
    current_deadline,
    guarded_call,
)
from repro.core.repair import RepairConfig, run_repair
from repro.core.similarity import similarity_score, similarity_unit
from repro.core.verify import VerifyConfig, verify_candidates
from repro.data.dataset import Dataset
from repro.models.base import TranslationModel
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, current_tracer, trace_scope
from repro.perf.cache import caching_enabled
from repro.perf.memo import (
    cached_normal_sql,
    cached_sql_surface,
    cached_unit_phrases,
)
from repro.schema.database import Database
from repro.sqlkit.ast import Query
from repro.sqlkit.errors import PipelineStateError
from repro.sqlkit.printer import to_sql


@dataclass
class MetaSQLConfig:
    """Pipeline configuration (defaults follow Section IV-A2/3)."""

    classification_threshold: float = 0.0  # p in the paper, Fig. 6a sweeps it
    first_stage_top: int = 10  # L = 10
    ranker_train_questions: int = 400  # subsample for ranker supervision
    use_classifier: bool = True  # Table 9 ablation
    use_stage2: bool = True  # Table 9 ablation
    phrase_supervision: bool = True  # Table 9 ablation
    negative_samples: int = 120  # Section III-B1 augmentation for rankers
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    composer: ComposerConfig = field(default_factory=ComposerConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    stage1: Stage1Config = field(default_factory=Stage1Config)
    stage2: Stage2Config = field(default_factory=Stage2Config)
    resilience: DegradationPolicy = field(default_factory=DegradationPolicy)
    verify: VerifyConfig = field(default_factory=VerifyConfig)
    repair: RepairConfig = field(default_factory=RepairConfig)
    seed: int = 20240501


# ----------------------------------------------------------------------
# Observability wiring (metric names are documented in DESIGN.md §10).
# ``get_registry()`` is consulted at event time so the serving layer's
# (or a test's) ambient registry scope is honoured.


def _stage_latency(registry: MetricsRegistry):
    return registry.histogram(
        "metasql_stage_latency_seconds",
        "Wall seconds spent per pipeline stage.",
        labelnames=("stage",),
    )


def _record_breaker_transition(stage: str, old: str, new: str) -> None:
    registry = get_registry()
    registry.counter(
        "metasql_breaker_transitions_total",
        "Circuit-breaker state transitions by stage and target state.",
        labelnames=("stage", "to"),
    ).labels(stage=stage, to=new).inc()


def _record_failpoint_trigger(site: str) -> None:
    get_registry().counter(
        "metasql_failpoint_triggered_total",
        "Armed failpoint firings by injection site.",
        labelnames=("site",),
    ).labels(site=site).inc()


# The process-wide injector reports armed firings to the metrics layer.
FAULTS.on_trigger = _record_failpoint_trigger


def _dedupe_candidates(
    generated: list[GeneratedCandidate],
    surfaces: list[str],
) -> tuple[list[GeneratedCandidate], list[str], int]:
    """Drop candidates whose normalized SQL duplicates another's.

    The generator already removes byte-identical SQL *within* one
    candidate set, but distinct metadata compositions can still yield
    queries that normalize to the same canonical form; featurizing and
    scoring each copy is pure waste.  The best beam score survives and
    the original candidate order is preserved.  Returns the kept
    candidates, their surfaces, and the number of duplicates dropped.
    """
    best: dict[str, int] = {}
    for position, candidate in enumerate(generated):
        key = cached_normal_sql(candidate.query, candidate.sql_text or None)
        held = best.get(key)
        if held is None or generated[held].score < candidate.score:
            best[key] = position
    if len(best) == len(generated):
        return generated, surfaces, 0
    keep = sorted(best.values())
    return (
        [generated[i] for i in keep],
        [surfaces[i] for i in keep],
        len(generated) - len(keep),
    )


@dataclass(frozen=True)
class RankedTranslation:
    """One ranked output of the pipeline."""

    query: Query
    stage1_score: float
    stage2_score: float
    metadata: QueryMetadata | None

    @property
    def sql(self) -> str:
        return to_sql(self.query)


@dataclass
class RankedResult:
    """Ranked translations plus the resilience report for one question."""

    translations: list[RankedTranslation]
    report: TranslationReport

    def __iter__(self):
        return iter(self.translations)

    def __len__(self) -> int:
        return len(self.translations)

    @property
    def degraded(self) -> bool:
        return self.report.degraded


class MetaSQL:
    """Generate-then-rank framework around a base translation model."""

    # Class-level defaults so pipeline *views* built around ``__new__``
    # (e.g. experiments cloning a trained pipeline with one component
    # swapped) inherit sane stage-health state without running __init__.
    _classifier_ok = True
    _stage1_ok = True
    _stage2_ok = True
    last_report: TranslationReport | None = None
    breakers: BreakerBoard | None = None

    def __init__(
        self,
        model: TranslationModel,
        config: MetaSQLConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or MetaSQLConfig()
        # Copy the stage-2 sub-config before applying the pipeline-level
        # ablation flag: mutating config.stage2 in place would clobber a
        # Stage2Config (or MetaSQLConfig) shared with another pipeline.
        stage2_config = replace(
            self.config.stage2,
            phrase_supervision=self.config.phrase_supervision,
        )
        self.classifier = MetadataClassifier(self.config.classifier)
        self.composer = MetadataComposer(self.config.composer)
        self.generator = CandidateGenerator(model, self.config.generator)
        self.stage1 = DualTowerRanker(self.config.stage1)
        self.stage2 = MultiGrainedRanker(stage2_config)
        self._trained = False
        self.breakers = self.config.resilience.make_breakers(
            on_transition=_record_breaker_transition
        )
        # "Not known broken": a restored pipeline (persist.load_pipeline)
        # keeps these True; a guarded training failure flips them so
        # inference degrades instead of raising.
        self._classifier_ok = True
        self._stage1_ok = True
        self._stage2_ok = True
        self.training_report = TranslationReport(question="<training>")
        self.last_report: TranslationReport | None = None

    # ------------------------------------------------------------------
    # Training.

    def train(self, train: Dataset, fit_base_model: bool = True) -> "MetaSQL":
        """Train every stage of the pipeline on *train*.

        The base model and the composition index are load-bearing (without
        them there is nothing to rank) so their failures propagate; the
        classifier and both rankers train under the degradation policy —
        a guarded failure is recorded in ``training_report`` and the
        corresponding stage degrades at inference instead of raising.
        """
        policy = self.config.resilience
        self.training_report = TranslationReport(question="<training>")
        if fit_base_model:
            # Metadata-augmented supervised training (Seq2seq models);
            # LLM sims index demonstrations instead and always honour
            # prompt metadata.
            self.model.fit(train, with_metadata=True)
        if policy.classifier_fallback:
            self._classifier_ok, __ = guarded_call(
                "train.classify",
                lambda: self.classifier.fit(train),
                policy,
                self.training_report,
                fallback="all-compositions",
            )
        else:
            self.classifier.fit(train)
        self.composer.fit(train)
        self._fit_rankers(train)
        self._trained = True
        return self

    def _fit_rankers(self, train: Dataset) -> None:
        policy = self.config.resilience
        report = self.training_report
        rng = np.random.default_rng(self.config.seed)
        count = min(self.config.ranker_train_questions, len(train.examples))
        indices = rng.permutation(len(train.examples))[:count]

        triples: list[RankingTriple] = []
        lists: list[RankingList] = []
        for raw_index in indices:
            example = train.examples[int(raw_index)]
            try:
                example_triples, items = self._ranker_supervision(
                    example, train, report
                )
            except Exception as exc:  # repolint: allow[broad-except] — example isolation
                if not policy.isolate_candidates:
                    raise
                report.record_exception(
                    "train", exc, candidate=int(raw_index), fallback="skip"
                )
                continue
            triples.extend(example_triples)
            if len(items) >= 2:
                ordered = tuple(
                    sorted(items, key=lambda item: -item.target)[
                        : self.config.stage2.list_size
                    ]
                )
                lists.append(
                    RankingList(question=example.question, items=ordered)
                )
        ok, negatives = guarded_call(
            "train.negatives",
            lambda: self._negative_triples(train),
            policy,
            report,
            fallback="skip",
        )
        if ok:
            triples.extend(negatives)
        if policy.stage1_fallback:
            self._stage1_ok, __ = guarded_call(
                "train.stage1",
                lambda: self.stage1.fit(triples),
                policy,
                report,
                fallback="generation-order",
            )
        else:
            self.stage1.fit(triples)
        if self.config.use_stage2:
            if policy.stage2_fallback:
                self._stage2_ok, __ = guarded_call(
                    "train.stage2",
                    lambda: self.stage2.fit(lists),
                    policy,
                    report,
                    fallback="stage1-order",
                )
            else:
                self.stage2.fit(lists)

    def _ranker_supervision(
        self,
        example,
        train: Dataset,
        report: TranslationReport,
    ) -> tuple[list[RankingTriple], list[ListItem]]:
        """Supervision triples/list items for one training example.

        Candidates whose similarity/surface computation raises are
        recorded and skipped; the example's remaining candidates (plus the
        gold positive) still supervise the rankers.
        """
        policy = self.config.resilience
        db = train.database(example.db_id)
        schema = db.schema
        compositions = self._compositions_for(example.question, db)
        candidates = self.generator.generate(
            example.question, db, compositions, report=report
        )
        triples: list[RankingTriple] = []
        items: list[ListItem] = []
        seen_gold = False
        for index, candidate in enumerate(candidates):
            try:
                unit_target = similarity_unit(candidate.query, example.sql)
                target10 = similarity_score(candidate.query, example.sql)
                surface = cached_sql_surface(
                    candidate.query, schema, sql_text=candidate.sql_text or None
                )
                phrases = cached_unit_phrases(
                    candidate.query, schema, sql_text=candidate.sql_text or None
                )
            except Exception as exc:  # repolint: allow[broad-except] — candidate isolation
                if not policy.isolate_candidates:
                    raise
                report.record_exception(
                    "train", exc, candidate=index, fallback="skip"
                )
                continue
            if target10 >= 9.99:
                seen_gold = True
            triples.append(
                RankingTriple(
                    question=example.question,
                    sql_text=surface,
                    target=unit_target,
                )
            )
            items.append(
                ListItem(surface=surface, phrases=phrases, target=target10)
            )
        if not seen_gold:
            # Positive sample from the benchmark itself (Section III-C1).
            surface = sql_surface(example.sql, schema)
            triples.append(
                RankingTriple(
                    question=example.question,
                    sql_text=surface,
                    target=1.0,
                )
            )
            items.append(
                ListItem(
                    surface=surface,
                    phrases=cached_unit_phrases(example.sql, schema),
                    target=10.0,
                )
            )
        return triples, items

    def _negative_triples(self, train: Dataset) -> list[RankingTriple]:
        """Extra stage-1 negatives from incorrect-conditioned decoding.

        Implements the paper's Section III-B1 augmentation: erroneous
        translations collected on the training set supervise the rankers as
        low-similarity pairs.
        """
        if self.config.negative_samples <= 0 or not self.model.metadata_trained:
            return []
        from repro.core.negatives import collect_negative_samples

        triples: list[RankingTriple] = []
        negatives = collect_negative_samples(
            self.model,
            train,
            max_examples=self.config.negative_samples,
            seed=self.config.seed + 1,
        )
        for example, wrong_query in negatives:
            schema = train.schema(example.db_id)
            triples.append(
                RankingTriple(
                    question=example.question,
                    sql_text=sql_surface(wrong_query, schema),
                    target=similarity_unit(wrong_query, example.sql),
                )
            )
        return triples

    # ------------------------------------------------------------------
    # Inference.

    def _breaker(self, stage: str) -> CircuitBreaker | None:
        board = self.breakers
        return board.get(stage) if board is not None else None

    @staticmethod
    def _deadline_expired(
        deadline: Deadline | None,
        report: TranslationReport,
        stage: str,
        fallback: str,
    ) -> bool:
        """Cooperative deadline checkpoint at one stage boundary.

        Records the expiry (once — callers return immediately) with the
        *fallback* label describing what the translation degrades to.
        """
        if deadline is None or not deadline.expired():
            return False
        report.record_deadline(deadline, stage, fallback)
        return True

    def _compositions_for(
        self, question: str, db: Database
    ) -> list[QueryMetadata]:
        if not self.config.use_classifier or not self._classifier_ok:
            return self.composer.all_compositions(
                limit=self.config.composer.max_compositions * 3
            )
        tags, ratings = self.classifier.predict(
            question, db, threshold=self.config.classification_threshold
        )
        compositions = self.composer.compose(tags, ratings)
        if not compositions:
            compositions = self.composer.all_compositions(limit=4)
        return compositions

    def _compositions_guarded(
        self,
        question: str,
        db: Database,
        policy: DegradationPolicy,
        report: TranslationReport,
    ) -> list[QueryMetadata]:
        """The degradation-aware composition chain.

        classifier failure -> observed compositions; composition failure
        -> observed compositions; observed-composition failure -> empty
        (the generator still decodes its unconditioned beam).
        """

        def all_observed() -> list[QueryMetadata]:
            return self.composer.all_compositions(
                limit=self.config.composer.max_compositions * 3
            )

        if self.config.use_classifier and self._classifier_ok:
            ok, predicted = guarded_call(
                "classify",
                lambda: self.classifier.predict(
                    question,
                    db,
                    threshold=self.config.classification_threshold,
                ),
                policy,
                report,
                fallback="all-compositions",
                site="classifier.predict",
                breaker=self._breaker("classify"),
            )
            if ok:
                tags, ratings = predicted
                ok, compositions = guarded_call(
                    "compose",
                    lambda: self.composer.compose(tags, ratings),
                    policy,
                    report,
                    fallback="all-compositions",
                    site="compose",
                    breaker=self._breaker("compose"),
                )
                if ok:
                    if compositions:
                        return compositions
                    return self.composer.all_compositions(limit=4)
            if not policy.classifier_fallback:
                return []
        elif self.config.use_classifier and not self._classifier_ok:
            report.record(
                FaultRecord(
                    stage="classify",
                    error_type="StageError",
                    error="classifier unavailable (training failed)",
                    fallback="all-compositions",
                )
            )
        ok, compositions = guarded_call(
            "compose",
            lambda: all_observed(),
            policy,
            report,
            fallback="unconditioned",
            breaker=self._breaker("compose"),
        )
        return compositions if ok else []

    def candidates(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None = None,
        report: TranslationReport | None = None,
    ) -> list[GeneratedCandidate]:
        """The metadata-conditioned candidate set for *question*."""
        if not self._trained:
            raise PipelineStateError(
                "MetaSQL pipeline is not trained; call train() or "
                "load_pipeline() before requesting candidates"
            )
        if compositions is None:
            compositions = self._compositions_for(question, db)
        return self.generator.generate(
            question, db, compositions, report=report
        )

    def translate_ranked_report(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None = None,
        deadline: Deadline | None = None,
    ) -> RankedResult:
        """Two-stage ranking with fault isolation and a resilience report.

        Never raises for stage or candidate failures: each one is either
        retried (transient), isolated (per candidate), or absorbed by the
        degradation chain, and shows up as a :class:`FaultRecord` in the
        returned report.  Only lifecycle misuse (untrained pipeline)
        raises.

        A *deadline* (explicit, or ambient via
        :func:`repro.core.resilience.deadline_scope`) is checked
        cooperatively at every stage boundary; once expired the
        translation degrades to the best answer produced so far —
        stage-1 ordering if stage-1 ran, generation order if only the
        generator ran, empty otherwise — with the expiry recorded on the
        report (``deadline_budget`` / ``deadline_stage``).

        Every call is traced: a ``translate`` root span with one child
        per stage (plus the generator's per-condition/per-candidate
        sub-spans) is attached to ``report.trace``, stage latencies land
        in the ambient metrics registry, and fault/degradation counters
        are flushed from the report — on every return path.
        """
        if not self._trained:
            raise PipelineStateError(
                "MetaSQL pipeline is not trained; call train() or "
                "load_pipeline() before translating"
            )
        policy = self.config.resilience
        if deadline is None:
            deadline = current_deadline()
        report = TranslationReport(question=question)
        if deadline is not None:
            report.deadline_budget = deadline.budget
        self.last_report = report
        registry = get_registry()
        with ExitStack() as stack:
            tracer = current_tracer()
            if tracer is None:
                tracer = Tracer()
                stack.enter_context(trace_scope(tracer))
            with tracer.span("translate") as root:
                translations = self._translate_stages(
                    question,
                    db,
                    compositions,
                    deadline,
                    policy,
                    report,
                    tracer,
                    registry,
                )
        report.trace = root.as_dict()
        registry.histogram(
            "metasql_translate_latency_seconds",
            "End-to-end pipeline translate latency.",
        ).observe(root.duration)
        self._flush_report_metrics(registry, report)
        return RankedResult(translations, report)

    @contextmanager
    def _stage_span(self, tracer: Tracer, registry: MetricsRegistry, stage):
        """A stage-boundary span whose duration feeds the stage histogram.

        The histogram observation happens on exit, so early returns from
        the ``with`` body (deadline expiries, terminal faults) still
        record the time the stage consumed.
        """
        with tracer.span(stage) as span:
            yield span
        _stage_latency(registry).labels(stage=stage).observe(span.duration)

    def _translate_stages(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None,
        deadline: Deadline | None,
        policy: DegradationPolicy,
        report: TranslationReport,
        tracer: Tracer,
        registry: MetricsRegistry,
    ) -> list[RankedTranslation]:
        """The four traced stage blocks behind ``translate_ranked_report``."""
        with self._stage_span(tracer, registry, "classify") as span:
            if self._deadline_expired(deadline, report, "classify", "empty"):
                return []
            if compositions is None:
                compositions = self._compositions_guarded(
                    question, db, policy, report
                )
            span.attributes["compositions"] = len(compositions)

        with self._stage_span(tracer, registry, "generate") as span:
            if self._deadline_expired(deadline, report, "generate", "empty"):
                return []
            ok, generated = guarded_call(
                "generate",
                lambda: self.generator.generate(
                    question, db, compositions, report=report
                ),
                policy,
                report,
                fallback="empty",
                site="generator.generate",
                breaker=self._breaker("generate"),
            )
            if not ok or not generated:
                span.attributes["candidates"] = 0
                return []

            schema = db.schema
            generated, surfaces, deduped = self._render_surfaces(
                schema, generated, policy, report
            )
            span.attributes["candidates"] = len(generated)
            span.attributes["deduped"] = deduped
            if deduped:
                registry.counter(
                    "metasql_candidates_deduped_total",
                    "Duplicate candidates (same normalized SQL) dropped "
                    "before stage-1 scoring.",
                ).inc(deduped)
            if report.lint_rejected:
                span.attributes["lint_rejected"] = report.lint_rejected
            registry.counter(
                "metasql_candidates_generated_total",
                "Candidates surviving generation and surface rendering.",
            ).inc(len(generated))
        if not generated:
            return []

        def generation_order() -> list[tuple[int, float]]:
            # Generation order: the base model's own beam scores.
            order = sorted(
                range(len(generated)), key=lambda i: -generated[i].score
            )
            return [
                (i, generated[i].score)
                for i in order[: self.config.first_stage_top]
            ]

        with self._stage_span(tracer, registry, "stage1") as span:
            if self._deadline_expired(
                deadline, report, "stage1", "generation-order"
            ):
                return self._ranked_from_pruned(
                    generated, generation_order()
                )
            span.attributes["batch_size"] = len(surfaces)
            pruned = self._stage1_pruned(question, surfaces, policy, report)
            if pruned is None:
                if not policy.stage1_fallback:
                    return []
                pruned = generation_order()
            span.attributes["kept"] = len(pruned)
            registry.counter(
                "metasql_candidates_pruned_total",
                "Candidates dropped by first-stage pruning.",
            ).inc(max(0, len(generated) - len(pruned)))

        with self._stage_span(tracer, registry, "stage2") as span:
            if self._deadline_expired(
                deadline, report, "stage2", "stage1-order"
            ):
                return self._ranked_from_pruned(generated, pruned)
            span.attributes["batch_size"] = len(pruned)
            ranked = self._stage2_ranked(
                question, generated, surfaces, pruned, schema, policy, report
            )
            span.attributes["ranked"] = len(ranked)
        return self._verify_and_repair(
            question, db, ranked, deadline, policy, report, tracer, registry
        )

    def _verify_and_repair(
        self,
        question: str,
        db: Database,
        ranked: list[RankedTranslation],
        deadline: Deadline | None,
        policy: DegradationPolicy,
        report: TranslationReport,
        tracer: Tracer,
        registry: MetricsRegistry,
    ) -> list[RankedTranslation]:
        """Execution-guided verification plus the bounded repair loop.

        Executes the top-k ranked candidates (``config.verify``) and
        re-emits the order with runtime failures demoted or pruned; when
        the best candidate the stage can offer *still* hard-fails,
        metadata-perturbed regeneration (``config.repair``) gets a
        bounded number of attempts to replace it.  With
        ``verify.policy == "off"`` this method is an identity: no spans,
        no metrics, bit-identical ranked output.

        Fail-open contract: a verify-stage crash (injected or organic)
        is absorbed by ``guarded_call`` as ``FaultRecord(stage="verify",
        fallback="keep")`` and the incoming ranked order stands.
        """
        config = self.config.verify
        if not config.enabled or not ranked:
            return ranked
        with self._stage_span(tracer, registry, "verify") as span:
            if self._deadline_expired(deadline, report, "verify", "keep"):
                return ranked
            span.attributes["candidates"] = len(ranked)
            ok, result = guarded_call(
                "verify",
                lambda: verify_candidates(
                    [translation.query for translation in ranked],
                    db,
                    config,
                    deadline=deadline,
                ),
                policy,
                report,
                fallback="keep",
                site="verify.execute",
                breaker=self._breaker("verify"),
            )
            if not ok:
                return ranked
            outcomes = result.outcome_counts()
            report.record_verify(outcomes, result.demoted)
            span.attributes["checked"] = result.checked
            span.attributes["demoted"] = result.demoted
            outcome_counter = registry.counter(
                "metasql_verify_candidates_total",
                "Verified candidates by execution outcome.",
                labelnames=("outcome",),
            )
            for outcome, count in sorted(outcomes.items()):
                outcome_counter.labels(outcome=outcome).inc(count)
            if result.demoted:
                registry.counter(
                    "metasql_verify_demoted_total",
                    "Candidates demoted or pruned by the verify stage.",
                ).inc(result.demoted)
            verified = [ranked[index] for index in result.order]
        registry.histogram(
            "metasql_verify_latency_seconds",
            "Wall seconds spent executing candidates in the verify stage.",
        ).observe(span.duration)
        if not (self.config.repair.enabled and result.top1_failed and verified):
            return verified
        with self._stage_span(tracer, registry, "repair") as span:
            if self._deadline_expired(deadline, report, "repair", "keep"):
                return verified
            tried = {
                (translation.metadata.tags, translation.metadata.rating)
                for translation in ranked
                if translation.metadata is not None
            }
            repaired = run_repair(
                self,
                question,
                db,
                verified,
                result,
                tried,
                policy,
                report,
                deadline=deadline,
            )
            span.attributes["attempts"] = report.repair_attempts
            span.attributes["succeeded"] = report.repair_succeeded
        registry.histogram(
            "metasql_repair_latency_seconds",
            "Wall seconds spent in the bounded repair loop.",
        ).observe(span.duration)
        if report.repair_attempts:
            registry.counter(
                "metasql_repair_attempts_total",
                "Metadata-perturbed regeneration attempts.",
            ).inc(report.repair_attempts)
        if report.repair_succeeded:
            registry.counter(
                "metasql_repair_success_total",
                "Translations whose repaired top-1 passed verification.",
            ).inc()
        return repaired

    @staticmethod
    def _flush_report_metrics(
        registry: MetricsRegistry, report: TranslationReport
    ) -> None:
        """Turn one translation's report into registry counters."""
        if report.faults:
            faults = registry.counter(
                "metasql_faults_total",
                "Fault records by stage, failpoint site and fallback.",
                labelnames=("stage", "site", "fallback"),
            )
            for record in report.faults:
                faults.labels(
                    stage=record.stage,
                    site=record.site or "",
                    fallback=record.fallback or "",
                ).inc()
        if report.degraded:
            registry.counter(
                "metasql_degraded_translations_total",
                "Translations that applied any degradation fallback.",
            ).inc()
        if report.deadline_expired:
            registry.counter(
                "metasql_deadline_expired_total",
                "Deadline expiries by the stage that observed them.",
                labelnames=("stage",),
            ).labels(stage=report.deadline_stage or "").inc()

    @staticmethod
    def _ranked_from_pruned(
        generated: list[GeneratedCandidate],
        pruned: list[tuple[int, float]],
    ) -> list[RankedTranslation]:
        """Degraded output: the pruned ordering stands in for stage 2."""
        return [
            RankedTranslation(
                query=generated[index].query,
                stage1_score=stage1_score,
                stage2_score=stage1_score,
                metadata=generated[index].metadata,
            )
            for index, stage1_score in pruned
        ]

    def _render_surfaces(
        self,
        schema,
        generated: list[GeneratedCandidate],
        policy: DegradationPolicy,
        report: TranslationReport,
    ) -> tuple[list[GeneratedCandidate], list[str], int]:
        """Stage-1 surfaces for a candidate set, duplicates dropped.

        Per-candidate rendering failures are isolated (recorded and
        skipped) under the degradation policy; normalized-SQL duplicates
        are collapsed to the best-scoring copy.  Shared by the main
        translate path and the repair loop's regeneration pass.  Returns
        ``(kept candidates, surfaces, duplicates dropped)``.
        """
        surfaces: list[str] = []
        kept: list[GeneratedCandidate] = []
        for index, candidate in enumerate(generated):
            try:
                surface = cached_sql_surface(
                    candidate.query,
                    schema,
                    sql_text=candidate.sql_text or None,
                )
            except Exception as exc:  # repolint: allow[broad-except] — isolation
                if not policy.isolate_candidates:
                    raise
                report.record_exception(
                    "surface", exc, candidate=index, fallback="skip"
                )
                continue
            surfaces.append(surface)
            kept.append(candidate)
        return _dedupe_candidates(kept, surfaces)

    def _stage1_pruned(
        self,
        question: str,
        surfaces: list[str],
        policy: DegradationPolicy,
        report: TranslationReport,
    ) -> list[tuple[int, float]] | None:
        """Stage-1 pruning, or None when it failed/was unavailable."""
        if not self._stage1_ok:
            report.record(
                FaultRecord(
                    stage="stage1",
                    error_type="StageError",
                    error="stage-1 ranker unavailable (training failed)",
                    fallback="generation-order",
                )
            )
            return None
        ok, pruned = guarded_call(
            "stage1",
            lambda: self.stage1.rank(
                question, surfaces, top_k=self.config.first_stage_top
            ),
            policy,
            report,
            fallback="generation-order",
            site="stage1.rank",
            breaker=self._breaker("stage1"),
        )
        return pruned if ok else None

    def _stage2_ranked(
        self,
        question: str,
        generated: list[GeneratedCandidate],
        surfaces: list[str],
        pruned: list[tuple[int, float]],
        schema,
        policy: DegradationPolicy,
        report: TranslationReport,
    ) -> list[RankedTranslation]:
        """Stage-2 re-ranking with fallback to the stage-1 ordering."""
        if self.config.use_stage2 and self._stage2_ok:
            stage2_input: list[tuple[str, tuple[str, ...]]] = []
            rows: list[tuple[int, float]] = []
            for index, stage1_score in pruned:
                try:
                    phrases = cached_unit_phrases(
                        generated[index].query,
                        schema,
                        sql_text=generated[index].sql_text or None,
                    )
                except Exception as exc:  # repolint: allow[broad-except] — isolation
                    if not policy.isolate_candidates:
                        raise
                    report.record_exception(
                        "stage2", exc, candidate=index, fallback="skip"
                    )
                    continue
                stage2_input.append((surfaces[index], phrases))
                rows.append((index, stage1_score))
            if rows:
                ok, stage2_ranked = guarded_call(
                    "stage2",
                    lambda: self.stage2.rank(question, stage2_input),
                    policy,
                    report,
                    fallback="stage1-order",
                    site="stage2.rank",
                    breaker=self._breaker("stage2"),
                )
                if ok:
                    ranked = []
                    for position, score in stage2_ranked:
                        index, stage1_score = rows[position]
                        candidate = generated[index]
                        ranked.append(
                            RankedTranslation(
                                query=candidate.query,
                                stage1_score=stage1_score,
                                stage2_score=score,
                                metadata=candidate.metadata,
                            )
                        )
                    return ranked
                if not policy.stage2_fallback:
                    return []
        elif self.config.use_stage2 and not self._stage2_ok:
            report.record(
                FaultRecord(
                    stage="stage2",
                    error_type="StageError",
                    error="stage-2 ranker unavailable (training failed)",
                    fallback="stage1-order",
                )
            )
        return self._ranked_from_pruned(generated, pruned)

    def translate_many(
        self,
        requests,
        deadline: Deadline | None = None,
        deadlines: "list[Deadline | None] | None" = None,
    ) -> list[RankedResult]:
        """Batched driver: rank many ``(question, db)`` requests.

        Distinct questions are pushed through the stage-1 query tower in
        one batched forward pass up front (priming the embedding cache),
        then each request runs through :meth:`translate_ranked_report`;
        repeated questions, repeated candidate SQL, and shared phrase
        renderings amortize featurization across the whole batch.  Used
        by :func:`repro.eval.evaluate.evaluate_metasql`, the experiment
        drivers, and the serving layer's micro-batch scheduler.

        *deadline* applies one shared budget to every item; *deadlines*
        instead threads an independent per-item budget (``None`` members
        fall back to any ambient deadline) — this is how batched serving
        keeps each member's time budget, report, and degradation
        behaviour exactly what it would have been served singly.
        """
        items = [(question, db) for question, db in requests]
        if deadlines is not None:
            deadlines = list(deadlines)
            if deadline is not None:
                raise ValueError(
                    "translate_many takes deadline or deadlines, not both"
                )
            if len(deadlines) != len(items):
                raise ValueError(
                    f"deadlines must match requests one-to-one: "
                    f"{len(deadlines)} != {len(items)}"
                )
            per_item = deadlines
        else:
            per_item = [deadline] * len(items)
        if not self._trained:
            raise PipelineStateError(
                "MetaSQL pipeline is not trained; call train() or "
                "load_pipeline() before translating"
            )
        self._prewarm_stage1([question for question, __ in items])
        return [
            self.translate_ranked_report(question, db, deadline=budget)
            for (question, db), budget in zip(items, per_item)
        ]

    def _prewarm_stage1(self, questions: list[str]) -> None:
        """Best-effort batch warm-up of the stage-1 question embeddings."""
        if not self._stage1_ok or not caching_enabled():
            return
        try:
            self.stage1.warm_questions(list(dict.fromkeys(questions)))
        except Exception:  # repolint: allow[broad-except] — prewarm is best-effort
            pass

    def translate_ranked(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None = None,
        deadline: Deadline | None = None,
    ) -> list[RankedTranslation]:
        """Full two-stage ranking; returns translations best-first.

        The resilience report for the call is kept on ``last_report``;
        use :meth:`translate_ranked_report` to get it alongside the list.
        """
        return self.translate_ranked_report(
            question, db, compositions, deadline=deadline
        ).translations

    def translate(
        self,
        question: str,
        db: Database,
        deadline: Deadline | None = None,
    ) -> Query | None:
        """Best translation for *question*, or None.

        Degrades rather than raises on stage faults: the report on
        ``last_report`` records anything that was absorbed.
        """
        result = self.translate_ranked_report(question, db, deadline=deadline)
        if not result.translations:
            return None
        return result.translations[0].query
