"""The MetaSQL pipeline (Fig. 2): decompose -> generate -> rank.

``MetaSQL`` wraps any :class:`~repro.models.base.TranslationModel`:

1. **train** — metadata-augment and fit the base model (Seq2seq only),
   fit the multi-label metadata classifier and the composition index, then
   generate candidate sets over a training subsample to supervise the
   two ranking stages (clause-similarity targets vs gold).
2. **translate** — classify metadata labels, compose conditions observed in
   training, generate one small beam per condition, ground placeholder
   values, first-stage-prune to 10 candidates, second-stage-rank, return
   the top query (or the full ranked list).

Ablation flags reproduce Table 9: ``use_classifier=False`` conditions on
*all* observed compositions; ``use_stage2=False`` stops after the
first-stage ranker; ``phrase_supervision=False`` removes the fine-grained
losses from stage-2 training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.core.compose import ComposerConfig, MetadataComposer
from repro.core.generation import (
    CandidateGenerator,
    GeneratedCandidate,
    GeneratorConfig,
)
from repro.core.metadata import QueryMetadata, extract_metadata
from repro.core.rank_stage1 import (
    DualTowerRanker,
    RankingTriple,
    Stage1Config,
    sql_surface,
)
from repro.core.rank_stage2 import (
    ListItem,
    MultiGrainedRanker,
    RankingList,
    Stage2Config,
)
from repro.core.similarity import similarity_score, similarity_unit
from repro.data.dataset import Dataset
from repro.models.base import TranslationModel
from repro.schema.database import Database
from repro.sqlkit.ast import Query
from repro.sqlkit.printer import to_sql
from repro.sqlkit.sql2nl import unit_phrases


@dataclass
class MetaSQLConfig:
    """Pipeline configuration (defaults follow Section IV-A2/3)."""

    classification_threshold: float = 0.0  # p in the paper, Fig. 6a sweeps it
    first_stage_top: int = 10  # L = 10
    ranker_train_questions: int = 400  # subsample for ranker supervision
    use_classifier: bool = True  # Table 9 ablation
    use_stage2: bool = True  # Table 9 ablation
    phrase_supervision: bool = True  # Table 9 ablation
    negative_samples: int = 120  # Section III-B1 augmentation for rankers
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    composer: ComposerConfig = field(default_factory=ComposerConfig)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    stage1: Stage1Config = field(default_factory=Stage1Config)
    stage2: Stage2Config = field(default_factory=Stage2Config)
    seed: int = 20240501


@dataclass(frozen=True)
class RankedTranslation:
    """One ranked output of the pipeline."""

    query: Query
    stage1_score: float
    stage2_score: float
    metadata: QueryMetadata | None

    @property
    def sql(self) -> str:
        return to_sql(self.query)


class MetaSQL:
    """Generate-then-rank framework around a base translation model."""

    def __init__(
        self,
        model: TranslationModel,
        config: MetaSQLConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or MetaSQLConfig()
        self.config.stage2.phrase_supervision = self.config.phrase_supervision
        self.classifier = MetadataClassifier(self.config.classifier)
        self.composer = MetadataComposer(self.config.composer)
        self.generator = CandidateGenerator(model, self.config.generator)
        self.stage1 = DualTowerRanker(self.config.stage1)
        self.stage2 = MultiGrainedRanker(self.config.stage2)
        self._trained = False

    # ------------------------------------------------------------------
    # Training.

    def train(self, train: Dataset, fit_base_model: bool = True) -> "MetaSQL":
        """Train every stage of the pipeline on *train*."""
        if fit_base_model:
            # Metadata-augmented supervised training (Seq2seq models);
            # LLM sims index demonstrations instead and always honour
            # prompt metadata.
            self.model.fit(train, with_metadata=True)
        self.classifier.fit(train)
        self.composer.fit(train)
        self._fit_rankers(train)
        self._trained = True
        return self

    def _fit_rankers(self, train: Dataset) -> None:
        rng = np.random.default_rng(self.config.seed)
        count = min(self.config.ranker_train_questions, len(train.examples))
        indices = rng.permutation(len(train.examples))[:count]

        triples: list[RankingTriple] = []
        lists: list[RankingList] = []
        for raw_index in indices:
            example = train.examples[int(raw_index)]
            db = train.database(example.db_id)
            schema = db.schema
            compositions = self._compositions_for(example.question, db)
            candidates = self.generator.generate(
                example.question, db, compositions
            )
            items: list[ListItem] = []
            seen_gold = False
            for candidate in candidates:
                unit_target = similarity_unit(candidate.query, example.sql)
                target10 = similarity_score(candidate.query, example.sql)
                if target10 >= 9.99:
                    seen_gold = True
                surface = sql_surface(candidate.query, schema)
                triples.append(
                    RankingTriple(
                        question=example.question,
                        sql_text=surface,
                        target=unit_target,
                    )
                )
                items.append(
                    ListItem(
                        surface=surface,
                        phrases=tuple(unit_phrases(candidate.query, schema)),
                        target=target10,
                    )
                )
            if not seen_gold:
                # Positive sample from the benchmark itself (Section III-C1).
                surface = sql_surface(example.sql, schema)
                triples.append(
                    RankingTriple(
                        question=example.question,
                        sql_text=surface,
                        target=1.0,
                    )
                )
                items.append(
                    ListItem(
                        surface=surface,
                        phrases=tuple(unit_phrases(example.sql, schema)),
                        target=10.0,
                    )
                )
            if len(items) >= 2:
                ordered = tuple(
                    sorted(items, key=lambda item: -item.target)[
                        : self.config.stage2.list_size
                    ]
                )
                lists.append(
                    RankingList(question=example.question, items=ordered)
                )
        triples.extend(self._negative_triples(train))
        self.stage1.fit(triples)
        if self.config.use_stage2:
            self.stage2.fit(lists)

    def _negative_triples(self, train: Dataset) -> list[RankingTriple]:
        """Extra stage-1 negatives from incorrect-conditioned decoding.

        Implements the paper's Section III-B1 augmentation: erroneous
        translations collected on the training set supervise the rankers as
        low-similarity pairs.
        """
        if self.config.negative_samples <= 0 or not self.model.metadata_trained:
            return []
        from repro.core.negatives import collect_negative_samples

        triples: list[RankingTriple] = []
        negatives = collect_negative_samples(
            self.model,
            train,
            max_examples=self.config.negative_samples,
            seed=self.config.seed + 1,
        )
        for example, wrong_query in negatives:
            schema = train.schema(example.db_id)
            triples.append(
                RankingTriple(
                    question=example.question,
                    sql_text=sql_surface(wrong_query, schema),
                    target=similarity_unit(wrong_query, example.sql),
                )
            )
        return triples

    # ------------------------------------------------------------------
    # Inference.

    def _compositions_for(
        self, question: str, db: Database
    ) -> list[QueryMetadata]:
        if not self.config.use_classifier:
            return self.composer.all_compositions(
                limit=self.config.composer.max_compositions * 3
            )
        tags, ratings = self.classifier.predict(
            question, db, threshold=self.config.classification_threshold
        )
        compositions = self.composer.compose(tags, ratings)
        if not compositions:
            compositions = self.composer.all_compositions(limit=4)
        return compositions

    def candidates(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None = None,
    ) -> list[GeneratedCandidate]:
        """The metadata-conditioned candidate set for *question*."""
        if compositions is None:
            compositions = self._compositions_for(question, db)
        return self.generator.generate(question, db, compositions)

    def translate_ranked(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata] | None = None,
    ) -> list[RankedTranslation]:
        """Full two-stage ranking; returns translations best-first."""
        if not self._trained:
            raise RuntimeError("MetaSQL pipeline is not trained")
        generated = self.candidates(question, db, compositions)
        if not generated:
            return []
        schema = db.schema
        surfaces = [sql_surface(c.query, schema) for c in generated]
        pruned = self.stage1.rank(
            question, surfaces, top_k=self.config.first_stage_top
        )
        ranked: list[RankedTranslation] = []
        if self.config.use_stage2:
            stage2_input = [
                (
                    surfaces[index],
                    tuple(unit_phrases(generated[index].query, schema)),
                )
                for index, __ in pruned
            ]
            stage2_ranked = self.stage2.rank(question, stage2_input)
            for position, score in stage2_ranked:
                index, stage1_score = pruned[position]
                candidate = generated[index]
                ranked.append(
                    RankedTranslation(
                        query=candidate.query,
                        stage1_score=stage1_score,
                        stage2_score=score,
                        metadata=candidate.metadata,
                    )
                )
        else:
            for index, stage1_score in pruned:
                candidate = generated[index]
                ranked.append(
                    RankedTranslation(
                        query=candidate.query,
                        stage1_score=stage1_score,
                        stage2_score=stage1_score,
                        metadata=candidate.metadata,
                    )
                )
        return ranked

    def translate(self, question: str, db: Database) -> Query | None:
        """Best translation for *question*, or None."""
        ranked = self.translate_ranked(question, db)
        if not ranked:
            return None
        return ranked[0].query
