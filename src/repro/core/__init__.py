"""MetaSQL core: metadata, classifier, conditioned generation, ranking.

Exports resolve lazily (PEP 562) so that dependency-light members — in
particular :mod:`repro.core.resilience`, which low-level modules like
:mod:`repro.schema.executor` import for failpoints — do not drag the full
pipeline (and its imports back into ``repro.schema``) in at import time.
"""

_EXPORTS = {
    "QueryMetadata": ("repro.core.metadata", "QueryMetadata"),
    "extract_metadata": ("repro.core.metadata", "extract_metadata"),
    "MetaSQL": ("repro.core.pipeline", "MetaSQL"),
    "MetaSQLConfig": ("repro.core.pipeline", "MetaSQLConfig"),
    "DegradationPolicy": ("repro.core.resilience", "DegradationPolicy"),
    "FaultInjector": ("repro.core.resilience", "FaultInjector"),
    "FAULTS": ("repro.core.resilience", "FAULTS"),
    "FaultRecord": ("repro.core.resilience", "FaultRecord"),
    "TranslationReport": ("repro.core.resilience", "TranslationReport"),
    "Deadline": ("repro.core.resilience", "Deadline"),
    "deadline_scope": ("repro.core.resilience", "deadline_scope"),
    "current_deadline": ("repro.core.resilience", "current_deadline"),
    "CircuitBreaker": ("repro.core.resilience", "CircuitBreaker"),
    "BreakerBoard": ("repro.core.resilience", "BreakerBoard"),
    "VerifyConfig": ("repro.core.verify", "VerifyConfig"),
    "VerifyResult": ("repro.core.verify", "VerifyResult"),
    "verify_candidates": ("repro.core.verify", "verify_candidates"),
    "RepairConfig": ("repro.core.repair", "RepairConfig"),
    "save_pipeline": ("repro.core.persist", "save_pipeline"),
    "load_pipeline": ("repro.core.persist", "load_pipeline"),
    "verify_checkpoint": ("repro.core.persist", "verify_checkpoint"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
