"""MetaSQL core: metadata, classifier, conditioned generation, ranking."""

from repro.core.metadata import QueryMetadata, extract_metadata
from repro.core.pipeline import MetaSQL, MetaSQLConfig

__all__ = ["QueryMetadata", "extract_metadata", "MetaSQL", "MetaSQLConfig"]
