"""Execution-guided verification of ranked candidates.

The learned rankers never *run* the SQL they order, so a top-1 query that
references a misjoined table, blows up at runtime, or returns an empty
result ships anyway.  This module is the dynamic half of the candidate
quality story (the static half is the PR-4 semantic-lint gate): after
ranking, the top-k candidates are executed against the request's database
under one small shared :class:`~repro.schema.executor.ExecutionBudget`,
and candidates whose execution fails are reordered according to the
configured policy.

Outcome taxonomy per executed candidate:

- ``ok`` — executed and produced at least one row,
- ``empty`` — executed cleanly but returned no rows (suspicious for many
  NL questions; demotion is opt-in via ``demote_empty`` because a gold
  query can legitimately return nothing),
- ``error`` — raised :class:`~repro.sqlkit.errors.SqlExecutionError` or
  :class:`~repro.sqlkit.errors.SchemaError`,
- ``budget`` — exhausted the verify stage's shared execution budget,
- ``skipped`` — not executed because the stage's time cap (or the
  request deadline) expired, or the shared budget was already gone;
  skipped candidates are presumed innocent and keep their rank.

Reordering policies (:attr:`VerifyConfig.policy`):

- ``demote`` — failing candidates move behind every passing and
  unverified one, preserving relative order inside each group,
- ``prune`` — failing candidates are dropped; if *nothing* survives the
  original order stands (the stage fails open, never returning an empty
  answer it was handed a non-empty one for),
- ``off`` — identity; the stage is disabled and the ranked order is
  bit-identical to today's.

The stage is wrapped by the pipeline in
:func:`~repro.core.resilience.guarded_call` with a dedicated ``verify``
circuit breaker and the ``verify.execute`` failpoint: a crash (anything
other than a per-candidate execution error) falls open to the original
ranked order with a ``FaultRecord(stage="verify", fallback="keep")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.resilience import Deadline, fire
from repro.schema.database import Database
from repro.schema.executor import ExecutionBudget, budget_scope, execute
from repro.sqlkit.ast import Query
from repro.sqlkit.errors import (
    ExecutionBudgetError,
    SchemaError,
    SqlExecutionError,
)

#: Per-candidate outcome labels, in the order they are reported.
OUTCOMES = ("ok", "empty", "error", "budget", "skipped")

#: Outcomes that count as a verification failure.
FAILING = ("error", "budget")


@dataclass
class VerifyConfig:
    """Knobs for the post-rank execution-guided verify stage."""

    #: ``demote`` | ``prune`` | ``off``.
    policy: str = "demote"
    #: How many top-ranked candidates to execute.
    top_k: int = 3
    #: Treat an empty result set as a failure (demoted below non-empty
    #: passing candidates, but above runtime errors).  Off by default:
    #: on the synthetic dev set demoting correct-but-empty top-1s costs
    #: ~2 EM points for zero EX gain (see DESIGN.md §13).
    demote_empty: bool = False
    #: Shared step allowance for the whole top-k sweep (None = unlimited).
    budget_steps: int | None = 200_000
    #: Largest intermediate row set any one execution may materialise.
    budget_rows: int | None = 50_000
    #: Wall-clock cap in seconds for the whole verify stage (None = no
    #: cap beyond the request deadline).  Checked between executions.
    time_cap: float | None = 0.5
    #: Injectable clock for the time cap (tests); None -> time.monotonic.
    clock: Callable[[], float] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.policy not in ("demote", "prune", "off"):
            raise ValueError(
                f"unknown verify policy {self.policy!r} "
                "(expected 'demote', 'prune' or 'off')"
            )

    @property
    def enabled(self) -> bool:
        return self.policy != "off" and self.top_k > 0


@dataclass(frozen=True)
class CandidateVerdict:
    """The execution outcome for one verified candidate."""

    index: int  # position in the ranked list handed to the stage
    outcome: str  # one of OUTCOMES
    detail: str = ""  # exception class name for error/budget outcomes
    rows: int = 0  # result rows produced (ok outcomes)


@dataclass
class VerifyResult:
    """One verify pass: per-candidate verdicts and the reordering."""

    verdicts: list[CandidateVerdict]
    #: The re-emitted candidate order as indices into the input list.
    #: Under ``prune`` failing indices are absent (unless nothing passed).
    order: list[int]
    #: Candidates that were demoted or pruned.
    demoted: int
    #: Candidates actually executed (not ``skipped``).
    checked: int
    #: Steps the shared budget had left when the sweep finished (None
    #: when the budget was unlimited).
    budget_remaining: int | None = None

    def outcome_counts(self) -> dict[str, int]:
        """Verdict tally by outcome label (only non-zero entries)."""
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.outcome] = counts.get(verdict.outcome, 0) + 1
        return counts

    @property
    def top1_verdict(self) -> CandidateVerdict | None:
        """The verdict of the *re-emitted* top-1, when it was executed."""
        if not self.order:
            return None
        by_index = {v.index: v for v in self.verdicts}
        return by_index.get(self.order[0])

    @property
    def top1_failed(self) -> bool:
        """Whether the best candidate the stage can offer still fails.

        True only when the re-emitted top-1 was executed and failed —
        an unverified (skipped/beyond-k) top-1 is presumed innocent.
        """
        verdict = self.top1_verdict
        return verdict is not None and verdict.outcome in FAILING


def _failing(verdict: CandidateVerdict, config: VerifyConfig) -> bool:
    if verdict.outcome in FAILING:
        return True
    return verdict.outcome == "empty" and config.demote_empty


def verify_candidates(
    queries: list[Query],
    db: Database,
    config: VerifyConfig,
    deadline: Deadline | None = None,
) -> VerifyResult:
    """Execute the top-k of *queries* against *db* and reorder by outcome.

    All executions share one :class:`ExecutionBudget` (installed
    ambiently via :func:`~repro.schema.executor.budget_scope`, so nested
    subqueries and later candidates charge the same allowance).  The
    stage stops executing — marking the rest ``skipped`` — as soon as the
    time cap or the request *deadline* expires, or the budget runs dry.

    Per-candidate execution errors are verdicts, not exceptions; anything
    else (including an armed ``verify.execute`` failpoint) propagates to
    the caller's :func:`~repro.core.resilience.guarded_call` so the stage
    fails open as a whole.
    """
    fire("verify.execute")
    cap: Deadline | None = None
    if config.time_cap is not None:
        cap = Deadline(config.time_cap, clock=config.clock)
    count = min(config.top_k, len(queries))
    verdicts: list[CandidateVerdict] = []
    budget = ExecutionBudget(
        max_steps=config.budget_steps, max_rows=config.budget_rows
    )
    with budget_scope(budget):
        for index in range(count):
            if (
                (cap is not None and cap.expired())
                or (deadline is not None and deadline.expired())
                or budget.exhausted
            ):
                verdicts.append(CandidateVerdict(index, "skipped"))
                continue
            try:
                rows = execute(queries[index], db)
            except ExecutionBudgetError as exc:
                verdicts.append(
                    CandidateVerdict(
                        index, "budget", detail=type(exc).__name__
                    )
                )
            except (SqlExecutionError, SchemaError) as exc:
                verdicts.append(
                    CandidateVerdict(index, "error", detail=type(exc).__name__)
                )
            else:
                outcome = "ok" if rows else "empty"
                verdicts.append(
                    CandidateVerdict(index, outcome, rows=len(rows))
                )
    order, demoted = _reorder(len(queries), verdicts, config)
    checked = sum(1 for v in verdicts if v.outcome != "skipped")
    return VerifyResult(
        verdicts=verdicts,
        order=order,
        demoted=demoted,
        checked=checked,
        budget_remaining=budget.remaining(),
    )


def _reorder(
    total: int, verdicts: list[CandidateVerdict], config: VerifyConfig
) -> tuple[list[int], int]:
    """Apply the demotion policy; returns (new order, demoted count).

    Groups, in order: verified-passing, unverified (skipped or beyond
    top-k — presumed innocent), empty-result failures, hard failures
    (error/budget).  Original relative order is preserved inside each
    group, so the stage is a stable partition of the ranked list.
    ``prune`` drops both failing groups unless nothing else remains, in
    which case the original order stands (fail open).
    """
    identity = list(range(total))
    if config.policy == "off":
        return identity, 0
    by_index = {v.index: v for v in verdicts}
    passing: list[int] = []
    unverified: list[int] = []
    empty: list[int] = []
    hard: list[int] = []
    for index in identity:
        verdict = by_index.get(index)
        if verdict is None or verdict.outcome == "skipped":
            unverified.append(index)
        elif verdict.outcome in FAILING:
            hard.append(index)
        elif _failing(verdict, config):
            empty.append(index)
        else:
            passing.append(index)
    failing = empty + hard
    if not failing:
        return identity, 0
    if config.policy == "prune":
        survivors = passing + unverified
        if not survivors:
            return identity, 0
        return survivors, len(failing)
    return passing + unverified + failing, len(failing)
