"""Cross-modal alignment features for the second-stage ranker.

The paper's second-stage model is a *cross-encoder* (RoBERTa over the
joint NL/SQL input) supervised at sentence and phrase granularity.  A
bag-of-features bi-encoder cannot see word order, so it cannot tell
``min(killed), max(injured)`` from the swapped version.  This module
computes the joint alignment signals a cross-encoder attends to:

- canonical word classes (``lowest``/``smallest``/``minimum`` -> MIN, ...)
  shared between question and SQL phrase,
- adjacency: how tightly the phrase's content words co-occur in the
  question (the swapped-aggregate case has loose adjacency),
- literal value / number grounding,
- coverage in both directions (a missing clause leaves question tokens
  uncovered; a hallucinated clause leaves phrase tokens uncovered).
"""

from __future__ import annotations

import numpy as np

from repro.models.mentions import question_tokens

#: token -> canonical class, bridging NL synonyms and SQL description words.
CANONICAL_CLASSES = {
    "minimum": "MIN", "smallest": "MIN", "lowest": "MIN", "min": "MIN",
    "maximum": "MAX", "largest": "MAX", "highest": "MAX", "max": "MAX",
    "average": "AVG", "mean": "AVG", "avg": "AVG",
    "total": "SUM", "sum": "SUM",
    "number": "COUNT", "count": "COUNT", "many": "COUNT",
    "greater": "GT", "above": "GT", "more": "GT", "over": "GT",
    "exceeding": "GT",
    "less": "LT", "below": "LT", "fewer": "LT", "under": "LT",
    "not": "NEG", "without": "NEG", "excluding": "NEG",
    "between": "BETWEEN",
    "different": "DISTINCT", "distinct": "DISTINCT", "unique": "DISTINCT",
    "each": "GROUP", "per": "GROUP", "grouped": "GROUP",
    "sorted": "ORDER", "ordered": "ORDER", "descending": "ORDER",
    "ascending": "ORDER", "top": "LIMIT",
    "also": "INTERSECT", "contains": "LIKE", "includes": "LIKE",
}

_FILLER = frozenset(
    """the a an of for from with and or is are was were in on to find show
    list give me return tell what who whose which that all any records
    their them it its by how""".split()
)

SENTENCE_FEATURE_DIM = 8
PHRASE_FEATURE_DIM = 7


def _stem(token: str) -> str:
    """Light plural stemming so 'students' aligns with 'student'."""
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def canonicalize(tokens: list[str]) -> list[str]:
    """Map tokens to canonical classes where known, else stem them."""
    out = []
    for token in tokens:
        if token in CANONICAL_CLASSES:
            out.append(CANONICAL_CLASSES[token])
        else:
            out.append(_stem(token))
    return out


def content_words(text: str) -> list[str]:
    """Question tokens with filler words removed."""
    return [t for t in question_tokens(text) if t not in _FILLER]


def _positions(tokens: list[str], word: str) -> list[int]:
    return [i for i, t in enumerate(tokens) if t == word]


def _coverage(source: list[str], target: set[str]) -> float:
    if not source:
        return 1.0
    return sum(1 for w in source if w in target) / len(source)


def _adjacency(phrase_words: list[str], question_tokens_c: list[str]) -> float:
    """How tightly the phrase's words cluster in the question.

    Returns exp(-(best window span - len) / len): 1.0 when the words appear
    contiguously, decaying as they spread apart; 0 when any word is absent.
    """
    present = [w for w in phrase_words if w in question_tokens_c]
    if len(present) < 2 or len(present) < len(phrase_words):
        return 0.0 if len(present) < len(phrase_words) else 1.0
    position_lists = [_positions(question_tokens_c, w) for w in phrase_words]
    best_span = None
    # Greedy: for each occurrence of the first word, find the tightest cover.
    for start in position_lists[0]:
        span_max, span_min = start, start
        feasible = True
        for positions in position_lists[1:]:
            nearest = min(positions, key=lambda p: abs(p - start))
            span_max = max(span_max, nearest)
            span_min = min(span_min, nearest)
        span = span_max - span_min + 1
        if best_span is None or span < best_span:
            best_span = span
    if best_span is None:
        return 0.0
    slack = best_span - len(phrase_words)
    return float(np.exp(-slack / max(len(phrase_words), 1)))


def _bigram_containment(phrase_words: list[str], question_words: list[str]) -> float:
    bigrams = list(zip(phrase_words, phrase_words[1:]))
    if not bigrams:
        return 1.0 if set(phrase_words) <= set(question_words) else 0.0
    question_bigrams = set(zip(question_words, question_words[1:]))
    return sum(1 for b in bigrams if b in question_bigrams) / len(bigrams)


def phrase_features(question: str, phrase: str) -> np.ndarray:
    """Alignment feature vector for one SQL-unit phrase."""
    q_raw = question_tokens(question)
    q_canonical = canonicalize(q_raw)
    q_set = set(q_canonical) | set(q_raw)
    p_content = canonicalize(content_words(phrase))
    p_raw = question_tokens(phrase)

    overlap = _coverage(p_content, q_set)
    adjacency = _adjacency(p_content, q_canonical)
    bigram = _bigram_containment(p_content, q_canonical)

    numbers_in_phrase = [t for t in p_raw if t.replace(".", "").isdigit()]
    number_match = (
        _coverage(numbers_in_phrase, set(q_raw)) if numbers_in_phrase else 1.0
    )
    classes_in_phrase = [t for t in p_content if t.isupper()]
    class_match = (
        _coverage(classes_in_phrase, set(q_canonical))
        if classes_in_phrase
        else 1.0
    )
    length = min(len(p_content) / 6.0, 1.0)
    return np.array(
        [overlap, adjacency, bigram, number_match, class_match, length, 1.0]
    )


def sentence_features(
    question: str, surface: str, phrases: tuple[str, ...]
) -> np.ndarray:
    """Sentence-level alignment features for a whole candidate."""
    q_raw = question_tokens(question)
    q_content = canonicalize(content_words(question))
    q_canonical = canonicalize(q_raw)

    all_phrase_words: list[str] = []
    for phrase in phrases:
        all_phrase_words.extend(canonicalize(content_words(phrase)))
    phrase_set = set(all_phrase_words)

    question_coverage = _coverage(q_content, phrase_set)
    candidate_coverage = _coverage(all_phrase_words, set(q_canonical))

    surface_raw = question_tokens(surface)
    numbers_in_sql = [t for t in surface_raw if t.replace(".", "").isdigit()]
    number_match = (
        _coverage(numbers_in_sql, set(q_raw)) if numbers_in_sql else 1.0
    )
    q_numbers = [t for t in q_raw if t.replace(".", "").isdigit()]
    number_recall = (
        _coverage(q_numbers, set(surface_raw)) if q_numbers else 1.0
    )

    q_classes = {t for t in q_canonical if t.isupper()}
    s_classes = {t for t in canonicalize(surface_raw) if t.isupper()}
    union = q_classes | s_classes
    class_jaccard = len(q_classes & s_classes) / len(union) if union else 1.0

    phrase_count = min(len(phrases) / 8.0, 1.0)
    return np.array(
        [
            question_coverage,
            candidate_coverage,
            number_match,
            number_recall,
            class_jaccard,
            phrase_count,
            abs(len(all_phrase_words) - len(q_content)) / 10.0,
            1.0,
        ]
    )
