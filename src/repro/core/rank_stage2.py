"""Second-stage ranking: multi-grained listwise cross-encoder (Section III-C2).

The paper's second stage is a cross-encoder (RoBERTa over the joint NL/SQL
input) with multi-grained supervision.  Our substrate replaces the
transformer with explicit cross-modal *alignment features*
(:mod:`repro.core.align`) feeding two learned heads:

- the **coarse head** scores sentence-level alignment features -> ``y_G``,
- the **fine head** scores each SQL-unit phrase's alignment features; the
  mean phrase score is the local score ``y_L``.

Training follows the paper's multi-scale loss: global MSE + listwise
NeuralNDCG on ``y_G`` (Eq. 2), the NL-to-phrase local loss on ``y_L``
(Eq. 3), and a phrase triplet (hinge) loss pushing mismatched phrases of
negative candidates below matched phrases of positives (Eq. 4).  Inference
ranks by ``y_G + y_L`` (Eq. 5).

``phrase_supervision=False`` reproduces the Table 9 ablation: the local and
triplet losses are removed from training, leaving the fine head at its
random initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.align import (
    PHRASE_FEATURE_DIM,
    SENTENCE_FEATURE_DIM,
    phrase_features,
    sentence_features,
)
from repro.core.resilience import fire
from repro.nn.autograd import Tensor
from repro.nn.layers import MLP
from repro.nn.losses import neural_ndcg_loss
from repro.nn.optim import Adam
from repro.perf.cache import LRUCache


@dataclass(frozen=True)
class ListItem:
    """One candidate in a ranking list."""

    surface: str  # sentence-level text (SQL + description)
    phrases: tuple[str, ...]  # unit-level phrases
    target: float  # similarity score in [0, 10]


@dataclass(frozen=True)
class RankingList:
    """One listwise training instance."""

    question: str
    items: tuple[ListItem, ...]


@dataclass
class Stage2Config:
    """Training hyper-parameters of the multi-grained re-ranker."""
    epochs: int = 12
    learning_rate: float = 5e-3
    list_size: int = 10
    ndcg_weight: float = 0.6
    triplet_weight: float = 0.4
    triplet_margin: float = 1.0
    phrase_supervision: bool = True
    seed: int = 987
    #: Entry bound for the alignment-feature memo caches.
    cache_entries: int = 16384


class MultiGrainedRanker:
    """Listwise re-ranker with sentence- and phrase-level supervision."""

    def __init__(self, config: Stage2Config | None = None) -> None:
        self.config = config or Stage2Config()
        rng = np.random.default_rng(self.config.seed)
        self._coarse_head = MLP([SENTENCE_FEATURE_DIM, 16, 1], rng)
        self._fine_head = MLP([PHRASE_FEATURE_DIM, 16, 1], rng)
        self._losses: list[float] = []
        self._fitted = False
        # Alignment features are pure functions of (question, text) —
        # weight-independent — so these memos never go stale on refit;
        # they are still bounded and invalidated on fit() for hygiene.
        entries = self.config.cache_entries
        self._sentence_cache = LRUCache("stage2.sentence", entries)
        self._phrase_cache = LRUCache("stage2.phrase", entries)

    def invalidate_caches(self) -> None:
        """Drop every memoized alignment-feature vector."""
        self._sentence_cache.invalidate()
        self._phrase_cache.invalidate()

    # ------------------------------------------------------------------
    # Feature extraction (cached per list during training).

    @staticmethod
    def _list_features(
        ranking: RankingList,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        sentence = np.stack(
            [
                sentence_features(ranking.question, item.surface, item.phrases)
                for item in ranking.items
            ]
        )
        per_phrase = [
            np.stack(
                [
                    phrase_features(ranking.question, phrase)
                    for phrase in (item.phrases or (item.surface,))
                ]
            )
            for item in ranking.items
        ]
        return sentence, per_phrase

    # ------------------------------------------------------------------

    def fit(self, lists: list[RankingList]) -> "MultiGrainedRanker":
        """Train the heads with the paper's multi-scale listwise losses."""
        if not lists:
            raise ValueError("stage-2 ranker needs training lists")
        self.invalidate_caches()
        rng = np.random.default_rng(self.config.seed)
        prepared = []
        for ranking in lists:
            items = ranking.items[: self.config.list_size]
            if len(items) < 2:
                continue
            trimmed = RankingList(question=ranking.question, items=items)
            targets = np.array([item.target for item in items])
            prepared.append((self._list_features(trimmed), targets))

        params = self._coarse_head.parameters()
        if self.config.phrase_supervision:
            params = params + self._fine_head.parameters()
        optimizer = Adam(params, lr=self.config.learning_rate)

        self._losses = []
        for __ in range(self.config.epochs):
            order = rng.permutation(len(prepared))
            epoch_loss, count = 0.0, 0
            for index in order:
                (sentence, per_phrase), targets = prepared[int(index)]
                loss = self._list_loss(sentence, per_phrase, targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                count += 1
            self._losses.append(epoch_loss / max(count, 1))
        self._fitted = True
        return self

    def _list_loss(
        self,
        sentence: np.ndarray,
        per_phrase: list[np.ndarray],
        targets: np.ndarray,
    ) -> Tensor:
        y_global = self._coarse_head(Tensor(sentence)).reshape(-1)
        diff = y_global - Tensor(targets)
        loss = (diff * diff).mean()
        loss = loss + self.config.ndcg_weight * neural_ndcg_loss(
            y_global * 0.1, targets * 0.3, tau=0.5
        )
        if not self.config.phrase_supervision:
            return loss

        local_scores = []
        phrase_score_tensors = []
        for features in per_phrase:
            scores = self._fine_head(Tensor(features)).reshape(-1)
            phrase_score_tensors.append(scores)
            local_scores.append(scores.mean())
        y_local = Tensor.stack(local_scores)
        local_diff = y_local - Tensor(targets)
        loss = loss + (local_diff * local_diff).mean()
        loss = loss + self.config.ndcg_weight * neural_ndcg_loss(
            y_local * 0.1, targets * 0.3, tau=0.5
        )

        # Phrase triplet (hinge): the worst candidate's phrases should score
        # below the best candidate's phrases by a margin.
        order = np.argsort(-targets)
        best, worst = int(order[0]), int(order[-1])
        if targets[best] - targets[worst] >= 2.0:
            positive = phrase_score_tensors[best].mean()
            negative = phrase_score_tensors[worst].mean()
            hinge = (
                negative - positive + self.config.triplet_margin
            ).clip_min(0.0)
            loss = loss + self.config.triplet_weight * hinge
        return loss

    # ------------------------------------------------------------------

    def score(
        self, question: str, surface: str, phrases: tuple[str, ...]
    ) -> float:
        """Inference score ``y_G + y_L`` (Eq. 5)."""
        sentence = sentence_features(question, surface, phrases)
        y_global = float(self._coarse_head(Tensor(sentence)).numpy()[0])
        features = np.stack(
            [phrase_features(question, p) for p in (phrases or (surface,))]
        )
        phrase_scores = self._fine_head(Tensor(features)).numpy().reshape(-1)
        return y_global + float(phrase_scores.mean())

    def score_many(
        self,
        question: str,
        candidates: list[tuple[str, tuple[str, ...]]],
    ) -> list[float]:
        """Batched Eq. 5 scores for all candidates.

        All sentence features are stacked into one coarse-head forward;
        the candidates' distinct phrases form a single fine-head batch
        whose scores are segment-mean-reduced back to per-candidate
        ``y_L``.  Alignment features come from the bounded memo caches
        (they repeat heavily across candidates sharing phrases and
        across repeated questions).  Matches :meth:`score` per item to
        float precision.
        """
        if not candidates:
            return []
        sentence_rows = np.stack(
            [
                self._sentence_cache.get_or(
                    (question, surface, phrases),
                    lambda surface=surface, phrases=phrases: (
                        sentence_features(question, surface, phrases)
                    ),
                )
                for surface, phrases in candidates
            ]
        )
        y_global = self._coarse_head.forward_array(sentence_rows).reshape(-1)

        groups = [phrases or (surface,) for surface, phrases in candidates]
        unique = list(
            dict.fromkeys(phrase for group in groups for phrase in group)
        )
        phrase_rows = np.stack(
            [
                self._phrase_cache.get_or(
                    (question, phrase),
                    lambda phrase=phrase: phrase_features(question, phrase),
                )
                for phrase in unique
            ]
        )
        unique_scores = self._fine_head.forward_array(phrase_rows).reshape(-1)
        position = {phrase: i for i, phrase in enumerate(unique)}
        flat = unique_scores[
            [position[phrase] for group in groups for phrase in group]
        ]
        counts = np.array([len(group) for group in groups])
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        y_local = np.add.reduceat(flat, offsets) / counts
        return [float(score) for score in y_global + y_local]

    def rank(
        self,
        question: str,
        candidates: list[tuple[str, tuple[str, ...]]],
    ) -> list[tuple[int, float]]:
        """Rank (surface, phrases) candidates, best first.

        Batch-first: one coarse-head forward over all candidates plus
        one fine-head forward over their distinct phrases
        (:meth:`score_many`) replaces the per-candidate loop, which is
        kept as :meth:`rank_sequential` for verification.
        """
        fire("stage2.rank")
        scored = list(enumerate(self.score_many(question, candidates)))
        scored.sort(key=lambda item: -item[1])
        return scored

    def rank_sequential(
        self,
        question: str,
        candidates: list[tuple[str, tuple[str, ...]]],
    ) -> list[tuple[int, float]]:
        """Per-item reference ranking (one :meth:`score` per candidate)."""
        scored = [
            (index, self.score(question, surface, phrases))
            for index, (surface, phrases) in enumerate(candidates)
        ]
        scored.sort(key=lambda item: -item[1])
        return scored

    def training_losses(self) -> list[float]:
        """Per-epoch training losses (for convergence checks)."""
        return list(self._losses)
