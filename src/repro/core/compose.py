"""Metadata composition sampling (Section III-B2).

MetaSQL does not condition on arbitrary label subsets: it "selectively
composes these labels by considering combinations observed in the training
data".  The composer indexes every (tag-set, rating) pair seen during
training; at inference it returns the observed combinations compatible with
the classifier's predicted labels, each as a full
:class:`~repro.core.metadata.QueryMetadata` condition.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.metadata import CORRECT, QueryMetadata, extract_metadata
from repro.core.resilience import fire
from repro.data.dataset import Dataset


@dataclass
class ComposerConfig:
    """Knobs for composition enumeration."""

    max_compositions: int = 8
    #: tolerance between an observed combo's rating and a predicted rating.
    rating_window: int = 200


class MetadataComposer:
    """Enumerates metadata conditions compatible with predicted labels."""

    def __init__(self, config: ComposerConfig | None = None) -> None:
        self.config = config or ComposerConfig()
        self._combos: Counter[tuple[frozenset[str], int]] = Counter()
        self._tagsets: Counter[frozenset[str]] = Counter()

    def fit(self, train: Dataset) -> "MetadataComposer":
        """Index every (tag-set, rating) combination seen in training."""
        for example in train.examples:
            meta = extract_metadata(example.sql)
            self._combos[(meta.tags, meta.rating)] += 1
            self._tagsets[meta.tags] += 1
        return self

    @property
    def observed_combinations(self) -> list[tuple[frozenset[str], int]]:
        """All observed combinations, most frequent first."""
        return [combo for combo, __ in self._combos.most_common()]

    def compose(
        self,
        tags: set[str],
        ratings: list[int],
        correctness: str = CORRECT,
    ) -> list[QueryMetadata]:
        """Observed combinations compatible with the predicted labels.

        A combination is compatible when its tag-set is a subset of the
        predicted tags and its rating lies within ``rating_window`` of some
        predicted rating.  Results are ordered by (a) how much of the
        predicted tag evidence they use and (b) training frequency.
        """
        fire("compose")
        predicted = frozenset(tags) | {"project"}
        candidates: list[tuple[float, QueryMetadata]] = []
        for (combo_tags, combo_rating), frequency in self._combos.items():
            if not combo_tags <= predicted:
                continue
            distance = min(
                (abs(combo_rating - r) for r in ratings), default=0
            )
            if ratings and distance > self.config.rating_window:
                continue
            coverage = len(combo_tags) / max(len(predicted), 1)
            score = 2.0 * coverage - distance / 400.0 + 0.1 * frequency**0.25
            candidates.append(
                (
                    score,
                    QueryMetadata(
                        tags=combo_tags,
                        rating=combo_rating,
                        correctness=correctness,
                    ),
                )
            )
        candidates.sort(key=lambda item: (-item[0], item[1].rating))
        seen: set[tuple[frozenset[str], int]] = set()
        compositions: list[QueryMetadata] = []
        for __, meta in candidates:
            key = (meta.tags, meta.rating)
            if key in seen:
                continue
            seen.add(key)
            compositions.append(meta)
            if len(compositions) >= self.config.max_compositions:
                break
        return compositions

    def all_compositions(self, limit: int | None = None) -> list[QueryMetadata]:
        """Every observed combination (the w/o-classifier ablation)."""
        combos = self.observed_combinations
        if limit is not None:
            combos = combos[:limit]
        return [
            QueryMetadata(tags=tags, rating=rating, correctness=CORRECT)
            for tags, rating in combos
        ]
