"""First-stage ranking: dual-tower bi-encoder with cosine similarity.

The paper initialises both towers from a pre-trained sentence transformer
and fine-tunes on (NL, SQL, similarity) triples.  Here each tower is a
trainable projection over TF-IDF features (:mod:`repro.nn.encoder`); SQL
queries enter the SQL tower as their canonical text concatenated with the
rule-based NL description (:mod:`repro.sqlkit.sql2nl`), which bridges the
two modalities the same way sub-word pre-training does for BERT-style
towers.  Trained with MSE on cosine vs the clause-similarity target,
Adam, as in Section IV-A2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.resilience import fire
from repro.nn.autograd import Tensor
from repro.nn.encoder import EncoderTower
from repro.nn.optim import Adam
from repro.nn.text import TextFeaturizer
from repro.perf.cache import MISS, LRUCache
from repro.perf.memo import cached_sql_surface
from repro.schema.schema import Schema
from repro.sqlkit.ast import Query


def sql_surface(query: Query, schema: Schema | None = None) -> str:
    """Text form of a SQL query fed to the SQL tower (memoized)."""
    return cached_sql_surface(query, schema)


@dataclass
class Stage1Config:
    """Training hyper-parameters of the dual-tower ranker."""
    embed_dim: int = 64
    epochs: int = 18
    batch_size: int = 64
    learning_rate: float = 2e-3
    buckets: int = 1024
    seed: int = 4321
    #: Entry bound for each of the ranker's memo caches (features and
    #: per-tower embeddings); refitting invalidates every entry.
    cache_entries: int = 8192


@dataclass(frozen=True)
class RankingTriple:
    """One supervision triple: question, SQL surface text, target in [0,1]."""

    question: str
    sql_text: str
    target: float


class DualTowerRanker:
    """Bi-encoder cosine ranker (Fig. 5a)."""

    def __init__(self, config: Stage1Config | None = None) -> None:
        self.config = config or Stage1Config()
        self._featurizer = TextFeaturizer(buckets=self.config.buckets)
        self._query_tower: EncoderTower | None = None
        self._sql_tower: EncoderTower | None = None
        self._losses: list[float] = []
        entries = self.config.cache_entries
        # TF-IDF vectors are valid for one featurizer fit; embeddings
        # for one (featurizer, tower-weights) pair.  fit() invalidates
        # all three, so stale entries can never leak across refits.
        self._feature_cache = LRUCache("stage1.features", entries)
        self._query_embed_cache = LRUCache("stage1.query_embed", entries)
        self._sql_embed_cache = LRUCache("stage1.sql_embed", entries)

    def invalidate_caches(self) -> None:
        """Drop every memoized feature vector and tower embedding."""
        self._feature_cache.invalidate()
        self._query_embed_cache.invalidate()
        self._sql_embed_cache.invalidate()

    # ------------------------------------------------------------------

    def fit(self, triples: list[RankingTriple]) -> "DualTowerRanker":
        """Train both towers with MSE on cosine vs the similarity target."""
        if not triples:
            raise ValueError("stage-1 ranker needs training triples")
        self.invalidate_caches()
        rng = np.random.default_rng(self.config.seed)
        corpus = [t.question for t in triples] + [t.sql_text for t in triples]
        self._featurizer.fit(corpus)
        self._query_tower = EncoderTower(
            self._featurizer, self.config.embed_dim, rng, hidden_dim=128
        )
        self._sql_tower = EncoderTower(
            self._featurizer, self.config.embed_dim, rng, hidden_dim=128
        )
        question_features = self._featurizer.transform_many(
            [t.question for t in triples]
        )
        sql_features = self._featurizer.transform_many(
            [t.sql_text for t in triples]
        )
        targets = np.array([t.target for t in triples])

        params = self._query_tower.parameters() + self._sql_tower.parameters()
        optimizer = Adam(params, lr=self.config.learning_rate)
        n = len(triples)
        self._losses = []
        for __ in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, self.config.batch_size):
                index = order[start : start + self.config.batch_size]
                q_emb = self._query_tower.encode_features(
                    question_features[index]
                )
                s_emb = self._sql_tower.encode_features(sql_features[index])
                cosines = _batch_cosine(q_emb, s_emb)
                diff = cosines - Tensor(targets[index])
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            self._losses.append(epoch_loss / max(batches, 1))
        # Entries stored while weights were still moving are invalid.
        self.invalidate_caches()
        return self

    # ------------------------------------------------------------------

    def encode_question(self, question: str) -> np.ndarray:
        """Embed a question with the NL tower."""
        if self._query_tower is None:
            raise RuntimeError("stage-1 ranker is not fitted")
        return self._query_tower.encode(question).numpy()

    def encode_sql(self, sql_text: str) -> np.ndarray:
        """Embed a SQL surface text with the SQL tower."""
        if self._sql_tower is None:
            raise RuntimeError("stage-1 ranker is not fitted")
        return self._sql_tower.encode(sql_text).numpy()

    def similarity(self, question: str, sql_text: str) -> float:
        """Cosine similarity between the two tower embeddings (Eq. 1)."""
        q = self.encode_question(question)
        s = self.encode_sql(sql_text)
        denominator = np.linalg.norm(q) * np.linalg.norm(s)
        if denominator == 0:
            return 0.0
        return float(q @ s / denominator)

    def _embed_batch(
        self, tower: EncoderTower, cache: LRUCache, texts: list[str]
    ) -> np.ndarray:
        """Embeddings for *texts*: one batched forward over cache misses.

        Duplicate texts are featurized and embedded once; hits come from
        the bounded embedding cache (invalidated on refit).  With
        caching ambiently disabled every lookup misses, so the compute
        path — and therefore every result — is identical.
        """
        unique = list(dict.fromkeys(texts))
        found: dict[str, np.ndarray] = {}
        missing: list[str] = []
        for text in unique:
            value = cache.lookup(text)
            if value is MISS:
                missing.append(text)
            else:
                found[text] = value
        if missing:
            features = np.stack(
                [
                    self._feature_cache.get_or(
                        text,
                        lambda text=text: self._featurizer.transform(text),
                    )
                    for text in missing
                ]
            )
            embedded = tower.embed_array(features)
            for row, text in enumerate(missing):
                value = embedded[row].copy()
                cache.put(text, value)
                found[text] = value
        return np.stack([found[text] for text in texts])

    def warm_questions(self, questions: list[str]) -> None:
        """Prime the query-tower embedding cache with one batched pass."""
        if self._query_tower is None or not questions:
            return
        self._embed_batch(self._query_tower, self._query_embed_cache, questions)

    def rank(
        self, question: str, sql_texts: list[str], top_k: int = 10
    ) -> list[tuple[int, float]]:
        """Indices of the top-k SQL texts with their cosine scores.

        Batch-first: all cache-missing texts are featurized and pushed
        through the SQL tower in one matrix forward pass, then scored
        against the question embedding with a single matvec.  Matches
        :meth:`rank_sequential` (the per-item reference) to float
        precision.
        """
        fire("stage1.rank")
        if not sql_texts:
            return []
        if self._query_tower is None or self._sql_tower is None:
            raise RuntimeError("stage-1 ranker is not fitted")
        q = self._embed_batch(
            self._query_tower, self._query_embed_cache, [question]
        )[0]
        sql_embeddings = self._embed_batch(
            self._sql_tower, self._sql_embed_cache, sql_texts
        )
        q_norm = float(np.linalg.norm(q))
        sql_norms = np.linalg.norm(sql_embeddings, axis=1)
        denominators = q_norm * sql_norms
        dots = sql_embeddings @ q
        safe = np.where(denominators == 0.0, 1.0, denominators)
        scores = np.where(denominators == 0.0, 0.0, dots / safe)
        scored = [(index, float(score)) for index, score in enumerate(scores)]
        scored.sort(key=lambda item: -item[1])
        return scored[:top_k]

    def rank_sequential(
        self, question: str, sql_texts: list[str], top_k: int = 10
    ) -> list[tuple[int, float]]:
        """Per-item reference ranking (one forward pass per candidate).

        Kept as the uncached, unbatched baseline that :meth:`rank` is
        verified against (tests) and benchmarked against
        (``benchmarks/bench_pipeline.py``).
        """
        if not sql_texts:
            return []
        q = self.encode_question(question)
        q_norm = np.linalg.norm(q)
        scored = []
        for index, text in enumerate(sql_texts):
            s = self.encode_sql(text)
            denominator = q_norm * np.linalg.norm(s)
            score = float(q @ s / denominator) if denominator else 0.0
            scored.append((index, score))
        scored.sort(key=lambda item: -item[1])
        return scored[:top_k]

    def training_losses(self) -> list[float]:
        """Per-epoch training losses (for convergence checks)."""
        return list(self._losses)


def _batch_cosine(a: Tensor, b: Tensor) -> Tensor:
    dot = (a * b).sum(axis=1)
    norms = a.norm(axis=1) * b.norm(axis=1)
    return dot / norms
