"""Metadata-conditioned candidate generation (Section III-B2).

For each sampled metadata composition the base translation model decodes a
small beam; the union (deduplicated, value-grounded) is the candidate set
handed to the ranking pipeline.  Conditioning on different compositions is
what produces *structurally* diverse candidates — unlike plain beam search,
whose outputs are near-duplicates (Fig. 1 of the paper).

Before a candidate enters the set it passes the **semantic-lint gate**
(:mod:`repro.sqlkit.analyze`): a candidate that is statically invalid
against the schema — unknown columns, aggregate misuse, arity mismatches
— can never be the correct translation, so spending ranking budget on it
is pure waste.  Error-severity diagnostics prune the candidate (counted
per diagnostic code in the report and the metrics registry); warnings are
attached to the surviving :class:`GeneratedCandidate` for downstream
consumers.  An analyzer crash on one candidate is isolated: it is
recorded as a :class:`~repro.core.resilience.FaultRecord` and the
candidate is kept (the gate fails open, never killing the set).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.metadata import QueryMetadata
from repro.core.resilience import TranslationReport, fire
from repro.obs.metrics import get_registry
from repro.obs.trace import current_tracer
from repro.core.values import ground_values
from repro.models.base import Candidate, TranslationModel
from repro.schema.database import Database
from repro.sqlkit.analyze import SemanticAnalyzer
from repro.sqlkit.ast import Query
from repro.sqlkit.diagnostics import Diagnostic, error_codes
from repro.sqlkit.printer import to_sql


@dataclass(frozen=True)
class GeneratedCandidate:
    """A candidate SQL query and the metadata condition that produced it."""

    query: Query
    score: float
    metadata: QueryMetadata | None
    #: Warning-severity analyzer findings for the candidate (annotation
    #: only; error-severity findings prune before a candidate is built).
    diagnostics: tuple[Diagnostic, ...] = ()
    #: Canonical SQL text, rendered once by the generator's dedupe and
    #: reused as the memo key for downstream surface/phrase renderings.
    sql_text: str = ""


@dataclass
class GeneratorConfig:
    """Candidate-generation knobs (beam sizes, caps, grounding, lint)."""
    beam_per_condition: int = 2
    include_unconditioned: bool = True
    unconditioned_beam: int = 3
    max_candidates: int = 24
    ground_placeholder_values: bool = True
    #: Run the schema-aware semantic analyzer over every candidate.
    lint_candidates: bool = True
    #: Prune candidates with error-severity diagnostics (False keeps
    #: them, annotated, so callers can inspect what *would* be pruned).
    lint_prune_errors: bool = True


def _record_lint_rejection(codes: list[str]) -> None:
    """Count one pruned candidate in the ambient metrics registry."""
    counter = get_registry().counter(
        "metasql_candidates_lint_rejected_total",
        "Candidates pruned by the semantic-lint gate, by diagnostic code.",
        labelnames=("code",),
    )
    for code in codes:
        counter.labels(code=code).inc()


class CandidateGenerator:
    """Runs the base model once per metadata composition."""

    def __init__(
        self, model: TranslationModel, config: GeneratorConfig | None = None
    ) -> None:
        self.model = model
        self.config = config or GeneratorConfig()

    def generate(
        self,
        question: str,
        db: Database,
        compositions: list[QueryMetadata],
        report: TranslationReport | None = None,
    ) -> list[GeneratedCandidate]:
        """Candidate set for *question* under the given compositions.

        Faults are isolated per unit of work: a metadata condition whose
        decode raises is skipped (its beam is lost, the rest survive), and
        a single candidate whose value grounding or rendering raises is
        dropped.  Each isolation is recorded in *report* when one is given.

        When an ambient tracer is installed (the pipeline installs one
        per translation) each condition decode gets a
        ``generate.condition`` sub-span and each candidate's grounding a
        ``ground`` sub-span, so a slow condition or a pathological
        candidate is visible in the trace tree.
        """
        fire("generator.generate")
        tracer = current_tracer()
        config = self.config
        collected: list[GeneratedCandidate] = []
        seen: set[str] = set()
        analyzer = (
            SemanticAnalyzer(db.schema) if config.lint_candidates else None
        )

        def lint(query: Query) -> tuple[bool, tuple[Diagnostic, ...]]:
            """Gate one candidate: (keep, warnings-to-annotate)."""
            if analyzer is None:
                return True, ()
            try:
                diagnostics = analyzer.analyze(query)
            except Exception as exc:  # repolint: allow[broad-except] — gate fails open, candidate kept
                if report is not None:
                    report.record_exception(
                        "lint", exc, candidate=len(collected), fallback="keep"
                    )
                return True, ()
            codes = error_codes(diagnostics)
            if codes and config.lint_prune_errors:
                distinct = sorted(set(codes))
                _record_lint_rejection(distinct)
                if report is not None:
                    report.record_lint_rejection(distinct)
                return False, ()
            return True, tuple(diagnostics)

        def add(candidate: Candidate, metadata: QueryMetadata | None) -> None:
            query = candidate.query
            if config.ground_placeholder_values:
                query = ground_values(query, question, db)
            key = to_sql(query)
            if key in seen:
                return
            seen.add(key)
            keep, diagnostics = lint(query)
            if not keep:
                return
            collected.append(
                GeneratedCandidate(
                    query=query,
                    score=candidate.score,
                    metadata=metadata,
                    diagnostics=diagnostics,
                    sql_text=key,
                )
            )

        def add_isolated(
            candidate: Candidate, metadata: QueryMetadata | None
        ) -> None:
            try:
                with (
                    tracer.span("ground", candidate=len(collected))
                    if tracer is not None
                    else nullcontext()
                ):
                    add(candidate, metadata)
            except Exception as exc:  # repolint: allow[broad-except] — candidate isolation
                if report is not None:
                    report.record_exception(
                        "ground",
                        exc,
                        candidate=len(collected),
                        fallback="skip",
                    )

        for condition_index, metadata in enumerate(compositions):
            with (
                tracer.span("generate.condition", condition=condition_index)
                if tracer is not None
                else nullcontext()
            ) as span:
                try:
                    beam = self.model.translate(
                        question,
                        db,
                        metadata=metadata,
                        beam_size=config.beam_per_condition,
                    )
                except Exception as exc:  # repolint: allow[broad-except] — isolation
                    if report is not None:
                        report.record_exception(
                            "generate",
                            exc,
                            candidate=condition_index,
                            fallback="skip",
                        )
                    continue
                before = len(collected)
                for candidate in beam:
                    add_isolated(candidate, metadata)
                if span is not None:
                    span.attributes["added"] = len(collected) - before
            if len(collected) >= config.max_candidates:
                break

        if config.include_unconditioned and len(collected) < config.max_candidates:
            with (
                tracer.span("generate.unconditioned")
                if tracer is not None
                else nullcontext()
            ):
                try:
                    beam = self.model.translate(
                        question, db, beam_size=config.unconditioned_beam
                    )
                except Exception as exc:  # repolint: allow[broad-except] — isolation
                    beam = []
                    if report is not None:
                        report.record_exception(
                            "generate", exc, candidate=None, fallback="skip"
                        )
                for candidate in beam:
                    add_isolated(candidate, None)

        return collected[: config.max_candidates]
