"""Fault isolation and graceful degradation for the generate-then-rank
pipeline.

MetaSQL's value proposition is that a ranked *set* of candidates beats a
single decode — which only holds if one bad candidate (or one flaky stage)
cannot take the whole translation down.  This module provides the three
pieces the pipeline threads through every stage:

- :class:`FaultInjector` — a failpoint registry with named injection
  sites (:data:`FAILPOINTS`).  Each guarded function calls
  :func:`fire` at entry; tests arm a site to make it raise, which is how
  the degradation chain is exercised deterministically.  With nothing
  armed, ``fire`` is a single truthiness check on an empty dict.
- :class:`DegradationPolicy` — knobs governing the fallback chain:
  stage-2 failure falls back to stage-1 ordering, stage-1 failure to
  generation order, classifier failure to the composer's observed
  compositions, with bounded deterministic retries for transient faults.
- :class:`TranslationReport` / :class:`FaultRecord` — structured
  observability attached to pipeline output: which stages degraded, which
  candidates were skipped, and why.

The module is deliberately dependency-light (stdlib + the error taxonomy
in :mod:`repro.sqlkit.errors`) so low-level modules such as
:mod:`repro.schema.executor` can import it without layering cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.sqlkit.errors import PipelineError, StageError

#: Named injection sites, one per guarded pipeline stage.  ``fire(site)``
#: is called at the entry of the corresponding function.
FAILPOINTS: tuple[str, ...] = (
    "classifier.predict",
    "compose",
    "generator.generate",
    "values.ground_values",
    "stage1.rank",
    "stage2.rank",
    "executor.execute",
)


class InjectedFault(PipelineError):
    """The fault raised by an armed failpoint (test-controlled)."""

    def __init__(self, site: str, transient: bool = False) -> None:
        kind = "transient" if transient else "fatal"
        super().__init__(f"injected {kind} fault at {site!r}")
        self.site = site
        self.transient = transient


@dataclass
class _ArmedSite:
    """One armed failpoint: what to raise and how many times."""

    site: str
    exc: Callable[[], BaseException] | BaseException | None
    times: int | None  # None = every call
    transient: bool
    fired: int = 0

    def trigger(self) -> None:
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        if self.exc is not None:
            # Accept a factory (class or zero-arg callable) or a ready
            # exception instance — instances are not callable.
            raise self.exc() if callable(self.exc) else self.exc
        raise InjectedFault(self.site, transient=self.transient)


class FaultInjector:
    """Registry of named failpoints, controllable from tests.

    >>> with FAULTS.inject("stage1.rank"):
    ...     pipeline.translate(question, db)   # stage-1 fault -> fallback
    """

    def __init__(self, sites: tuple[str, ...] = FAILPOINTS) -> None:
        self._sites = set(sites)
        self._armed: dict[str, _ArmedSite] = {}

    @property
    def sites(self) -> tuple[str, ...]:
        """All registered failpoint names."""
        return tuple(sorted(self._sites))

    def register(self, site: str) -> None:
        """Add a new failpoint name (for downstream extensions)."""
        self._sites.add(site)

    def _check(self, site: str) -> None:
        if site not in self._sites:
            known = ", ".join(sorted(self._sites))
            raise ValueError(f"unknown failpoint {site!r} (known: {known})")

    def arm(
        self,
        site: str,
        exc: Callable[[], BaseException] | BaseException | None = None,
        times: int | None = 1,
        transient: bool = False,
    ) -> None:
        """Make *site* raise on its next *times* firings (None = always).

        *exc* may be an exception class, a zero-arg factory, or a ready
        instance; by default an :class:`InjectedFault` is raised.
        """
        self._check(site)
        self._armed[site] = _ArmedSite(
            site=site, exc=exc, times=times, transient=transient
        )

    def disarm(self, site: str | None = None) -> None:
        """Disarm one site, or every site when *site* is None."""
        if site is None:
            self._armed.clear()
        else:
            self._armed.pop(site, None)

    def fired(self, site: str) -> int:
        """How many times the armed plan at *site* has raised."""
        plan = self._armed.get(site)
        return plan.fired if plan is not None else 0

    def fire(self, site: str) -> None:
        """Hook called at a failpoint; raises only when the site is armed."""
        if not self._armed:
            return
        plan = self._armed.get(site)
        if plan is not None:
            plan.trigger()

    @contextmanager
    def inject(
        self,
        site: str,
        exc: Callable[[], BaseException] | BaseException | None = None,
        times: int | None = 1,
        transient: bool = False,
    ) -> Iterator["FaultInjector"]:
        """Context manager: arm *site* on entry, disarm it on exit."""
        self.arm(site, exc=exc, times=times, transient=transient)
        try:
            yield self
        finally:
            self.disarm(site)


#: Process-wide default injector; guarded modules call ``fire`` on it.
FAULTS = FaultInjector()


def fire(site: str) -> None:
    """Fire the process-wide injector at *site* (no-op unless armed)."""
    FAULTS.fire(site)


# ----------------------------------------------------------------------
# Degradation policy and observability.


@dataclass
class DegradationPolicy:
    """Governs the graceful-degradation chain of a pipeline.

    The default policy never fails closed: every stage has a fallback and
    transient faults get ``max_retries`` bounded deterministic retries.
    Setting a flag to False makes that stage's failure terminal for the
    translation (an empty result, still with a report — never an
    unhandled exception out of ``translate``).
    """

    max_retries: int = 2
    classifier_fallback: bool = True  # -> composer.all_compositions
    stage1_fallback: bool = True  # -> generation order
    stage2_fallback: bool = True  # -> stage-1 ordering
    isolate_candidates: bool = True  # skip, never abort, on candidate errors


@dataclass(frozen=True)
class FaultRecord:
    """One recorded fault: where it happened and how it was absorbed."""

    stage: str  # logical stage: classify/compose/generate/ground/...
    error_type: str  # exception class name
    error: str  # exception message
    site: str | None = None  # failpoint name when known
    candidate: int | None = None  # candidate index for isolated faults
    retries: int = 0  # retries consumed before this record
    fallback: str | None = None  # degradation applied ("retry" = recovered)


@dataclass
class TranslationReport:
    """Structured account of one translation's faults and degradations."""

    question: str = ""
    faults: list[FaultRecord] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any fallback other than a clean retry was applied."""
        return any(record.fallback != "retry" for record in self.faults)

    @property
    def skipped_candidates(self) -> int:
        """Number of per-candidate faults that were isolated and skipped."""
        return sum(1 for r in self.faults if r.candidate is not None)

    def stage_faults(self, stage: str) -> list[FaultRecord]:
        """Fault records for one logical stage."""
        return [record for record in self.faults if record.stage == stage]

    def fallbacks(self) -> list[str]:
        """The fallback labels applied, in order."""
        return [r.fallback for r in self.faults if r.fallback is not None]

    def record(self, record: FaultRecord) -> None:
        self.faults.append(record)

    def record_exception(
        self,
        stage: str,
        exc: BaseException,
        site: str | None = None,
        candidate: int | None = None,
        retries: int = 0,
        fallback: str | None = None,
    ) -> FaultRecord:
        """Append a :class:`FaultRecord` built from a caught exception."""
        record = FaultRecord(
            stage=stage,
            error_type=type(exc).__name__,
            error=str(exc),
            site=getattr(exc, "site", site),
            candidate=candidate,
            retries=retries,
            fallback=fallback,
        )
        self.record(record)
        return record

    def summary(self) -> str:
        """One-line human summary (for eval output and logs)."""
        if not self.faults:
            return "ok"
        parts = []
        for record in self.faults:
            where = record.stage
            if record.candidate is not None:
                where += f"[{record.candidate}]"
            label = record.fallback or "fault"
            parts.append(f"{where}:{label}")
        return "degraded(" + ", ".join(parts) + ")"


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* is retryable under a :class:`DegradationPolicy`."""
    return bool(getattr(exc, "transient", False))


def guarded_call(
    stage: str,
    fn: Callable[[], object],
    policy: DegradationPolicy,
    report: TranslationReport,
    fallback: str | None = None,
    site: str | None = None,
) -> tuple[bool, object]:
    """Run *fn* with bounded retries for transient faults.

    Returns ``(True, value)`` on success — recording a ``retry`` record if
    transient faults were absorbed on the way — or ``(False, None)`` after
    recording the terminal fault with the *fallback* label the caller is
    about to apply.  Only :class:`Exception` is absorbed; interrupts and
    system exits propagate.
    """
    last_exc: BaseException | None = None
    for attempt in range(policy.max_retries + 1):
        try:
            value = fn()
        except Exception as exc:  # noqa: BLE001 — isolation boundary
            last_exc = exc
            if is_transient(exc) and attempt < policy.max_retries:
                continue
            report.record_exception(
                stage, exc, site=site, retries=attempt, fallback=fallback
            )
            return False, None
        if attempt and last_exc is not None:
            report.record_exception(
                stage, last_exc, site=site, retries=attempt, fallback="retry"
            )
        return True, value
    # Unreachable: the loop always returns.
    raise StageError(stage, "retry loop exited without a result")
