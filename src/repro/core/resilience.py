"""Fault isolation and graceful degradation for the generate-then-rank
pipeline.

MetaSQL's value proposition is that a ranked *set* of candidates beats a
single decode — which only holds if one bad candidate (or one flaky stage)
cannot take the whole translation down.  This module provides the three
pieces the pipeline threads through every stage:

- :class:`FaultInjector` — a failpoint registry with named injection
  sites (:data:`FAILPOINTS`).  Each guarded function calls
  :func:`fire` at entry; tests arm a site to make it raise, which is how
  the degradation chain is exercised deterministically.  With nothing
  armed, ``fire`` is a single truthiness check on an empty dict.
- :class:`DegradationPolicy` — knobs governing the fallback chain:
  stage-2 failure falls back to stage-1 ordering, stage-1 failure to
  generation order, classifier failure to the composer's observed
  compositions, with bounded deterministic retries for transient faults.
- :class:`TranslationReport` / :class:`FaultRecord` — structured
  observability attached to pipeline output: which stages degraded, which
  candidates were skipped, and why.

The module is deliberately dependency-light (stdlib + the error taxonomy
in :mod:`repro.sqlkit.errors`) so low-level modules such as
:mod:`repro.schema.executor` can import it without layering cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Iterator

from repro.devtools.lockdep import new_lock
from repro.sqlkit.errors import DeadlineExceeded, PipelineError, StageError

#: Named injection sites, one per guarded pipeline stage.  ``fire(site)``
#: is called at the entry of the corresponding function.
FAILPOINTS: tuple[str, ...] = (
    "classifier.predict",
    "compose",
    "generator.generate",
    "values.ground_values",
    "stage1.rank",
    "stage2.rank",
    "executor.execute",
    "verify.execute",
    "repair.regenerate",
    "persist.save",
    "persist.finalize",
    "serve.handle",
    "router.swap",
)


class InjectedFault(PipelineError):
    """The fault raised by an armed failpoint (test-controlled)."""

    def __init__(self, site: str, transient: bool = False) -> None:
        kind = "transient" if transient else "fatal"
        super().__init__(f"injected {kind} fault at {site!r}")
        self.site = site
        self.transient = transient


@dataclass
class _ArmedSite:
    """One armed failpoint: what to raise and how many times."""

    site: str
    exc: Callable[[], BaseException] | BaseException | None
    times: int | None  # None = every call
    transient: bool
    fired: int = 0

    def trigger(self) -> None:
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        if self.exc is not None:
            # Accept a factory (class or zero-arg callable) or a ready
            # exception instance — instances are not callable.
            raise self.exc() if callable(self.exc) else self.exc
        raise InjectedFault(self.site, transient=self.transient)


class FaultInjector:
    """Registry of named failpoints, controllable from tests.

    >>> with FAULTS.inject("stage1.rank"):
    ...     pipeline.translate(question, db)   # stage-1 fault -> fallback

    ``on_trigger`` is an instrumentation callback invoked with the site
    name every time an armed site actually raises (the observability
    layer wires it to a per-failpoint counter); observer errors are
    swallowed so instrumentation can never mask the injected fault.
    """

    def __init__(self, sites: tuple[str, ...] = FAILPOINTS) -> None:
        self._sites = set(sites)
        self._armed: dict[str, _ArmedSite] = {}
        self.on_trigger: Callable[[str], None] | None = None

    @property
    def sites(self) -> tuple[str, ...]:
        """All registered failpoint names."""
        return tuple(sorted(self._sites))

    def register(self, site: str) -> None:
        """Add a new failpoint name (for downstream extensions)."""
        self._sites.add(site)

    def _check(self, site: str) -> None:
        if site not in self._sites:
            known = ", ".join(sorted(self._sites))
            raise ValueError(f"unknown failpoint {site!r} (known: {known})")

    def arm(
        self,
        site: str,
        exc: Callable[[], BaseException] | BaseException | None = None,
        times: int | None = 1,
        transient: bool = False,
    ) -> None:
        """Make *site* raise on its next *times* firings (None = always).

        *exc* may be an exception class, a zero-arg factory, or a ready
        instance; by default an :class:`InjectedFault` is raised.
        """
        self._check(site)
        self._armed[site] = _ArmedSite(
            site=site, exc=exc, times=times, transient=transient
        )

    def disarm(self, site: str | None = None) -> None:
        """Disarm one site, or every site when *site* is None."""
        if site is None:
            self._armed.clear()
        else:
            self._armed.pop(site, None)

    def fired(self, site: str) -> int:
        """How many times the armed plan at *site* has raised."""
        plan = self._armed.get(site)
        return plan.fired if plan is not None else 0

    def fire(self, site: str) -> None:
        """Hook called at a failpoint; raises only when the site is armed."""
        if not self._armed:
            return
        plan = self._armed.get(site)
        if plan is None:
            return
        try:
            plan.trigger()
        except BaseException:  # repolint: allow[broad-except] — notify observer, re-raise
            if self.on_trigger is not None:
                try:
                    self.on_trigger(site)
                except Exception:  # repolint: allow[broad-except] — observers never mask
                    pass
            raise

    @contextmanager
    def inject(
        self,
        site: str,
        exc: Callable[[], BaseException] | BaseException | None = None,
        times: int | None = 1,
        transient: bool = False,
    ) -> Iterator["FaultInjector"]:
        """Context manager: arm *site* on entry, disarm it on exit."""
        self.arm(site, exc=exc, times=times, transient=transient)
        try:
            yield self
        finally:
            self.disarm(site)


#: Process-wide default injector; guarded modules call ``fire`` on it.
FAULTS = FaultInjector()


def fire(site: str) -> None:
    """Fire the process-wide injector at *site* (no-op unless armed)."""
    FAULTS.fire(site)


# ----------------------------------------------------------------------
# Deadlines: cooperative per-request time budgets.


class Deadline:
    """A per-request time budget, checked cooperatively between stages.

    The pipeline never pre-empts a running stage; instead it consults the
    deadline at the stage boundaries (classify -> compose -> generate ->
    stage-1 -> stage-2) and, once expired, degrades to the best answer
    produced so far.  The clock is injectable so tests can drive expiry
    deterministically; production uses :func:`time.monotonic`.
    """

    __slots__ = ("budget", "_clock", "_started")

    def __init__(
        self,
        budget: float,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.budget = float(budget)
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()

    def elapsed(self) -> float:
        """Seconds spent since the deadline was created."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is exhausted."""
        if self.expired():
            raise DeadlineExceeded(stage, self.budget, self.elapsed())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self.budget:.3f}, "
            f"remaining={self.remaining():.3f})"
        )


#: Ambient deadline, mirroring the executor's ambient ExecutionBudget:
#: the serving layer installs it once per request and every pipeline
#: entered under the scope observes it without plumbing changes.
_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "metasql_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient :class:`Deadline` for this context, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install *deadline* as the ambient deadline for the ``with`` body."""
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


# ----------------------------------------------------------------------
# Circuit breakers: skip persistently failing stages until a probe
# succeeds.


class CircuitBreaker:
    """Closed / open / half-open breaker for one pipeline stage.

    - **closed** — calls pass through; ``threshold`` *consecutive*
      terminal faults (transient faults absorbed by retry count as
      recoveries, per the PR-1 taxonomy) trip the breaker open.
    - **open** — calls are refused (``allow() is False``) so the stage's
      existing degradation fallback applies without paying for the call;
      after ``cooldown`` seconds the next ``allow()`` admits one probe.
    - **half-open** — exactly one probe is in flight; its success closes
      the breaker, its failure re-opens it for another cooldown.

    Thread-safe (the serving layer shares one pipeline across workers)
    and clock-injectable for deterministic tests.  State transitions are
    reported to the optional ``on_transition(stage, old, new)`` callback
    — the observability layer's hook for breaker-flap counters — invoked
    *outside* the breaker lock so observers can safely touch shared
    registries; observer errors are swallowed.
    """

    def __init__(
        self,
        stage: str,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("breaker threshold must be positive")
        self.stage = stage
        self.threshold = threshold
        self.cooldown = cooldown
        self.on_transition = on_transition
        self._clock = clock if clock is not None else time.monotonic
        self._lock = new_lock("CircuitBreaker._lock")
        self._state = "closed"
        self._failures = 0  # consecutive terminal faults while closed
        self._opened_at = 0.0
        self._probing = False
        self._opened_total = 0  # times tripped, for health snapshots
        self._pending: list[tuple[str, str]] = []  # transitions to notify

    @property
    def state(self) -> str:
        """Current state, applying the open -> half-open transition."""
        with self._lock:
            state = self._state_locked()
        self._notify()
        return state

    def _set_state_locked(self, new: str) -> None:
        if new != self._state:
            self._pending.append((self._state, new))
            self._state = new

    def _notify(self) -> None:
        """Flush queued transitions to the observer, outside the lock."""
        if self.on_transition is None:
            return
        with self._lock:
            pending, self._pending = self._pending, []
        for old, new in pending:
            try:
                self.on_transition(self.stage, old, new)
            except Exception:  # repolint: allow[broad-except] — observers never break us
                pass

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._set_state_locked("half-open")
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """Whether the next call may proceed (admits half-open probes)."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                admitted = True
            elif state == "half-open" and not self._probing:
                self._probing = True
                admitted = True
            else:
                admitted = False
        self._notify()
        return admitted

    def record_success(self) -> None:
        """A guarded call (or probe) succeeded: close and reset."""
        with self._lock:
            self._set_state_locked("closed")
            self._failures = 0
            self._probing = False
        self._notify()

    def record_failure(self) -> None:
        """A guarded call failed terminally: count, maybe trip open."""
        with self._lock:
            state = self._state_locked()
            if state == "half-open":
                self._trip_locked()
            else:
                self._failures += 1
                if self._failures >= self.threshold:
                    self._trip_locked()
        self._notify()

    def _trip_locked(self) -> None:
        self._set_state_locked("open")
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        self._opened_total += 1

    def reset(self) -> None:
        """Force the breaker closed (operator override)."""
        self.record_success()

    def snapshot(self) -> dict:
        """State for health endpoints: no locks held by the caller."""
        with self._lock:
            snapshot = {
                "stage": self.stage,
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "times_opened": self._opened_total,
            }
        self._notify()
        return snapshot


class BreakerBoard:
    """One :class:`CircuitBreaker` per guarded pipeline stage."""

    #: The inference stages a pipeline guards with breakers.
    STAGES: tuple[str, ...] = (
        "classify",
        "compose",
        "generate",
        "stage1",
        "stage2",
        "verify",
        "repair",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] | None = None,
        stages: tuple[str, ...] | None = None,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self._breakers = {
            stage: CircuitBreaker(
                stage,
                threshold=threshold,
                cooldown=cooldown,
                clock=clock,
                on_transition=on_transition,
            )
            for stage in (stages or self.STAGES)
        }

    def get(self, stage: str) -> CircuitBreaker | None:
        return self._breakers.get(stage)

    def __getitem__(self, stage: str) -> CircuitBreaker:
        return self._breakers[stage]

    def reset(self) -> None:
        for breaker in self._breakers.values():
            breaker.reset()

    def states(self) -> dict[str, str]:
        return {s: b.state for s, b in self._breakers.items()}

    def any_open(self) -> bool:
        """Whether any stage's breaker is currently open.

        The tenancy layer's readiness check: a tenant whose board has an
        open breaker is degraded (some stage is being skipped), which
        the service surfaces through ``HealthSnapshot.ready``.
        """
        return any(state == "open" for state in self.states().values())

    def snapshot(self) -> dict[str, dict]:
        return {s: b.snapshot() for s, b in self._breakers.items()}


# ----------------------------------------------------------------------
# Degradation policy and observability.


@dataclass
class DegradationPolicy:
    """Governs the graceful-degradation chain of a pipeline.

    The default policy never fails closed: every stage has a fallback and
    transient faults get ``max_retries`` bounded deterministic retries.
    Setting a flag to False makes that stage's failure terminal for the
    translation (an empty result, still with a report — never an
    unhandled exception out of ``translate``).
    """

    max_retries: int = 2
    classifier_fallback: bool = True  # -> composer.all_compositions
    stage1_fallback: bool = True  # -> generation order
    stage2_fallback: bool = True  # -> stage-1 ordering
    isolate_candidates: bool = True  # skip, never abort, on candidate errors
    #: Consecutive terminal faults before a stage's breaker opens
    #: (0 disables breakers entirely).
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 30.0
    #: Injectable clock for the breakers (tests); None -> time.monotonic.
    breaker_clock: Callable[[], float] | None = field(
        default=None, repr=False, compare=False
    )

    def make_breakers(
        self,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> BreakerBoard | None:
        """The per-stage breaker board this policy prescribes, if any."""
        if self.breaker_threshold <= 0:
            return None
        return BreakerBoard(
            threshold=self.breaker_threshold,
            cooldown=self.breaker_cooldown,
            clock=self.breaker_clock,
            on_transition=on_transition,
        )


@dataclass(frozen=True)
class FaultRecord:
    """One recorded fault: where it happened and how it was absorbed."""

    stage: str  # logical stage: classify/compose/generate/ground/...
    error_type: str  # exception class name
    error: str  # exception message
    site: str | None = None  # failpoint name when known
    candidate: int | None = None  # candidate index for isolated faults
    retries: int = 0  # retries consumed before this record
    fallback: str | None = None  # degradation applied ("retry" = recovered)
    transient: bool = False  # taxonomy class: retryable at a higher level

    def as_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRecord":
        return cls(**{f.name: data.get(f.name) for f in fields(cls)})


@dataclass
class TranslationReport:
    """Structured account of one translation's faults and degradations."""

    question: str = ""
    faults: list[FaultRecord] = field(default_factory=list)
    #: Candidates pruned by the semantic-lint gate (statically invalid).
    lint_rejected: int = 0
    #: Lint-rejection counts by diagnostic code (``SQL002`` -> count).
    lint_codes: dict[str, int] = field(default_factory=dict)
    #: Candidates the execution-guided verify stage demoted (or pruned)
    #: because they errored, blew the budget, or returned empty results.
    verify_demoted: int = 0
    #: Per-outcome tally from the verify stage (``ok``/``empty``/``error``
    #: /``budget``/``skipped`` -> count of top-k candidates).
    verify_outcomes: dict[str, int] = field(default_factory=dict)
    #: Repair-loop attempts consumed for this translation.
    repair_attempts: int = 0
    #: Whether a repair attempt produced a verified-passing top-1.
    repair_succeeded: bool = False
    #: The request's time budget in seconds, when one was attached.
    deadline_budget: float | None = None
    #: The stage boundary at which expiry was observed, when it was.
    deadline_stage: str | None = None
    #: JSON span tree for the translation (set by the pipeline; the root
    #: is the ``translate`` span, its children the per-stage spans).
    trace: dict | None = None

    @property
    def deadline_expired(self) -> bool:
        """True when the translation was cut short by its deadline."""
        return self.deadline_stage is not None

    @property
    def degraded(self) -> bool:
        """True when any fallback other than a clean retry was applied."""
        return any(record.fallback != "retry" for record in self.faults)

    @property
    def skipped_candidates(self) -> int:
        """Number of per-candidate faults that were isolated and skipped."""
        return sum(1 for r in self.faults if r.candidate is not None)

    def stage_faults(self, stage: str) -> list[FaultRecord]:
        """Fault records for one logical stage."""
        return [record for record in self.faults if record.stage == stage]

    def fallbacks(self) -> list[str]:
        """The fallback labels applied, in order."""
        return [r.fallback for r in self.faults if r.fallback is not None]

    def record(self, record: FaultRecord) -> None:
        self.faults.append(record)

    def record_exception(
        self,
        stage: str,
        exc: BaseException,
        site: str | None = None,
        candidate: int | None = None,
        retries: int = 0,
        fallback: str | None = None,
    ) -> FaultRecord:
        """Append a :class:`FaultRecord` built from a caught exception."""
        record = FaultRecord(
            stage=stage,
            error_type=type(exc).__name__,
            error=str(exc),
            site=getattr(exc, "site", site),
            candidate=candidate,
            retries=retries,
            fallback=fallback,
            transient=is_transient(exc),
        )
        self.record(record)
        return record

    def record_lint_rejection(self, codes) -> None:
        """Count one candidate pruned by the semantic-analysis gate.

        *codes* are the error-severity diagnostic codes the candidate
        carried (distinct codes each count once).  Lint rejection is the
        gate doing its job, not a fault: it never marks the translation
        degraded and produces no :class:`FaultRecord`.
        """
        self.lint_rejected += 1
        for code in codes:
            self.lint_codes[code] = self.lint_codes.get(code, 0) + 1

    def record_verify(self, outcomes: dict[str, int], demoted: int) -> None:
        """Fold one verify pass into the report.

        Like lint rejection, demotion is the stage doing its job: it never
        marks the translation degraded and produces no
        :class:`FaultRecord` (a *crash* of the stage does, via
        :func:`guarded_call`).
        """
        self.verify_demoted += demoted
        for outcome, count in outcomes.items():
            self.verify_outcomes[outcome] = (
                self.verify_outcomes.get(outcome, 0) + count
            )

    def record_deadline(
        self, deadline: Deadline, stage: str, fallback: str
    ) -> FaultRecord:
        """Record a deadline expiry observed at *stage* (recorded once).

        The *fallback* label says what the pipeline degraded to: the
        best answer produced so far.
        """
        self.deadline_budget = deadline.budget
        self.deadline_stage = stage
        record = FaultRecord(
            stage=stage,
            error_type="DeadlineExceeded",
            error=(
                f"deadline of {deadline.budget:.3f}s exceeded "
                f"(elapsed {deadline.elapsed():.3f}s)"
            ),
            fallback=fallback,
        )
        self.record(record)
        return record

    def as_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`).

        Includes the derived flags (``degraded``, ``deadline_expired``)
        so journal consumers need not recompute them, and the attached
        span tree verbatim.
        """
        return {
            "question": self.question,
            "faults": [record.as_dict() for record in self.faults],
            "lint_rejected": self.lint_rejected,
            "lint_codes": dict(sorted(self.lint_codes.items())),
            "verify_demoted": self.verify_demoted,
            "verify_outcomes": dict(sorted(self.verify_outcomes.items())),
            "repair_attempts": self.repair_attempts,
            "repair_succeeded": self.repair_succeeded,
            "deadline_budget": self.deadline_budget,
            "deadline_stage": self.deadline_stage,
            "degraded": self.degraded,
            "deadline_expired": self.deadline_expired,
            "skipped_candidates": self.skipped_candidates,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TranslationReport":
        return cls(
            question=data.get("question", ""),
            faults=[
                FaultRecord.from_dict(record)
                for record in data.get("faults", [])
            ],
            lint_rejected=data.get("lint_rejected", 0),
            lint_codes=dict(data.get("lint_codes") or {}),
            verify_demoted=data.get("verify_demoted", 0),
            verify_outcomes=dict(data.get("verify_outcomes") or {}),
            repair_attempts=data.get("repair_attempts", 0),
            repair_succeeded=bool(data.get("repair_succeeded", False)),
            deadline_budget=data.get("deadline_budget"),
            deadline_stage=data.get("deadline_stage"),
            trace=data.get("trace"),
        )

    def stage_durations(self) -> dict[str, float]:
        """Per-stage wall seconds from the attached trace (may be {})."""
        if not self.trace:
            return {}
        return {
            child["name"]: child.get("duration", 0.0)
            for child in self.trace.get("children", ())
        }

    def summary(self) -> str:
        """One-line human summary (for eval output and logs)."""
        if not self.faults:
            return "ok"
        parts = []
        for record in self.faults:
            where = record.stage
            if record.candidate is not None:
                where += f"[{record.candidate}]"
            label = record.fallback or "fault"
            parts.append(f"{where}:{label}")
        return "degraded(" + ", ".join(parts) + ")"


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* is retryable under a :class:`DegradationPolicy`."""
    return bool(getattr(exc, "transient", False))


def guarded_call(
    stage: str,
    fn: Callable[[], object],
    policy: DegradationPolicy,
    report: TranslationReport,
    fallback: str | None = None,
    site: str | None = None,
    breaker: CircuitBreaker | None = None,
) -> tuple[bool, object]:
    """Run *fn* with bounded retries for transient faults.

    Returns ``(True, value)`` on success — recording a ``retry`` record if
    transient faults were absorbed on the way — or ``(False, None)`` after
    recording the terminal fault with the *fallback* label the caller is
    about to apply.  Only :class:`Exception` is absorbed; interrupts and
    system exits propagate.

    When a *breaker* is supplied the call first asks it for admission: an
    open breaker short-circuits to ``(False, None)`` with a
    ``BreakerOpen`` fault record (the caller's fallback applies without
    paying for a doomed call), a terminal fault feeds
    :meth:`CircuitBreaker.record_failure`, and a success — including a
    retry that absorbed transient faults — feeds ``record_success``.
    """
    if breaker is not None and not breaker.allow():
        report.record(
            FaultRecord(
                stage=stage,
                error_type="BreakerOpen",
                error=f"circuit breaker open for stage {stage!r}",
                site=site,
                fallback=fallback,
            )
        )
        return False, None
    last_exc: BaseException | None = None
    for attempt in range(policy.max_retries + 1):
        try:
            value = fn()
        except Exception as exc:  # repolint: allow[broad-except] — isolation boundary
            last_exc = exc
            if is_transient(exc) and attempt < policy.max_retries:
                continue
            report.record_exception(
                stage, exc, site=site, retries=attempt, fallback=fallback
            )
            if breaker is not None:
                breaker.record_failure()
            return False, None
        if attempt and last_exc is not None:
            report.record_exception(
                stage, last_exc, site=site, retries=attempt, fallback="retry"
            )
        if breaker is not None:
            breaker.record_success()
        return True, value
    # Unreachable: the loop always returns.
    raise StageError(stage, "retry loop exited without a result")
