"""Bounded self-repair: feed verification failures back into generation.

When the execution-guided verify stage (:mod:`repro.core.verify`) finds
that even the *best* ranked candidate fails at runtime, the translation
is wrong in a way the rankers cannot see.  Following PURPLE's
failure-feedback loop, this module turns the typed diagnostic — an
``SQL001``–``SQL012`` lint code from the generation gate or the executor
error class from the verify verdict — into a *perturbation of the
metadata conditions* that produced the failing candidate, re-generates,
re-ranks and re-verifies, hoping a structurally different composition
decodes into a query that actually runs.

The loop is strictly bounded:

- at most :attr:`RepairConfig.max_attempts` attempts per translation,
- each attempt tries compositions never used before (a ``tried`` set
  threads through, so the loop cannot revisit a failing condition),
- every regeneration runs under :func:`~repro.core.resilience.guarded_call`
  with the ``repair.regenerate`` failpoint and the pipeline's dedicated
  ``repair`` circuit breaker — a pathological schema trips the breaker
  and subsequent requests skip repair outright,
- the request :class:`~repro.core.resilience.Deadline` is honoured
  between attempts.

A repair that does not produce a verified-passing top-1 keeps the
original (verified) order — the stage never makes the answer worse than
what ranking produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metadata import CORRECT, QueryMetadata
from repro.core.resilience import (
    Deadline,
    DegradationPolicy,
    TranslationReport,
    fire,
    guarded_call,
)
from repro.core.verify import VerifyResult, verify_candidates
from repro.schema.database import Database

#: Which operator tags to drop first, per diagnostic class.  A budget
#: blow-up points at join/subquery explosions; an empty result at
#: over-restrictive filtering; execution errors at aggregate/arith misuse.
_DROP_BY_DIAGNOSTIC: dict[str, tuple[str, ...]] = {
    "ExecutionBudgetError": ("join", "subquery"),
    "empty-result": ("where", "having", "intersect", "except"),
    "SqlExecutionError": ("agg", "having", "subquery"),
    "SchemaError": ("join", "subquery"),
}

_CompositionKey = tuple[frozenset, int]


@dataclass
class RepairConfig:
    """Knobs for the bounded post-verify repair loop."""

    #: Repair attempts per translation (0 disables the loop entirely).
    max_attempts: int = 1
    #: Perturbed metadata conditions generated per attempt.
    compositions_per_attempt: int = 4

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 0


def diagnose(report: TranslationReport, result: VerifyResult) -> str:
    """The typed diagnostic for a failing verified top-1.

    Prefers the executor error class from the verify verdict
    (``SqlExecutionError`` / ``ExecutionBudgetError`` / ``SchemaError``),
    then ``empty-result``, then the most frequent lint code the
    generation gate pruned on (``SQL001``–``SQL012``).
    """
    verdict = result.top1_verdict
    if verdict is not None:
        if verdict.detail:
            return verdict.detail
        if verdict.outcome == "empty":
            return "empty-result"
    if report.lint_codes:
        return max(sorted(report.lint_codes), key=report.lint_codes.get)
    return verdict.outcome if verdict is not None else "unknown"


def perturb_compositions(
    metadata: QueryMetadata | None,
    diagnostic: str,
    composer,
    tried: set[_CompositionKey],
    limit: int,
) -> list[QueryMetadata]:
    """Metadata conditions to retry under, none of them tried before.

    Perturbs the failing candidate's own condition first — dropping the
    tags the *diagnostic* implicates, then any other non-``project``
    tag, then nudging the hardness rating — and pads with the composer's
    most frequent observed combinations that were not conditioned on in
    the original pass.
    """
    variants: list[QueryMetadata] = []
    seen: set[_CompositionKey] = set(tried)

    def push(meta: QueryMetadata) -> None:
        key = (meta.tags, meta.rating)
        if key in seen or not meta.tags:
            return
        seen.add(key)
        variants.append(meta)

    if metadata is not None:
        prioritized = _DROP_BY_DIAGNOSTIC.get(diagnostic, ())
        ordered_tags = [t for t in prioritized if t in metadata.tags]
        ordered_tags += sorted(metadata.tags - {"project"} - set(prioritized))
        for tag in ordered_tags:
            push(
                QueryMetadata(
                    tags=metadata.tags - {tag},
                    rating=metadata.rating,
                    correctness=CORRECT,
                )
            )
        for delta in (-200, 200):
            push(metadata.with_rating(max(100, metadata.rating + delta)))
    for meta in composer.all_compositions():
        if len(variants) >= limit:
            break
        push(meta)
    return variants[:limit]


def run_repair(
    pipeline,
    question: str,
    db: Database,
    ranked: list,
    verify_result: VerifyResult,
    tried: set[_CompositionKey],
    policy: DegradationPolicy,
    report: TranslationReport,
    deadline: Deadline | None = None,
) -> list:
    """The bounded repair loop; returns the (possibly repaired) ranking.

    *pipeline* is the owning :class:`~repro.core.pipeline.MetaSQL`
    (duck-typed here to keep the module free of a layering cycle);
    *ranked* is the verified ordering whose top-1 failed.  On success the
    repaired candidates lead and the original ones follow (deduplicated
    by SQL text), ``report.repair_succeeded`` flips, and the loop exits;
    attempts are counted on ``report.repair_attempts`` either way.
    """
    config = pipeline.config.repair
    failing_meta = ranked[0].metadata if ranked else None
    for _attempt in range(config.max_attempts):
        if deadline is not None and deadline.expired():
            break
        diagnostic = diagnose(report, verify_result)
        variants = perturb_compositions(
            failing_meta,
            diagnostic,
            pipeline.composer,
            tried,
            config.compositions_per_attempt,
        )
        if not variants:
            break
        tried.update((meta.tags, meta.rating) for meta in variants)
        report.repair_attempts += 1
        ok, outcome = guarded_call(
            "repair",
            lambda: _attempt_once(
                pipeline, question, db, variants, policy, report, deadline
            ),
            policy,
            report,
            fallback="keep",
            site="repair.regenerate",
            breaker=pipeline._breaker("repair"),
        )
        if not ok:
            # Terminal fault or open breaker: keep the original order and
            # stop burning attempts a breaker would refuse anyway.
            break
        repaired, result = outcome
        if repaired and result is not None and not result.top1_failed:
            report.repair_succeeded = True
            return repaired + [
                translation
                for translation in ranked
                if translation.sql
                not in {r.sql for r in repaired}
            ]
        if result is not None:
            verify_result = result  # feed the freshest diagnostic forward
    return ranked


def _attempt_once(
    pipeline,
    question: str,
    db: Database,
    compositions: list[QueryMetadata],
    policy: DegradationPolicy,
    report: TranslationReport,
    deadline: Deadline | None,
) -> tuple[list, VerifyResult | None]:
    """One regenerate -> re-rank -> re-verify pass under new conditions."""
    fire("repair.regenerate")
    generated = pipeline.generator.generate(
        question, db, compositions, report=report
    )
    if not generated:
        return [], None
    schema = db.schema
    generated, surfaces, __ = pipeline._render_surfaces(
        schema, generated, policy, report
    )
    if not generated:
        return [], None
    pruned = pipeline._stage1_pruned(question, surfaces, policy, report)
    if pruned is None:
        order = sorted(
            range(len(generated)), key=lambda i: -generated[i].score
        )
        pruned = [
            (i, generated[i].score)
            for i in order[: pipeline.config.first_stage_top]
        ]
    ranked = pipeline._stage2_ranked(
        question, generated, surfaces, pruned, schema, policy, report
    )
    if not ranked:
        return [], None
    result = verify_candidates(
        [translation.query for translation in ranked],
        db,
        pipeline.config.verify,
        deadline=deadline,
    )
    return [ranked[index] for index in result.order], result
