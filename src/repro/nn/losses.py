"""Loss functions used by MetaSQL's classifiers and rankers.

Includes the three losses of the second-stage ranking model (Section III-C2):
the global/local MSE losses, the phrase triplet loss, and the listwise
NeuralNDCG loss implemented via NeuralSort's differentiable permutation
relaxation (Pobrotyn & Bialobrzeski, 2021).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def mse_loss(predicted: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = predicted - target
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, target: Tensor) -> Tensor:
    """Binary cross-entropy on logits (numerically stable).

    Uses ``max(x,0) - x*t + log(1 + exp(-|x|))``.
    """
    relu_part = logits.clip_min(0.0)
    abs_part = logits.abs()
    log_part = (1.0 + (-abs_part).exp()).log()
    return (relu_part - logits * target + log_part).mean()


def triplet_loss(
    anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 0.3
) -> Tensor:
    """Cosine triplet loss ``max(0, margin - cos(a,p) + cos(a,n))``.

    Inputs are 1-D embeddings.  The paper's phrase triplet loss pushes
    mismatched phrases away from the NL query embedding relative to matched
    phrases.
    """
    pos_sim = _cosine(anchor, positive)
    neg_sim = _cosine(anchor, negative)
    return (neg_sim - pos_sim + margin).clip_min(0.0)


def _cosine(a: Tensor, b: Tensor) -> Tensor:
    return (a @ b) / (a.norm() * b.norm())


def neural_sort(scores: Tensor, tau: float = 1.0) -> Tensor:
    """NeuralSort relaxation: a row-stochastic 'permutation' matrix.

    ``P[k]`` softly selects the k-th largest element of *scores*.
    Reference: Grover et al., 2019 (as used by NeuralNDCG).
    """
    s = scores.reshape(-1, 1)
    n = s.shape[0]
    ones = Tensor(np.ones((n, 1)))
    abs_diff = (s - s.T).abs()  # |s_i - s_j|
    b = abs_diff @ ones  # row sums
    scaling = Tensor(np.arange(n, 0, -1, dtype=np.float64) * 2.0 - (n + 1))
    # c[k, i] = (n + 1 - 2k) * s_i  with k ranked from 1..n
    c = scaling.reshape(-1, 1) @ s.reshape(1, -1)
    p = c - b.reshape(1, -1)
    return (p * (1.0 / tau)).softmax(axis=-1)


def neural_ndcg_loss(
    predicted: Tensor, relevance: np.ndarray, tau: float = 1.0
) -> Tensor:
    """1 - NeuralNDCG of *predicted* scores against graded *relevance*.

    The permutation relaxation sorts the (exponential) gains by predicted
    score; the result is discounted and normalised by the ideal DCG.  Returns
    a differentiable scalar in [0, 1+]; minimising it maximises NDCG.
    """
    relevance = np.asarray(relevance, dtype=np.float64)
    n = relevance.shape[0]
    if n == 0:
        raise ValueError("relevance list must be non-empty")
    gains = np.power(2.0, relevance) - 1.0
    discounts = 1.0 / np.log2(np.arange(n) + 2.0)
    ideal = np.sort(gains)[::-1] @ discounts
    if ideal <= 0:
        ideal = 1.0
    permutation = neural_sort(predicted, tau=tau)
    sorted_gains = permutation @ Tensor(gains)
    ndcg = (sorted_gains * Tensor(discounts)).sum() * (1.0 / ideal)
    return 1.0 - ndcg
