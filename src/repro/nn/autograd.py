"""A compact reverse-mode automatic differentiation engine over numpy.

Supports the operations needed by the MetaSQL rankers and classifiers:
broadcasting arithmetic, matrix multiplication, reductions, the usual
nonlinearities, softmax and absolute value (the last two power the
NeuralSort-based NeuralNDCG loss).

Gradients accumulate into ``Tensor.grad`` after calling ``backward()`` on a
scalar tensor.  Only tensors created with ``requires_grad=True`` (or derived
from them) participate in the graph.
"""

from __future__ import annotations

import numpy as np

ArrayLike = "np.ndarray | float | int | list"


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape* (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading added dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along broadcast (size-1) dimensions.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_children")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._backward = None
        self._children: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph construction helpers.

    @staticmethod
    def _wrap(value) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    @classmethod
    def _make(cls, data, children, backward) -> "Tensor":
        out = cls(data, requires_grad=any(c.requires_grad for c in children))
        if out.requires_grad:
            out._children = tuple(children)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Arithmetic.

    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            left = self.data
            right = other.data
            if left.ndim == 1 and right.ndim == 1:
                self._accumulate(grad * right)
                other._accumulate(grad * left)
                return
            if left.ndim == 1:
                self._accumulate(grad @ right.T)
                other._accumulate(np.outer(left, grad))
                return
            if right.ndim == 1:
                self._accumulate(np.outer(grad, right))
                other._accumulate(left.T @ grad)
                return
            self._accumulate(grad @ right.swapaxes(-1, -2))
            other._accumulate(left.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops.

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]

        def backward(grad: np.ndarray) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                tensor._accumulate(grad[tuple(slicer)])
                offset += size

        out = Tensor._make(out_data, tuple(tensors), backward)
        return out

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for index, tensor in enumerate(tensors):
                tensor._accumulate(np.take(grad, index, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Reductions.

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Nonlinearities.

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / np.maximum(self.data, 1e-12))

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """max(x, minimum), used for hinge-style losses."""
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > minimum))

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)

    def norm(self, axis=None, keepdims: bool = False) -> "Tensor":
        """L2 norm with a numerical-stability floor."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + 1e-12) ** 0.5

    # ------------------------------------------------------------------
    # Backward pass.

    def backward(self) -> None:
        """Backpropagate from this scalar tensor."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._children:
                if id(child) not in visited:
                    stack.append((child, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def cosine_similarity(a: Tensor, b: Tensor) -> Tensor:
    """Cosine similarity between two 1-D tensors (the paper's Eq. 1)."""
    return (a @ b) / (a.norm() * b.norm())
