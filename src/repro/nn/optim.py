"""Optimizers: plain SGD and Adam (Kingma & Ba, 2015)."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


class SGD:
    """Stochastic gradient descent with optional weight decay."""

    def __init__(
        self, params: list[Tensor], lr: float = 0.01, weight_decay: float = 0.0
    ) -> None:
        self.params = params
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= self.lr * grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None


class Adam:
    """Adam optimizer; the paper uses it for both ranking models."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * (
                grad**2
            )
            m_hat = self._m[index] / (1 - self.beta1**self._t)
            v_hat = self._v[index] / (1 - self.beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None
