"""Trainable text encoders (the 'towers' of the ranking models).

An :class:`EncoderTower` maps text to a dense embedding: a fitted TF-IDF
featurizer followed by a trainable two-layer projection.  Two towers with
shared or separate weights make up the dual-tower first-stage ranker.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Linear, Module
from repro.nn.text import TextFeaturizer


class EncoderTower(Module):
    """TF-IDF features -> tanh projection -> embedding."""

    def __init__(
        self,
        featurizer: TextFeaturizer,
        embed_dim: int,
        rng: np.random.Generator,
        hidden_dim: int | None = None,
    ) -> None:
        self.featurizer = featurizer
        hidden = hidden_dim if hidden_dim is not None else embed_dim * 2
        self.hidden = Linear(featurizer.buckets, hidden, rng)
        self.output = Linear(hidden, embed_dim, rng)

    def encode_features(self, features: np.ndarray) -> Tensor:
        """Embed a precomputed feature vector (or batch)."""
        x = Tensor(features)
        return self.output(self.hidden(x).tanh())

    def embed_array(self, features: np.ndarray) -> np.ndarray:
        """No-grad batched forward for the inference hot path.

        Same arithmetic as :meth:`encode_features` without building the
        autograd graph; *features* is a 2-D ``(batch, buckets)`` array.
        """
        hidden = np.tanh(
            features @ self.hidden.weight.data + self.hidden.bias.data
        )
        return hidden @ self.output.weight.data + self.output.bias.data

    def encode(self, text: str) -> Tensor:
        """Embed raw text."""
        return self.encode_features(self.featurizer.transform(text))

    def encode_many(self, texts: list[str]) -> Tensor:
        return self.encode_features(self.featurizer.transform_many(texts))
