"""Text featurisation: tokenizer, hashing vectorizer, TF-IDF featurizer.

Replaces pre-trained sentence encoders: text is mapped to a fixed-size sparse
bag-of-features vector (word unigrams + bigrams + character trigrams hashed
into a fixed number of buckets, TF-IDF weighted), which the trainable
:mod:`repro.nn.encoder` towers project into a dense embedding space.

Both vectorizers share one feature-accumulation path
(:func:`_count_matrix`), so single-text ``transform`` is exactly the
one-row case of ``transform_many``; token hashes are memoized
(:func:`_fnv1a` keeps a bounded per-token memo independent of the bucket
count) because the same question/SQL tokens recur across every candidate
of every request.
"""

from __future__ import annotations

import functools
import re

import numpy as np

_WORD_RE = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str) -> list[str]:
    """Lowercase word tokens (alphanumeric runs)."""
    return _WORD_RE.findall(text.lower())


@functools.lru_cache(maxsize=1 << 16)
def _fnv1a(token: str) -> int:
    """Memoized 64-bit FNV-1a hash of *token* (bucket-count independent)."""
    value = 0xCBF29CE484222325
    for char in token.encode("utf-8"):
        value ^= char
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def _hash_token(token: str, buckets: int) -> int:
    """Stable string hash (FNV-1a) into ``buckets``."""
    return _fnv1a(token) % buckets


def text_features(text: str, include_chars: bool = True) -> list[str]:
    """Feature strings for *text*: unigrams, bigrams and char trigrams."""
    words = tokenize_text(text)
    features = list(words)
    features.extend(f"{a}_{b}" for a, b in zip(words, words[1:]))
    if include_chars:
        for word in words:
            padded = f"#{word}#"
            features.extend(
                "c:" + padded[i : i + 3] for i in range(len(padded) - 2)
            )
    return features


def _count_matrix(
    texts: list[str], buckets: int, include_chars: bool
) -> np.ndarray:
    """Shared accumulation path: hashed-feature counts, one row per text."""
    matrix = np.zeros((len(texts), buckets))
    for row, text in zip(matrix, texts):
        for feature in text_features(text, include_chars):
            row[_hash_token(feature, buckets)] += 1.0
    return matrix


def _l2_normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms == 0.0, 1.0, norms)


class HashingVectorizer:
    """Stateless hashed bag-of-features vectorizer."""

    def __init__(self, buckets: int = 2048, include_chars: bool = True) -> None:
        self.buckets = buckets
        self.include_chars = include_chars

    def transform(self, text: str) -> np.ndarray:
        return self.transform_many([text])[0]

    def transform_many(self, texts: list[str]) -> np.ndarray:
        matrix = _count_matrix(texts, self.buckets, self.include_chars)
        return _l2_normalize_rows(matrix)


class TextFeaturizer:
    """TF-IDF weighted hashing vectorizer fitted on a corpus.

    ``fit`` learns inverse document frequencies per hash bucket;
    ``transform``/``transform_many`` produce L2-normalised TF-IDF
    vectors through the shared accumulation path.
    """

    def __init__(self, buckets: int = 2048, include_chars: bool = True) -> None:
        self.buckets = buckets
        self.include_chars = include_chars
        self._idf: np.ndarray | None = None

    def fit(self, corpus: list[str]) -> "TextFeaturizer":
        document_freq = np.zeros(self.buckets)
        for text in corpus:
            seen = {
                _hash_token(f, self.buckets)
                for f in text_features(text, self.include_chars)
            }
            for bucket in seen:
                document_freq[bucket] += 1.0
        n_docs = max(len(corpus), 1)
        self._idf = np.log((1.0 + n_docs) / (1.0 + document_freq)) + 1.0
        return self

    def transform(self, text: str) -> np.ndarray:
        return self.transform_many([text])[0]

    def transform_many(self, texts: list[str]) -> np.ndarray:
        counts = _count_matrix(texts, self.buckets, self.include_chars)
        positive = counts > 0
        tf = np.where(
            positive, 1.0 + np.log(np.where(positive, counts, 1.0)), 0.0
        )
        if self._idf is not None:
            tf *= self._idf
        return _l2_normalize_rows(tf)
