"""Text featurisation: tokenizer, hashing vectorizer, TF-IDF featurizer.

Replaces pre-trained sentence encoders: text is mapped to a fixed-size sparse
bag-of-features vector (word unigrams + bigrams + character trigrams hashed
into a fixed number of buckets, TF-IDF weighted), which the trainable
:mod:`repro.nn.encoder` towers project into a dense embedding space.
"""

from __future__ import annotations

import math
import re
from collections import Counter

import numpy as np

_WORD_RE = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str) -> list[str]:
    """Lowercase word tokens (alphanumeric runs)."""
    return _WORD_RE.findall(text.lower())


def _hash_token(token: str, buckets: int) -> int:
    """Stable string hash (FNV-1a) into ``buckets``."""
    value = 0xCBF29CE484222325
    for char in token.encode("utf-8"):
        value ^= char
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % buckets


def text_features(text: str, include_chars: bool = True) -> list[str]:
    """Feature strings for *text*: unigrams, bigrams and char trigrams."""
    words = tokenize_text(text)
    features = list(words)
    features.extend(f"{a}_{b}" for a, b in zip(words, words[1:]))
    if include_chars:
        for word in words:
            padded = f"#{word}#"
            features.extend(
                "c:" + padded[i : i + 3] for i in range(len(padded) - 2)
            )
    return features


class HashingVectorizer:
    """Stateless hashed bag-of-features vectorizer."""

    def __init__(self, buckets: int = 2048, include_chars: bool = True) -> None:
        self.buckets = buckets
        self.include_chars = include_chars

    def transform(self, text: str) -> np.ndarray:
        vector = np.zeros(self.buckets)
        for feature in text_features(text, self.include_chars):
            vector[_hash_token(feature, self.buckets)] += 1.0
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector


class TextFeaturizer:
    """TF-IDF weighted hashing vectorizer fitted on a corpus.

    ``fit`` learns inverse document frequencies per hash bucket;
    ``transform`` produces L2-normalised TF-IDF vectors.
    """

    def __init__(self, buckets: int = 2048, include_chars: bool = True) -> None:
        self.buckets = buckets
        self.include_chars = include_chars
        self._idf: np.ndarray | None = None

    def fit(self, corpus: list[str]) -> "TextFeaturizer":
        document_freq = np.zeros(self.buckets)
        for text in corpus:
            seen = {
                _hash_token(f, self.buckets)
                for f in text_features(text, self.include_chars)
            }
            for bucket in seen:
                document_freq[bucket] += 1.0
        n_docs = max(len(corpus), 1)
        self._idf = np.log((1.0 + n_docs) / (1.0 + document_freq)) + 1.0
        return self

    def transform(self, text: str) -> np.ndarray:
        counts: Counter[int] = Counter(
            _hash_token(f, self.buckets)
            for f in text_features(text, self.include_chars)
        )
        vector = np.zeros(self.buckets)
        for bucket, count in counts.items():
            vector[bucket] = 1.0 + math.log(count)
        if self._idf is not None:
            vector *= self._idf
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def transform_many(self, texts: list[str]) -> np.ndarray:
        return np.stack([self.transform(t) for t in texts])
