"""Dense layers built on the autograd Tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


class Module:
    """Base class providing parameter collection."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None


class Linear(Module):
    """Affine layer ``y = x W + b`` with Xavier-uniform initialisation."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        bound = np.sqrt(6.0 / (in_features + out_features))
        weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.weight = Tensor(weight, requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class MLP(Module):
    """Multi-layer perceptron with tanh hidden activations."""

    def __init__(self, sizes: list[int], rng: np.random.Generator) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers = [
            Linear(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)
        ]

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x).tanh()
        return self.layers[-1](x)

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """No-grad batched forward for the inference hot path.

        Same arithmetic as :meth:`__call__` without building the
        autograd graph; *x* is a 2-D ``(batch, features)`` array.
        """
        for layer in self.layers[:-1]:
            x = np.tanh(x @ layer.weight.data + layer.bias.data)
        last = self.layers[-1]
        return x @ last.weight.data + last.bias.data
