"""From-scratch numpy ML substrate.

Replaces the paper's transformer stack (sentence-transformers, RoBERTa) with
trainable numpy models: a reverse-mode autograd engine, dense layers, Adam,
the ranking losses MetaSQL needs (MSE, BCE, triplet, NeuralNDCG) and
TF-IDF/hashing text encoders.
"""

from repro.nn.autograd import Tensor
from repro.nn.layers import MLP, Linear
from repro.nn.losses import (
    bce_with_logits,
    mse_loss,
    neural_ndcg_loss,
    triplet_loss,
)
from repro.nn.optim import SGD, Adam
from repro.nn.text import HashingVectorizer, TextFeaturizer, tokenize_text

__all__ = [
    "Tensor",
    "Linear",
    "MLP",
    "SGD",
    "Adam",
    "mse_loss",
    "bce_with_logits",
    "triplet_loss",
    "neural_ndcg_loss",
    "tokenize_text",
    "HashingVectorizer",
    "TextFeaturizer",
]
