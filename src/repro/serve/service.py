"""A hardened serving front-end for trained MetaSQL pipelines.

:class:`TranslationService` puts the production controls the ROADMAP's
heavy-traffic north star needs *around* the pipeline's per-translation
fault isolation (PR 1):

- **Admission control** — a bounded work queue; when it is full the
  submit path sheds load immediately with a typed
  :class:`~repro.sqlkit.errors.Overloaded` instead of queueing
  unboundedly, while already-admitted requests keep draining.
- **Deadline budgets** — every request carries a
  :class:`~repro.core.resilience.Deadline` (explicit or the configured
  default), installed ambiently via
  :func:`~repro.core.resilience.deadline_scope` so the pipeline's
  cooperative stage-boundary checkpoints observe it and degrade an
  expired request to the best answer produced so far.
- **Retry with jittered backoff** — a request whose translation came
  back empty because of a *transient* terminal fault (per the PR-1
  taxonomy) is retried a bounded number of times with full-jitter
  exponential backoff, deadline permitting.
- **Health/readiness** — :meth:`TranslationService.health` snapshots
  queue depth, per-stage circuit-breaker states, counters, uptime, and
  the rolling degraded-rate (same notion as ``EvalResult.degraded_rate``).
- **Observability** — every request feeds the service's
  :class:`~repro.obs.metrics.MetricsRegistry` (queue depth/wait,
  in-flight, retries, rejections, end-to-end latency — all
  tenant-labelled; the pipeline adds its per-stage metrics under the
  same registry via an ambient scope),
  :meth:`TranslationService.metrics` renders it in the Prometheus text
  format, and an optional :class:`~repro.obs.journal.Journal` records a
  per-request JSONL summary for offline analysis
  (:mod:`repro.eval.journal_analysis`).
- **Multi-tenancy** — every submit/translate call dispatches through a
  :class:`~repro.tenancy.router.Router`: the tenant's admission quota
  is charged *before* the shared queue (a noisy tenant gets typed
  :class:`~repro.sqlkit.errors.TenantOverloaded` while its neighbours'
  admission path is untouched), each translation runs on a
  :class:`~repro.tenancy.registry.ShardLease` so in-flight requests
  survive a zero-downtime :meth:`Router.swap`, and
  :meth:`TranslationService.health` carries a per-tenant section.  A
  service built from a bare pipeline wraps it as the unmetered
  ``default`` tenant — that path is bit-identical to the pre-tenancy
  behaviour.
- **Continuous micro-batching** — with ``ServiceConfig.batching`` on, a
  :class:`~repro.serve.batcher.MicroBatcher` scheduler thread drains
  the admission queue on a short tick, regroups waiting requests by
  tenant, and a worker ranks each group with **one**
  ``translate_many`` forward on a single shard lease — amortizing the
  matrix-forward cost PR 5 unlocked across live requests while every
  member keeps its own Future, deadline, retries, report and journal
  line.  ``batching=False`` (the default) keeps the pre-batching
  worker loop bit-identical.

The service is deliberately synchronous-thread-pool shaped: the pipeline
is pure CPU-bound Python/numpy, so a small worker pool bounded by a
queue is the honest concurrency model.
"""

from __future__ import annotations

import pathlib
import queue
import random
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field, fields

from repro.devtools.lockdep import new_lock
from repro.core.pipeline import MetaSQL, RankedResult
from repro.core.resilience import (
    Deadline,
    TranslationReport,
    deadline_scope,
    fire,
)
from repro.eval.evaluate import reports_degraded_rate
from repro.obs.journal import Journal
from repro.obs.metrics import MetricsRegistry, get_registry, registry_scope
from repro.obs.ops import OpsServer
from repro.obs.trace import Tracer, trace_scope
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloEngine, SloSpec
from repro.schema.database import Database
from repro.serve.batcher import Batch, MicroBatcher, PreformedGroup
from repro.sqlkit.errors import (
    ConfigError,
    Overloaded,
    ServiceStopped,
    TenantOverloaded,
)
from repro.tenancy.registry import Tenant
from repro.tenancy.router import Router


@dataclass
class ServiceConfig:
    """Serving knobs (all deterministic-testable via injectable hooks).

    Validated eagerly at construction: a nonsensical value raises a
    typed :class:`~repro.sqlkit.errors.ConfigError` (a ``ValueError``
    rooted at ``SqlError``) at the call site instead of failing deep in
    the worker loop.
    """

    workers: int = 2
    queue_limit: int = 16
    #: Per-request time budget in seconds applied when the caller does
    #: not pass an explicit Deadline; None disables default deadlines.
    default_deadline: float | None = None
    #: Service-level retries for transient-fault translations.
    max_retries: int = 2
    backoff_base: float = 0.05  # first backoff upper bound, seconds
    backoff_cap: float = 2.0  # backoff upper bound ceiling, seconds
    #: Seed for the jitter RNG; None draws a fresh seed per service.
    jitter_seed: int | None = None
    #: How many recent reports the rolling degraded-rate covers.
    health_window: int = 256
    #: When set, a per-request JSONL event journal is appended here
    #: (crash-safe; see :mod:`repro.obs.journal`).
    journal_path: str | pathlib.Path | None = None
    #: Declarative service objectives (:class:`~repro.obs.slo.SloSpec`);
    #: empty disables the SLO engine entirely.
    slos: tuple = ()
    #: Ring-buffer capacity of the tail-sampling flight recorder; 0
    #: disables the recorder entirely.
    recorder_capacity: int = 0
    #: When set, an :class:`~repro.obs.ops.OpsServer` is started on
    #: ``(ops_host, ops_port)`` (0 = ephemeral port); None keeps the
    #: service endpoint-free.
    ops_port: int | None = None
    ops_host: str = "127.0.0.1"
    #: Continuous micro-batching: when on, a scheduler thread regroups
    #: queued requests into per-tenant batches ranked with one
    #: ``translate_many`` forward each (see DESIGN.md §17).  Off keeps
    #: the pre-batching worker loop, bit-identical to prior releases.
    batching: bool = False
    #: Scheduler tick: how long a forming batch waits for company,
    #: in milliseconds.
    batch_wait_ms: float = 2.0
    #: A formed batch never exceeds this many members.
    max_batch_size: int = 16

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` for any out-of-range knob."""
        if self.workers <= 0:
            raise ConfigError(
                f"service needs at least one worker, got {self.workers!r}"
            )
        if self.queue_limit <= 0:
            raise ConfigError(
                f"service needs a positive queue limit, "
                f"got {self.queue_limit!r}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigError(
                f"default deadline must be positive seconds, "
                f"got {self.default_deadline!r}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries cannot be negative, got {self.max_retries!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError(
                f"backoff bounds cannot be negative, got "
                f"base={self.backoff_base!r} cap={self.backoff_cap!r}"
            )
        if self.health_window <= 0:
            raise ConfigError(
                f"health window must be positive, "
                f"got {self.health_window!r}"
            )
        for spec in self.slos:
            if not isinstance(spec, SloSpec):
                raise ConfigError(
                    f"slos must hold SloSpec objects, got {spec!r}"
                )
        if self.recorder_capacity < 0:
            raise ConfigError(
                f"recorder capacity cannot be negative, "
                f"got {self.recorder_capacity!r}"
            )
        if self.ops_port is not None and not 0 <= self.ops_port <= 65535:
            raise ConfigError(
                f"ops_port must be a port number, got {self.ops_port!r}"
            )
        if self.batch_wait_ms < 0:
            raise ConfigError(
                f"batch wait must be >= 0 ms, got {self.batch_wait_ms!r}"
            )
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max batch size must be >= 1, "
                f"got {self.max_batch_size!r}"
            )


@dataclass(frozen=True)
class HealthSnapshot:
    """Point-in-time service health for readiness/liveness endpoints."""

    accepting: bool
    queue_depth: int
    queue_capacity: int
    workers: int
    in_flight: int
    completed: int
    rejected: int
    retried: int
    failed: int
    degraded_rate: float
    deadline_expired: int
    breakers: dict[str, str] = field(default_factory=dict)
    #: Seconds since the service started, on its injectable clock.
    uptime_seconds: float = 0.0
    #: Per-tenant section: queue share (pending/max_share), breaker
    #: states, shard epoch, last swap time/outcome — one entry per
    #: registered tenant (see :meth:`Tenant.snapshot`).
    tenants: dict[str, dict] = field(default_factory=dict)

    @property
    def ready(self) -> bool:
        """Whether a new request would currently be admitted *and* every
        tenant is healthy: a tenant stuck with an open breaker board
        makes the service not-ready so orchestrators stop routing to it.
        """
        if not (self.accepting and self.queue_depth < self.queue_capacity):
            return False
        return not any(
            tenant.get("breaker_open") for tenant in self.tenants.values()
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`).

        The derived ``ready`` flag is included for endpoint consumers
        but ignored on the way back in.
        """
        record = asdict(self)
        record["ready"] = self.ready
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "HealthSnapshot":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class _Job:
    question: str
    db: Database
    deadline: Deadline | None
    future: Future
    tenant: Tenant
    submitted_at: float = 0.0  # service clock, for queue-wait metrics
    shard_epoch: int | None = None  # epoch the last attempt ran on
    batch_size: int | None = None  # members in this job's micro-batch


#: Queue sentinel that tells a worker to exit its loop.
_SHUTDOWN = object()


class TranslationService:
    """Bounded-queue, deadline-aware front-end around tenant shards.

    >>> service = TranslationService(pipeline, ServiceConfig(workers=4))
    >>> result = service.translate("How many heads are older than 56?", db)
    >>> service.health().ready
    True

    The first argument is either one pipeline — wrapped as the
    unmetered ``default`` tenant of a fresh
    :class:`~repro.tenancy.router.Router`, preserving the pre-tenancy
    behaviour bit-for-bit — or a ready Router holding many tenants, in
    which case ``submit(..., tenant="acme")`` addresses a specific
    tenant's shard and quota.  Pipeline objects are shared across
    workers; their stages are stateless at inference time and breaker
    boards are thread-safe.
    """

    def __init__(
        self,
        pipeline: "MetaSQL | Router",
        config: ServiceConfig | None = None,
        sleep=time.sleep,
        clock=time.monotonic,
        registry: MetricsRegistry | None = None,
        journal: Journal | None = None,
        slo_engine: SloEngine | None = None,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self._sleep = sleep
        self._clock = clock
        self._started = clock()
        # The registry is captured at construction (worker threads do not
        # inherit the constructor's context) and re-installed ambiently
        # around each pipeline call so per-stage metrics land here too.
        self.registry = registry if registry is not None else get_registry()
        if journal is not None:
            self._journal: Journal | None = journal
        elif self.config.journal_path is not None:
            self._journal = Journal(self.config.journal_path)
        else:
            self._journal = None
        if isinstance(pipeline, Router):
            self.router = pipeline
        else:
            self.router = Router.single(pipeline)
        # Swap events land in the same journal as requests (unless the
        # router already writes its own).
        if self.router.journal is None:
            self.router.journal = self._journal
        # Operational-intelligence layer (all opt-in): SLO engine, flight
        # recorder, ops endpoint.  Injected instances win over config so
        # tests can drive the engine on a synthetic clock.
        if slo_engine is not None:
            self.slo_engine: SloEngine | None = slo_engine
        elif self.config.slos:
            self.slo_engine = SloEngine(
                self.config.slos,
                clock=clock,
                journal=self._journal,
                registry=self.registry,
            )
        else:
            self.slo_engine = None
        if recorder is not None:
            self.recorder: FlightRecorder | None = recorder
        elif self.config.recorder_capacity > 0:
            self.recorder = FlightRecorder(
                capacity=self.config.recorder_capacity,
                registry=self.registry,
            )
        else:
            self.recorder = None
        if self.recorder is not None:
            self.router.on_event = self._on_router_event
        self._rng = random.Random(self.config.jitter_seed)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_limit)
        self._lock = new_lock("TranslationService._lock")
        self._accepting = True
        self._in_flight = 0
        self._completed = 0
        self._rejected = 0
        self._retried = 0
        self._failed = 0
        self._deadline_expired = 0
        self._recent_reports: deque[TranslationReport] = deque(
            maxlen=self.config.health_window
        )
        self._init_metrics()
        # Continuous micro-batching (ROADMAP item 1): with batching on,
        # the scheduler thread owns the admission queue and the workers
        # consume formed Batch groups from a second (unbounded: at most
        # queue_limit requests deep) queue; with batching off the
        # workers consume the admission queue directly — the
        # pre-batching code path, bit-identical.  The scheduler runs on
        # the real monotonic clock regardless of the injected service
        # clock: its tick is a blocking-get timeout, and a frozen test
        # clock must not be able to park a forming batch forever.
        self._batches: queue.Queue | None = None
        self._batcher: MicroBatcher | None = None
        if self.config.batching:
            self._batches = queue.Queue()
            self._batcher = MicroBatcher(
                self._queue,
                self._batches.put,
                wait_s=self.config.batch_wait_ms / 1000.0,
                max_size=self.config.max_batch_size,
                group_key=lambda job: job.tenant.tenant_id,
                sentinel=_SHUTDOWN,
                on_shutdown=self._stop_workers,
                on_error=self._abandon_jobs,
                registry=self.registry,
            )
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"metasql-serve-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()
        if self._batcher is not None:
            self._batcher.start()
        # The ops endpoint starts last: by the time it is reachable the
        # instrument handles exist and the workers are live.
        self._ops: OpsServer | None = None
        if self.config.ops_port is not None:
            self._ops = OpsServer(
                host=self.config.ops_host,
                port=self.config.ops_port,
                metrics=self.metrics,
                health=lambda: self.health().as_dict(),
                slo=self._slo_statuses,
                recorder=self._recorder_entries,
            )
            self._ops.start()

    @property
    def pipeline(self):
        """The default tenant's *current* shard (live across hot swaps)."""
        return self.router.default_pipeline

    def _init_metrics(self) -> None:
        """Create (or re-bind) the service's instrument handles.

        Every per-request series carries a ``tenant`` label so one
        tenant's traffic, rejections and latency can be read apart from
        its neighbours'; the single-tenant path labels everything
        ``default``.
        """
        registry = self.registry
        self._m_queue_depth = registry.gauge(
            "serve_queue_depth", "Requests waiting in the admission queue."
        )
        self._m_in_flight = registry.gauge(
            "serve_in_flight", "Requests currently being translated."
        )
        self._m_queue_wait = registry.histogram(
            "serve_queue_wait_seconds",
            "Seconds a request waited in the queue before a worker took it.",
            labelnames=("tenant",),
        )
        self._m_latency = registry.histogram(
            "serve_e2e_latency_seconds",
            "End-to-end seconds from admission to completion.",
            labelnames=("tenant",),
        )
        self._m_requests = registry.counter(
            "serve_requests_total",
            "Finished requests by outcome and tenant.",
            labelnames=("outcome", "tenant"),
        )
        self._m_rejected = registry.counter(
            "serve_rejected_total",
            "Requests shed by admission control, by tenant and reason "
            "(queue = global bounded queue, quota = per-tenant limits).",
            labelnames=("tenant", "reason"),
        )
        self._m_retries = registry.counter(
            "serve_retries_total",
            "Service-level transient-fault retries.",
            labelnames=("tenant",),
        )

    # ------------------------------------------------------------------
    # Submission (admission control).

    def submit(
        self,
        question: str,
        db: Database,
        deadline: Deadline | float | None = None,
        tenant: str | None = None,
    ) -> "Future[RankedResult]":
        """Admit a translation request; returns a Future of RankedResult.

        *tenant* addresses a registered tenant's shard and quota (None:
        the default/only tenant).  Raises
        :class:`~repro.sqlkit.errors.TenantOverloaded` when the tenant's
        token-bucket rate or bounded queue share is exhausted — other
        tenants are unaffected — :class:`Overloaded` when the shared
        work queue is full (shed load; the caller may retry after
        backoff), :class:`~repro.sqlkit.errors.UnknownTenant` for an
        unregistered tenant id, and :class:`ServiceStopped` after
        :meth:`shutdown`.
        """
        with self._lock:
            accepting = self._accepting
        if not accepting:
            raise ServiceStopped("translation service is shut down")
        try:
            job = self._admit_job(question, db, deadline, tenant)
        except TenantOverloaded as exc:
            with self._lock:
                self._rejected += 1
            self._m_rejected.labels(
                tenant=exc.tenant_id, reason="quota"
            ).inc()
            raise
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            job.tenant.release()
            with self._lock:
                self._rejected += 1
            self._m_rejected.labels(
                tenant=job.tenant.tenant_id, reason="queue"
            ).inc()
            raise Overloaded(
                self._queue.qsize(), self.config.queue_limit
            ) from None
        self._m_queue_depth.set(self._queue.qsize())
        return job.future

    def _admit_job(
        self,
        question: str,
        db: Database,
        deadline: Deadline | float | None,
        tenant: str | None,
    ) -> _Job:
        """Charge the tenant's quota and build the queued job."""
        if deadline is None:
            if self.config.default_deadline is not None:
                deadline = Deadline(self.config.default_deadline)
        elif not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline))
        tenant_obj = self.router.admit(tenant)
        return _Job(
            question=question,
            db=db,
            deadline=deadline,
            future=Future(),
            tenant=tenant_obj,
            submitted_at=self._clock(),
        )

    def submit_many(
        self,
        requests: list[tuple[str, Database]],
        deadline: Deadline | float | None = None,
        tenant: str | None = None,
    ) -> "list[Future[RankedResult]]":
        """Admit a batch of ``(question, db)`` requests, one Future each.

        With batching off this loops :meth:`submit`: admission is
        all-or-nothing per request, in order — the first
        :class:`Overloaded` rejection propagates, leaving the already
        admitted prefix in flight (their futures were returned to
        nobody, but they still complete and feed the health window).
        Workers share the pipeline's bounded memo caches, so a batch
        with repeated questions or overlapping candidate SQL amortizes
        featurization across threads.

        With batching on the group is admitted atomically — quota is
        charged per member and *every* member is released again on any
        rejection — and enqueued as one
        :class:`~repro.serve.batcher.PreformedGroup`, which the
        scheduler flushes immediately instead of re-discovering the
        batch one tick at a time: same-tenant members rank in one
        ``translate_many`` forward.
        """
        requests = list(requests)
        if self._batcher is None or len(requests) <= 1:
            return [
                self.submit(question, db, deadline, tenant=tenant)
                for question, db in requests
            ]
        with self._lock:
            accepting = self._accepting
        if not accepting:
            raise ServiceStopped("translation service is shut down")
        jobs: list[_Job] = []
        try:
            for question, db in requests:
                jobs.append(self._admit_job(question, db, deadline, tenant))
        except TenantOverloaded as exc:
            self._release_group(jobs)
            with self._lock:
                self._rejected += 1
            self._m_rejected.labels(
                tenant=exc.tenant_id, reason="quota"
            ).inc()
            raise
        # The group occupies one physical admission-queue slot but
        # represents len(jobs) requests: enforce the logical capacity
        # explicitly so bulk submits cannot smuggle load past the
        # bounded queue.
        if self._queue.qsize() + len(jobs) > self.config.queue_limit:
            self._reject_group_queue(jobs)
        try:
            self._queue.put_nowait(PreformedGroup(jobs))
        except queue.Full:
            self._reject_group_queue(jobs)
        self._m_queue_depth.set(self._queue.qsize())
        return [job.future for job in jobs]

    def _release_group(self, jobs: "list[_Job]") -> None:
        for job in jobs:
            job.tenant.release()

    def _reject_group_queue(self, jobs: "list[_Job]") -> None:
        """Shed an entire pre-formed group on queue pressure."""
        self._release_group(jobs)
        with self._lock:
            self._rejected += 1
        self._m_rejected.labels(
            tenant=jobs[0].tenant.tenant_id, reason="queue"
        ).inc()
        raise Overloaded(
            self._queue.qsize(), self.config.queue_limit
        ) from None

    def translate(
        self,
        question: str,
        db: Database,
        deadline: Deadline | float | None = None,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> RankedResult:
        """Synchronous submit + wait (the simple-client entry point)."""
        return self.submit(question, db, deadline, tenant=tenant).result(
            timeout=timeout
        )

    # ------------------------------------------------------------------
    # Workers.

    def _worker_loop(self) -> None:
        work = self._batches if self._batches is not None else self._queue
        while True:
            item = work.get()
            try:
                if item is _SHUTDOWN:
                    return
                if isinstance(item, Batch):
                    self._execute_batch(item)
                else:
                    self._execute_single(item)
            finally:
                work.task_done()

    def _execute_single(self, job: _Job) -> None:
        """The pre-batching per-job worker body (batching-off path)."""
        self._m_queue_depth.set(self._queue.qsize())
        if not job.future.set_running_or_notify_cancel():
            return
        self._m_queue_wait.labels(
            tenant=job.tenant.tenant_id
        ).observe(max(0.0, self._clock() - job.submitted_at))
        with self._lock:
            self._in_flight += 1
        self._m_in_flight.inc()
        try:
            result = self._handle(job)
        except BaseException as exc:  # repolint: allow[broad-except] — to the future
            self._fail_job(job, exc)
        else:
            with self._lock:
                self._completed += 1
                self._in_flight -= 1
            self._finish_job(job, "completed")
            job.future.set_result(result)

    def _fail_job(self, job: _Job, exc: BaseException) -> None:
        """Account one in-flight job as failed and fail its Future."""
        with self._lock:
            self._failed += 1
            self._in_flight -= 1
        self._finish_job(job, "failed")
        job.future.set_exception(exc)

    def _stop_workers(self) -> None:
        """Scheduler shutdown hook: release every batch-queue worker."""
        for _ in self._workers:
            self._batches.put(_SHUTDOWN)

    def _abandon_jobs(self, jobs: list, exc: BaseException) -> None:
        """Scheduler flush-failure hook: fail members never dispatched.

        These jobs were admitted but never became in-flight, so only
        quota, outcome counters and the Futures need settling.
        """
        for job in jobs:
            with self._lock:
                self._failed += 1
            job.tenant.release()
            self._m_requests.labels(
                outcome="failed", tenant=job.tenant.tenant_id
            ).inc()
            if not job.future.done():
                job.future.set_exception(exc)

    def _execute_batch(self, batch: Batch) -> None:
        """Run one scheduler-formed compatibility group on this worker."""
        self._m_queue_depth.set(self._queue.qsize())
        live: list[_Job] = []
        for job in batch.jobs:
            if not job.future.set_running_or_notify_cancel():
                continue
            self._m_queue_wait.labels(
                tenant=job.tenant.tenant_id
            ).observe(max(0.0, self._clock() - job.submitted_at))
            live.append(job)
        if not live:
            return
        with self._lock:
            self._in_flight += len(live)
        self._m_in_flight.inc(len(live))
        ready: list[_Job] = []
        for job in live:
            # The same admission failpoint every single request passes
            # through: an armed fault fails exactly this member.
            try:
                fire("serve.handle")
            except BaseException as exc:  # repolint: allow[broad-except] — to the future
                self._fail_job(job, exc)
                continue
            ready.append(job)
        if ready:
            self._run_group(batch, ready)

    def _run_group(self, batch: Batch, jobs: "list[_Job]") -> None:
        """First attempt as one group, then settle members one by one."""
        try:
            outcomes = self._translate_batch(batch, jobs)
        except BaseException as exc:  # repolint: allow[broad-except] — to the futures
            outcomes = [exc] * len(jobs)
        for job, outcome in zip(jobs, outcomes):
            if isinstance(outcome, BaseException):
                self._fail_job(job, outcome)
                continue
            try:
                result = self._finish_translation(job, outcome, 0)
            except BaseException as exc:  # repolint: allow[broad-except] — to the future
                self._fail_job(job, exc)
                continue
            with self._lock:
                self._completed += 1
                self._in_flight -= 1
            self._finish_job(job, "completed")
            job.future.set_result(result)

    def _translate_batch(self, batch: Batch, jobs: "list[_Job]") -> list:
        """One group forward on one shard lease; one outcome per member.

        Returns a list parallel to *jobs* whose entries are each either
        the member's first-attempt :class:`RankedResult` or the
        exception that member raised — neighbours never see each
        other's faults.  The whole group runs on a single atomically
        captured ``(pipeline, epoch)`` lease, so a concurrent hot swap
        can never tear the batch across epochs.
        """
        with registry_scope(self.registry):
            with self.router.lease_group(
                batch.tenant_id, len(jobs)
            ) as lease:
                for job in jobs:
                    job.shard_epoch = lease.epoch
                    job.batch_size = len(jobs)
                self._journal_batch(batch, lease.epoch, len(jobs))
                tracer = Tracer()
                with trace_scope(tracer):
                    with tracer.span(
                        "serve.batch",
                        size=len(jobs),
                        tenant=batch.tenant_id,
                        epoch=lease.epoch,
                        reason=batch.reason,
                    ):
                        return self._rank_members(lease.pipeline, jobs)

    def _rank_members(self, pipeline, jobs: "list[_Job]") -> list:
        """Rank the group, preferring one batched forward.

        ``translate_many`` amortizes the stage-1/stage-2 matrix
        forwards across the group (PR 5) and threads each member's own
        deadline; a shard without it — or a batched forward that fails
        outright — falls back to member-by-member isolation on the same
        lease, where one member's exception becomes only that member's
        outcome.  Per-translation faults never surface here either
        way: the pipeline degrades them into the member's report.
        """
        batched = getattr(pipeline, "translate_many", None)
        if batched is not None and len(jobs) > 1:
            try:
                results = list(
                    batched(
                        [(job.question, job.db) for job in jobs],
                        deadlines=[job.deadline for job in jobs],
                    )
                )
            except Exception:  # repolint: allow[broad-except] — fall back to member isolation
                results = None
            if results is not None and len(results) == len(jobs):
                for result in results:
                    self._observe(result.report)
                return results
        outcomes: list = []
        for job in jobs:
            try:
                with deadline_scope(job.deadline):
                    result = pipeline.translate_ranked_report(
                        job.question, job.db
                    )
            except BaseException as exc:  # repolint: allow[broad-except] — member isolation
                outcomes.append(exc)
                continue
            self._observe(result.report)
            outcomes.append(result)
        return outcomes

    def _journal_batch(self, batch: Batch, epoch: int, size: int) -> None:
        """One ``batch_flush`` journal line per dispatched group."""
        if self._journal is None:
            return
        record = {
            "event": "batch_flush",
            "tenant": batch.tenant_id,
            "shard_epoch": epoch,
            "size": size,
            "reason": batch.reason,
            "wait_s": round(max(0.0, batch.wait_s), 6),
        }
        try:
            self._journal.append(record)
        except Exception:  # repolint: allow[broad-except] — journalling never fails a batch
            pass

    def _finish_job(self, job: _Job, outcome: str) -> None:
        job.tenant.release()
        tenant_id = job.tenant.tenant_id
        self._m_in_flight.dec()
        self._m_requests.labels(outcome=outcome, tenant=tenant_id).inc()
        self._m_latency.labels(tenant=tenant_id).observe(
            max(0.0, self._clock() - job.submitted_at)
        )

    def _handle(self, job: _Job) -> RankedResult:
        fire("serve.handle")
        return self._finish_translation(job, self._attempt(job), 0)

    def _attempt(self, job: _Job) -> RankedResult:
        """One single-request translation attempt on a fresh lease."""
        # The registry scope routes the pipeline's per-stage metrics
        # (and breaker-transition callbacks) into this service's
        # registry even though workers run outside the constructor's
        # context.  The shard lease is taken per attempt: one
        # translation runs entirely on one (pipeline, epoch) pair,
        # and a retry after a hot swap lands on the new shard.
        with registry_scope(self.registry), deadline_scope(job.deadline):
            with self.router.lease(job.tenant.tenant_id) as lease:
                job.shard_epoch = lease.epoch
                result = lease.pipeline.translate_ranked_report(
                    job.question, job.db
                )
        self._observe(result.report)
        return result

    def _finish_translation(
        self, job: _Job, result: RankedResult, attempt: int
    ) -> RankedResult:
        """Settle a first attempt: bounded transient retries + publish.

        Shared by the single path (first attempt from :meth:`_attempt`)
        and the batched path (first attempt from the group forward);
        retries always run singly, each on a fresh lease.
        """
        while (
            self._retryable(result)
            and attempt < self.config.max_retries
            and not self._deadline_over(job.deadline)
        ):
            with self._lock:
                self._retried += 1
            self._m_retries.labels(tenant=job.tenant.tenant_id).inc()
            self._sleep(self._backoff(attempt))
            attempt += 1
            result = self._attempt(job)
        self._publish(job, result, attempt)
        return result

    def _request_record(
        self, job: _Job, result: RankedResult, retries: int
    ) -> dict:
        """The request's journal-style summary record."""
        report = result.report
        return {
            "event": "translate",
            "tenant": job.tenant.tenant_id,
            "shard_epoch": job.shard_epoch,
            "batch_size": job.batch_size,
            "question": job.question,
            "ok": bool(result.translations),
            "translations": len(result.translations),
            "degraded": report.degraded,
            "deadline_expired": report.deadline_expired,
            "lint_rejected": report.lint_rejected,
            "lint_codes": dict(sorted(report.lint_codes.items())),
            "verify_demoted": report.verify_demoted,
            "verify_outcomes": dict(sorted(report.verify_outcomes.items())),
            "repair_attempts": report.repair_attempts,
            "repair_succeeded": report.repair_succeeded,
            "faults": [
                {"stage": f.stage, "fallback": f.fallback}
                for f in report.faults
            ],
            "retries": retries,
            "latency_s": round(
                max(0.0, self._clock() - job.submitted_at), 6
            ),
            "stages": {
                stage: round(seconds, 6)
                for stage, seconds in report.stage_durations().items()
            },
        }

    def _publish(
        self, job: _Job, result: RankedResult, retries: int
    ) -> None:
        """Fan the finished request out to journal, SLO engine, recorder.

        Runs on the worker thread after the retry loop settles; none of
        the sinks may fail the request (journalling swallows errors, the
        SLO engine and recorder only touch their own state plus the
        service registry captured at construction).
        """
        record = self._request_record(job, result, retries)
        if self._journal is not None:
            try:
                self._journal.append(record)
            except Exception:  # repolint: allow[broad-except] — journalling never fails a request
                pass
        alerting = False
        if self.slo_engine is not None:
            self.slo_engine.observe(record)
            alerting = self.slo_engine.alerting()
        if self.recorder is not None:
            self.recorder.consider(
                record, report=result.report, slo_alerting=alerting
            )

    @staticmethod
    def _retryable(result: RankedResult) -> bool:
        """An empty answer caused by a transient terminal fault."""
        if result.translations:
            return False
        return any(
            record.transient and record.fallback != "retry"
            for record in result.report.faults
        )

    @staticmethod
    def _deadline_over(deadline: Deadline | None) -> bool:
        return deadline is not None and deadline.expired()

    def _backoff(self, attempt: int) -> float:
        """Full-jitter exponential backoff (AWS-style)."""
        ceiling = min(
            self.config.backoff_cap, self.config.backoff_base * (2**attempt)
        )
        return self._rng.uniform(0.0, ceiling)

    def _observe(self, report: TranslationReport) -> None:
        with self._lock:
            self._recent_reports.append(report)
            if report.deadline_expired:
                self._deadline_expired += 1

    # ------------------------------------------------------------------
    # Health and lifecycle.

    def health(self) -> HealthSnapshot:
        """Snapshot queue, counters, breakers, rolling degraded-rate.

        Every counter — including ``accepting`` and the uptime read —
        is taken under the one service lock, so the snapshot is a
        consistent point-in-time view, not a mix of racing reads.  The
        per-tenant section (and the top-level ``breakers``, which stays
        the default tenant's board for backward compatibility) is
        assembled outside the lock: tenant state has its own locks.
        """
        board = getattr(self.pipeline, "breakers", None)
        tenants = self.router.snapshot()
        with self._lock:
            return HealthSnapshot(
                accepting=self._accepting,
                queue_depth=self._queue.qsize(),
                queue_capacity=self.config.queue_limit,
                workers=len(self._workers),
                in_flight=self._in_flight,
                completed=self._completed,
                rejected=self._rejected,
                retried=self._retried,
                failed=self._failed,
                degraded_rate=reports_degraded_rate(self._recent_reports),
                deadline_expired=self._deadline_expired,
                breakers=board.states() if board is not None else {},
                uptime_seconds=max(0.0, self._clock() - self._started),
                tenants=tenants,
            )

    def swap(self, source, tenant: str | None = None, config=None) -> int:
        """Hot-swap a tenant's shard with zero downtime.

        Passthrough to :meth:`repro.tenancy.router.Router.swap` (None
        addresses the default/only tenant): in-flight requests finish on
        the old shard, new admissions see the new epoch, and a corrupt
        snapshot rolls back automatically with a typed
        :class:`~repro.sqlkit.errors.TenantSwapError`.
        """
        tenant_obj = self.router.resolve(tenant)
        with registry_scope(self.registry):
            return self.router.swap(tenant_obj.tenant_id, source, config)

    def metrics(self) -> str:
        """The service's registry in the Prometheus text format.

        The endpoint-style companion to :meth:`health`: scrape-ready
        text covering the queue/latency/outcome metrics recorded here
        plus the per-stage pipeline metrics recorded under this
        service's ambient registry scope.
        """
        self._m_queue_depth.set(self._queue.qsize())
        with self._lock:
            self._m_in_flight.set(self._in_flight)
        return self.registry.render_prometheus()

    # ------------------------------------------------------------------
    # Operational intelligence (SLO engine / recorder / ops endpoint).

    @property
    def ops_address(self) -> "tuple[str, int] | None":
        """``(host, port)`` of the live ops endpoint, or None."""
        return self._ops.address if self._ops is not None else None

    @property
    def ops_url(self) -> str | None:
        """Base URL of the live ops endpoint, or None."""
        return self._ops.url if self._ops is not None else None

    def _slo_statuses(self) -> list:
        if self.slo_engine is None:
            return []
        return self.slo_engine.evaluate()

    def _recorder_entries(
        self, tenant: str | None = None, limit: int | None = None
    ) -> list[dict]:
        if self.recorder is None:
            return []
        return self.recorder.entries(tenant=tenant, limit=limit)

    def _on_router_event(self, record: dict) -> None:
        """Flight-record swap rollbacks (wired as ``Router.on_event``)."""
        if self.recorder is None:
            return
        if record.get("outcome") == "rollback":
            self.recorder.capture(record, reason="swap_rollback")

    def dump_bundle(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the flight recorder's debug bundle for this service.

        The bundle carries the captured entries plus the service's
        current metrics snapshot, health snapshot, and SLO state — one
        file an operator can pull off a degraded box and inspect with
        ``tools/opsctl.py render``.  Requires an enabled recorder.
        """
        if self.recorder is None:
            raise ConfigError(
                "dump_bundle needs a flight recorder "
                "(set ServiceConfig.recorder_capacity > 0)"
            )
        return self.recorder.dump_bundle(
            path,
            health=self.health().as_dict(),
            slo=[status.as_dict() for status in self._slo_statuses()],
            registry=self.registry,
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting; drain admitted requests; stop the workers.

        The ops endpoint is closed after the workers drain (so a scrape
        can still observe the drain) and before the journal closes (its
        sources stop being read before their sink goes away).
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if self._batcher is not None:
            # One sentinel wakes the scheduler; it flushes whatever is
            # still forming, then forwards a per-worker sentinel to the
            # batch queue behind the already-dispatched batches.
            self._queue.put(_SHUTDOWN)
        else:
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        if wait:
            if self._batcher is not None:
                self._batcher.join()
            for worker in self._workers:
                worker.join()
        if self._ops is not None:
            self._ops.close()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "TranslationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Recovery.

    @classmethod
    def from_checkpoint(
        cls,
        source: str | pathlib.Path,
        config: ServiceConfig | None = None,
        pipeline_config=None,
    ) -> "TranslationService":
        """Warm-start a service from durable state.

        *source* is either one checkpoint directory (as written by
        :func:`repro.core.persist.save_pipeline`) or the root of a
        :class:`repro.serve.checkpoint.CheckpointStore`, in which case
        the last *good* checkpoint is used — corrupt or torn snapshots
        are skipped.
        """
        from repro.core.persist import load_pipeline
        from repro.serve.checkpoint import CheckpointStore

        root = pathlib.Path(source)
        if (root / "manifest.json").is_file():
            pipeline = load_pipeline(root, pipeline_config)
        else:
            pipeline = CheckpointStore(root).load_latest(pipeline_config)
        return cls(pipeline, config)
