"""Rotating checkpoint store with last-good recovery.

:class:`CheckpointStore` manages a directory of numbered pipeline
snapshots (``ckpt-00000001``, ``ckpt-00000002``, ...) plus an atomically
updated ``LATEST`` pointer file.  Each snapshot is written with the
crash-safe :func:`repro.core.persist.save_pipeline` (staged + renamed,
checksummed manifest), so the store's recovery walk is simple: try the
pointer's snapshot, then every older snapshot newest-first, skipping
anything :func:`~repro.core.persist.load_pipeline` rejects as corrupt —
a process crash mid-save or a bit-flipped file costs one snapshot, not
the service.
"""

from __future__ import annotations

import os
import pathlib
import re
import shutil
import time

from repro.core.persist import load_pipeline, save_pipeline
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.obs.metrics import get_registry
from repro.sqlkit.errors import CheckpointError

_SNAPSHOT = re.compile(r"^ckpt-(\d{8})$")
_LATEST = "LATEST"


def _observe_seconds(name: str, help: str, seconds: float) -> None:
    get_registry().histogram(name, help).observe(seconds)


class CheckpointStore:
    """Keep the last *keep* good checkpoints of a pipeline under *root*.

    An optional *journal* (:class:`repro.obs.journal.Journal`) receives
    a ``checkpoint_skipped`` event for every corrupt/torn snapshot the
    recovery walk steps over — the happy path used to skip silently,
    which hid slow media corruption until the last good snapshot was
    gone.
    """

    def __init__(
        self, root: str | pathlib.Path, keep: int = 3, journal=None
    ) -> None:
        if keep < 1:
            raise ValueError("a checkpoint store must keep at least one")
        self.root = pathlib.Path(root)
        self.keep = keep
        self.journal = journal

    # ------------------------------------------------------------------
    # Inspection.

    def snapshots(self) -> list[pathlib.Path]:
        """Snapshot directories, oldest first."""
        if not self.root.is_dir():
            return []
        found = [
            path
            for path in self.root.iterdir()
            if path.is_dir() and _SNAPSHOT.match(path.name)
        ]
        return sorted(found, key=lambda path: path.name)

    def latest(self) -> pathlib.Path | None:
        """The pointer's snapshot, or the newest on disk as a fallback."""
        pointer = self.root / _LATEST
        if pointer.is_file():
            name = pointer.read_text().strip()
            candidate = self.root / name
            if _SNAPSHOT.match(name) and candidate.is_dir():
                return candidate
        snapshots = self.snapshots()
        return snapshots[-1] if snapshots else None

    # ------------------------------------------------------------------
    # Writing.

    def save(self, pipeline: MetaSQL) -> pathlib.Path:
        """Write a new snapshot, advance ``LATEST``, prune old ones."""
        self.root.mkdir(parents=True, exist_ok=True)
        snapshots = self.snapshots()
        if snapshots:
            last_index = int(_SNAPSHOT.match(snapshots[-1].name).group(1))
        else:
            last_index = 0
        path = self.root / f"ckpt-{last_index + 1:08d}"
        started = time.perf_counter()
        save_pipeline(pipeline, path)
        self._write_pointer(path.name)
        self._prune(keep_name=path.name)
        _observe_seconds(
            "checkpoint_save_seconds",
            "Wall seconds to write, point at, and prune one snapshot.",
            time.perf_counter() - started,
        )
        return path

    def _write_pointer(self, name: str) -> None:
        pointer = self.root / _LATEST
        staged = self.root / f".{_LATEST}.tmp"
        with open(staged, "w") as handle:
            handle.write(name + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, pointer)

    def _prune(self, keep_name: str) -> None:
        self.prune(protect=keep_name)

    def prune(self, keep: int | None = None, protect: str | None = None) -> list[str]:
        """Delete stale ``ckpt-NNNNNNNN`` rotations beyond *keep*.

        *keep* defaults to the store's configured retention; the
        ``LATEST`` pointer's snapshot (and *protect*, when given) is
        never deleted even if it falls in the stale range.  Returns the
        deleted snapshot names, oldest first.
        """
        if keep is None:
            keep = self.keep
        if keep < 1:
            raise ValueError("prune must keep at least one snapshot")
        pointer = self.latest()
        protected = {protect} if protect else set()
        if pointer is not None:
            protected.add(pointer.name)
        snapshots = self.snapshots()
        excess = len(snapshots) - keep
        deleted: list[str] = []
        for path in snapshots[:excess] if excess > 0 else []:
            if path.name in protected:
                continue
            shutil.rmtree(path, ignore_errors=True)
            deleted.append(path.name)
        return deleted

    # ------------------------------------------------------------------
    # Recovery.

    def load_latest(
        self, config: MetaSQLConfig | None = None
    ) -> MetaSQL:
        """Restore the last *good* checkpoint.

        Tries the ``LATEST`` pointer first, then every remaining
        snapshot newest-first; snapshots that fail verification
        (truncated, bit-flipped, torn) are skipped.  Raises
        :class:`CheckpointError` only when no snapshot loads.
        """
        tried: list[tuple[str, str]] = []
        started = time.perf_counter()
        for path in self._recovery_order():
            try:
                pipeline = load_pipeline(path, config)
            except CheckpointError as exc:
                tried.append((path.name, str(exc)))
                self._record_skip(path.name, exc)
                continue
            _observe_seconds(
                "checkpoint_load_seconds",
                "Wall seconds to restore the last good snapshot "
                "(includes skipped corrupt ones).",
                time.perf_counter() - started,
            )
            return pipeline
        detail = (
            "; ".join(f"{name}: {why}" for name, why in tried)
            or "store is empty"
        )
        raise CheckpointError(
            f"no loadable checkpoint under {self.root} ({detail})",
            path=self.root,
        )

    def _record_skip(self, name: str, exc: CheckpointError) -> None:
        """A corrupt snapshot was stepped over: count it and journal it.

        Silent skipping is the recovery walk working as designed, but it
        must still be *observable* — a store quietly burning through its
        rotation is a disk going bad.
        """
        get_registry().counter(
            "metasql_checkpoint_skipped_corrupt_total",
            "Corrupt/torn snapshots skipped during recovery.",
        ).inc()
        if self.journal is None:
            return
        try:
            self.journal.append(
                {
                    "event": "checkpoint_skipped",
                    "store": str(self.root),
                    "snapshot": name,
                    "error": str(exc),
                }
            )
        except Exception:  # repolint: allow[broad-except] — journalling never fails recovery
            pass

    def _recovery_order(self) -> list[pathlib.Path]:
        ordered: list[pathlib.Path] = []
        pointer = self.latest()
        if pointer is not None:
            ordered.append(pointer)
        for path in reversed(self.snapshots()):
            if path not in ordered:
                ordered.append(path)
        return ordered
