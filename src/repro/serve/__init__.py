"""Serving + durability layer: the production shell around the pipeline.

- :class:`TranslationService` — bounded work queue, worker pool,
  admission control (typed ``Overloaded`` shedding), per-request
  deadlines, transient-fault retry with jittered backoff, and a
  health/readiness snapshot.
- :class:`MicroBatcher` — the continuous micro-batching scheduler that
  (with ``ServiceConfig.batching`` on) regroups queued requests into
  per-tenant batches each ranked with one ``translate_many`` forward.
- :class:`CheckpointStore` — rotating crash-safe checkpoints with
  last-good recovery, for warm-starting a service after a crash.

Multi-tenant serving (registry, router seam, quotas, hot swap) lives in
:mod:`repro.tenancy`; the service accepts a
:class:`~repro.tenancy.router.Router` wherever it accepts a pipeline.
"""

from repro.serve.batcher import Batch, MicroBatcher, PreformedGroup
from repro.serve.checkpoint import CheckpointStore
from repro.serve.service import (
    HealthSnapshot,
    ServiceConfig,
    TranslationService,
)

__all__ = [
    "Batch",
    "CheckpointStore",
    "HealthSnapshot",
    "MicroBatcher",
    "PreformedGroup",
    "ServiceConfig",
    "TranslationService",
]
