"""Serving + durability layer: the production shell around the pipeline.

- :class:`TranslationService` — bounded work queue, worker pool,
  admission control (typed ``Overloaded`` shedding), per-request
  deadlines, transient-fault retry with jittered backoff, and a
  health/readiness snapshot.
- :class:`CheckpointStore` — rotating crash-safe checkpoints with
  last-good recovery, for warm-starting a service after a crash.
"""

from repro.serve.checkpoint import CheckpointStore
from repro.serve.service import (
    HealthSnapshot,
    ServiceConfig,
    TranslationService,
)

__all__ = [
    "CheckpointStore",
    "HealthSnapshot",
    "ServiceConfig",
    "TranslationService",
]
