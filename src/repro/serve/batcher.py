"""Cross-request continuous micro-batching for the serving layer.

:class:`MicroBatcher` is the scheduler half of ROADMAP item 1: a single
daemon thread that drains the service's admission queue and regroups
individually submitted requests into *compatibility groups* that one
worker can rank with a single batched ``translate_many`` forward —
turning the 10× stage-1/stage-2 amortization PR 5 proved offline into
service throughput for live traffic.

The scheduler is a classic continuous-batching loop:

1. Block until one request arrives (idle costs nothing).
2. Greedily drain whatever else is already queued, then keep collecting
   until the **tick** (``wait_s``) elapses, the **size** threshold
   (``max_size``) is reached, a **pre-formed group** (a ``submit_many``
   bulk submit) arrives, or a member's **deadline** shrinks the budget
   to zero — tightest-deadline-wins: a request whose remaining budget
   cannot cover the tick *plus* execution headroom flushes the forming
   batch immediately instead of waiting it out.
3. Split the collected requests by compatibility key (the tenant — each
   tenant owns its own shard, and the worker leases the shard's
   ``(pipeline, epoch)`` pair exactly once per group, so a hot swap can
   never tear a batch), chunk to ``max_size``, and hand each
   :class:`Batch` to the worker pool.

The scheduler owns no execution: faults, breakers, retries and futures
stay with the service's workers, so an open stage breaker or an armed
``serve.handle`` failpoint fails exactly the members it would have
failed singly — batching changes *when* requests run, never *what*
happens to them.

Observability: every flushed batch lands in the
``metasql_serve_batch_size`` / ``metasql_serve_batch_wait_seconds``
histograms, ``metasql_serve_batch_flush_total{reason}`` and
``metasql_serve_batched_requests_total{tenant}`` counters (see the
DESIGN.md metric catalog), plus a thread-safe :meth:`stats` snapshot
for tests and health tooling.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.devtools.lockdep import new_lock
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sqlkit.errors import ConfigError

#: Histogram buckets for requests-per-batch (sizes, not seconds).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

#: Every reason a forming batch can flush with (documented in §17).
FLUSH_REASONS: tuple[str, ...] = (
    "size", "tick", "deadline", "preformed", "shutdown",
)


class PreformedGroup:
    """A bulk-submitted group routed around the tick wait.

    ``TranslationService.submit_many`` (batching on) admits the whole
    group, wraps it in one of these, and enqueues it as a single
    admission-queue item: the scheduler flushes it — merged with any
    already-forming batch — immediately, with ``reason="preformed"``,
    instead of re-discovering the batch one tick at a time.
    """

    __slots__ = ("jobs",)

    def __init__(self, jobs: list) -> None:
        self.jobs = list(jobs)


@dataclass
class Batch:
    """One compatibility group the scheduler hands to a worker.

    Every member shares the compatibility key (``tenant_id``), so the
    worker leases that tenant's shard once for the whole group and all
    members run on one atomically captured ``(pipeline, epoch)`` pair.
    """

    jobs: list = field(default_factory=list)
    tenant_id: str = ""
    #: Why the batch flushed: one of :data:`FLUSH_REASONS`.
    reason: str = "tick"
    #: Seconds between the first member's arrival and the flush.
    wait_s: float = 0.0


class MicroBatcher:
    """Continuous micro-batching scheduler over an admission queue.

    Parameters are deliberately duck-typed so the scheduler stays
    testable without a full service: *source* is any ``queue.Queue``
    yielding jobs (objects with ``deadline`` and ``future`` attributes),
    the *sentinel*, or :class:`PreformedGroup` wrappers; *dispatch*
    receives each formed :class:`Batch`; *group_key* maps a job to its
    compatibility key; *on_shutdown* runs once after the sentinel is
    observed (the service uses it to forward per-worker shutdown
    sentinels to the batch queue).
    """

    def __init__(
        self,
        source: "queue.Queue",
        dispatch: Callable[[Batch], None],
        *,
        wait_s: float,
        max_size: int,
        group_key: Callable[[object], str],
        sentinel: object,
        on_shutdown: Callable[[], None] | None = None,
        on_error: Callable[[list, BaseException], None] | None = None,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if wait_s < 0:
            raise ConfigError(f"batch wait must be >= 0 s, got {wait_s!r}")
        if max_size < 1:
            raise ConfigError(f"max batch size must be >= 1, got {max_size!r}")
        self._source = source
        self._dispatch = dispatch
        self._wait_s = float(wait_s)
        self._max_size = int(max_size)
        self._group_key = group_key
        self._sentinel = sentinel
        self._on_shutdown = on_shutdown
        self._on_error = on_error
        self._clock = clock if clock is not None else time.monotonic
        registry = registry if registry is not None else get_registry()
        self._m_batch_size = registry.histogram(
            "metasql_serve_batch_size",
            "Members per flushed micro-batch.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._m_batch_wait = registry.histogram(
            "metasql_serve_batch_wait_seconds",
            "Seconds a forming micro-batch waited before flushing.",
        )
        self._m_flushes = registry.counter(
            "metasql_serve_batch_flush_total",
            "Flushed micro-batches by flush reason.",
            labelnames=("reason",),
        )
        self._m_batched = registry.counter(
            "metasql_serve_batched_requests_total",
            "Requests dispatched through the micro-batcher, by tenant.",
            labelnames=("tenant",),
        )
        self._lock = new_lock("MicroBatcher._lock")
        self._flush_reasons: dict[str, int] = {}
        self._batches = 0
        self._requests = 0
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="metasql-serve-batcher", daemon=True
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for the scheduler thread to exit (after the sentinel)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stats(self) -> dict:
        """Thread-safe scheduler counters (tests/health tooling)."""
        with self._lock:
            return {
                "batches": self._batches,
                "requests": self._requests,
                "flush_reasons": dict(sorted(self._flush_reasons.items())),
            }

    # ------------------------------------------------------------------
    # The scheduler loop.

    def _loop(self) -> None:
        while True:
            item = self._source.get()
            if item is self._sentinel:
                self._finish_shutdown()
                return
            if isinstance(item, PreformedGroup):
                self._flush_safely(item.jobs, "preformed", 0.0)
                continue
            if not self._collect_and_flush(item):
                return

    def _collect_and_flush(self, first) -> bool:
        """Form one batch starting from *first*; False ends the loop."""
        pending = [first]
        started = self._clock()
        cutoff = self._shrink(started + self._wait_s, first, started)
        reason: str | None = None
        while len(pending) < self._max_size:
            try:
                # Greedy drain: anything already queued joins for free.
                nxt = self._source.get_nowait()
            except queue.Empty:
                now = self._clock()
                if now >= cutoff:
                    reason = self._cutoff_reason(cutoff, started)
                    break
                try:
                    nxt = self._source.get(timeout=cutoff - now)
                except queue.Empty:
                    reason = self._cutoff_reason(cutoff, started)
                    break
            if nxt is self._sentinel:
                self._flush_safely(
                    pending, "shutdown", self._clock() - started
                )
                self._finish_shutdown()
                return False
            if isinstance(nxt, PreformedGroup):
                pending.extend(nxt.jobs)
                reason = "preformed"
                break
            pending.append(nxt)
            cutoff = self._shrink(cutoff, nxt, self._clock())
        self._flush_safely(
            pending, reason or "size", self._clock() - started
        )
        return True

    def _shrink(self, cutoff: float, job, now: float) -> float:
        """Tightest-deadline-wins: shrink the tick for urgent members.

        A member needs its remaining budget for *execution*, not for
        sitting in a forming batch: with ``remaining >= 2 * wait_s``
        the full tick is affordable; below that the wait shrinks
        linearly, and a member that cannot survive the tick at all
        (``remaining <= wait_s``) flushes immediately.
        """
        deadline = getattr(job, "deadline", None)
        if deadline is None:
            return cutoff
        remaining = deadline.remaining()
        if not math.isfinite(remaining):
            return cutoff
        affordable = max(0.0, min(self._wait_s, remaining - self._wait_s))
        return min(cutoff, now + affordable)

    def _cutoff_reason(self, cutoff: float, started: float) -> str:
        return "deadline" if cutoff < started + self._wait_s else "tick"

    def _finish_shutdown(self) -> None:
        if self._on_shutdown is not None:
            self._on_shutdown()

    # ------------------------------------------------------------------
    # Flushing.

    def _flush_safely(
        self, pending: list, reason: str, wait_s: float
    ) -> None:
        """Flush, never letting a dispatch failure kill the scheduler."""
        if not pending:
            return
        try:
            self._flush(pending, reason, wait_s)
        except Exception as exc:  # repolint: allow[broad-except] — fail members, keep scheduling
            if self._on_error is not None:
                self._on_error(pending, exc)
            else:
                for job in pending:
                    future = getattr(job, "future", None)
                    if future is not None and not future.done():
                        future.set_exception(exc)

    def _flush(self, pending: list, reason: str, wait_s: float) -> None:
        """Group by compatibility key, chunk to max size, dispatch."""
        wait_s = max(0.0, wait_s)
        groups: dict[str, list] = {}
        for job in pending:
            groups.setdefault(self._group_key(job), []).append(job)
        for tenant_id, jobs in groups.items():
            for index in range(0, len(jobs), self._max_size):
                chunk = jobs[index : index + self._max_size]
                self._record(tenant_id, len(chunk), reason, wait_s)
                self._dispatch(
                    Batch(
                        jobs=chunk,
                        tenant_id=tenant_id,
                        reason=reason,
                        wait_s=wait_s,
                    )
                )

    def _record(
        self, tenant_id: str, size: int, reason: str, wait_s: float
    ) -> None:
        self._m_batch_size.observe(size)
        self._m_batch_wait.observe(wait_s)
        self._m_flushes.labels(reason=reason).inc()
        self._m_batched.labels(tenant=tenant_id).inc(size)
        with self._lock:
            self._batches += 1
            self._requests += size
            self._flush_reasons[reason] = (
                self._flush_reasons.get(reason, 0) + 1
            )
