"""Relational substrate: schema model, in-memory database, SQL executor."""

from repro.schema.database import Database
from repro.schema.executor import (
    ExecutionBudget,
    budget_scope,
    current_budget,
    execute,
)
from repro.schema.schema import Column, ForeignKey, Schema, Table

__all__ = [
    "Column",
    "ForeignKey",
    "Schema",
    "Table",
    "Database",
    "ExecutionBudget",
    "budget_scope",
    "current_budget",
    "execute",
]
