"""Database schema model with NL annotations.

A :class:`Schema` describes tables, typed columns and foreign keys, plus the
natural-language phrases used by the benchmark generators and the SQL-to-NL
templates.  Identifiers are matched case-insensitively; the canonical form is
lowercase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlkit.errors import SchemaError

#: Supported column types.
TEXT = "text"
NUMBER = "number"


@dataclass(frozen=True)
class Column:
    """One column: name, type and the NL phrase used to talk about it."""

    name: str
    ctype: str = TEXT
    phrase: str | None = None
    synonyms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.ctype not in (TEXT, NUMBER):
            raise ValueError(f"unknown column type: {self.ctype}")

    @property
    def nl(self) -> str:
        if self.phrase is not None:
            return self.phrase
        return self.name.replace("_", " ").lower()


@dataclass(frozen=True)
class Table:
    """One table: name, columns and the NL phrase for its entity."""

    name: str
    columns: tuple[Column, ...]
    phrase: str | None = None
    synonyms: tuple[str, ...] = ()

    @property
    def nl(self) -> str:
        if self.phrase is not None:
            return self.phrase
        return self.name.replace("_", " ").lower()

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-primary key pair: (child table.column) -> (parent table.column)."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


@dataclass(frozen=True)
class Schema:
    """A database schema: identifier, tables and foreign keys."""

    db_id: str
    tables: tuple[Table, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()

    def table(self, name: str) -> Table:
        lowered = name.lower()
        for table in self.tables:
            if table.name.lower() == lowered:
                return table
        raise SchemaError(f"no table {name!r} in database {self.db_id!r}")

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(t.name.lower() == lowered for t in self.tables)

    def tables_of_column(self, column: str) -> list[Table]:
        """All tables containing a column with the given name."""
        return [t for t in self.tables if t.has_column(column)]

    def resolve_column(self, column: str, tables: tuple[str, ...]) -> str | None:
        """Find which of *tables* owns *column*; None when ambiguous/absent."""
        owners = [
            t for t in tables if self.has_table(t) and self.table(t).has_column(column)
        ]
        if len(owners) == 1:
            return owners[0]
        return None

    def is_key_column(self, table: str, column: str) -> bool:
        """True when the column participates in a PK/FK relationship.

        Uses declared foreign keys plus an ``*id`` naming heuristic; key
        columns are rarely projected in natural questions.
        """
        table_l, column_l = table.lower(), column.lower()
        for fk in self.foreign_keys:
            if (fk.child_table.lower(), fk.child_column.lower()) == (
                table_l,
                column_l,
            ):
                return True
            if (fk.parent_table.lower(), fk.parent_column.lower()) == (
                table_l,
                column_l,
            ):
                return True
        return column_l == "id" or column_l.endswith("id") or column_l.endswith("_id")

    def join_condition(self, left: str, right: str) -> ForeignKey | None:
        """The FK linking *left* and *right* directly, if any."""
        left_l, right_l = left.lower(), right.lower()
        for fk in self.foreign_keys:
            pair = (fk.child_table.lower(), fk.parent_table.lower())
            if pair in ((left_l, right_l), (right_l, left_l)):
                return fk
        return None

    def join_graph(self) -> dict[str, set[str]]:
        """Adjacency map of tables linked by foreign keys."""
        graph: dict[str, set[str]] = {t.name.lower(): set() for t in self.tables}
        for fk in self.foreign_keys:
            graph[fk.child_table.lower()].add(fk.parent_table.lower())
            graph[fk.parent_table.lower()].add(fk.child_table.lower())
        return graph

    def join_path(self, start: str, goal: str) -> list[str] | None:
        """Shortest FK path between two tables (inclusive), or None."""
        start_l, goal_l = start.lower(), goal.lower()
        if start_l == goal_l:
            return [start_l]
        graph = self.join_graph()
        if start_l not in graph or goal_l not in graph:
            return None
        frontier = [[start_l]]
        visited = {start_l}
        while frontier:
            path = frontier.pop(0)
            for neighbour in sorted(graph[path[-1]]):
                if neighbour in visited:
                    continue
                if neighbour == goal_l:
                    return path + [neighbour]
                visited.add(neighbour)
                frontier.append(path + [neighbour])
        return None

    # ------------------------------------------------------------------
    # Vocabulary protocol (repro.sqlkit.sql2nl.Vocabulary).

    def table_phrase(self, table: str) -> str:
        if self.has_table(table):
            return self.table(table).nl
        return table.replace("_", " ").lower()

    def column_phrase(self, column: str, table: str | None = None) -> str:
        if table is not None and self.has_table(table):
            owner = self.table(table)
            if owner.has_column(column):
                return owner.column(column).nl
        for owner in self.tables_of_column(column):
            return owner.column(column).nl
        return column.replace("_", " ").lower()

    def column_pairs(self) -> list[tuple[Table, Column]]:
        """Every (table, column) pair in schema order."""
        return [(t, c) for t in self.tables for c in t.columns]
