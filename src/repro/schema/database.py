"""In-memory relational database.

Rows are stored as plain dicts keyed by lowercase column name.  The database
validates inserted rows against the schema and provides the value lookups
used by MetaSQL's value-grounding step (finding which column holds a literal
mentioned in an NL question).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.schema import Schema
from repro.sqlkit.errors import SchemaError


@dataclass
class Database:
    """A schema plus its table contents."""

    schema: Schema
    rows: dict[str, list[dict[str, object]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for table in self.schema.tables:
            self.rows.setdefault(table.name.lower(), [])

    def insert(self, table: str, row: dict[str, object]) -> None:
        """Insert one row, validating column names and coercing case."""
        table_obj = self.schema.table(table)
        clean: dict[str, object] = {}
        for key, value in row.items():
            if not table_obj.has_column(key):
                raise SchemaError(
                    f"no column {key!r} in table {table_obj.name!r}"
                )
            clean[key.lower()] = value
        for column in table_obj.columns:
            clean.setdefault(column.name.lower(), None)
        self.rows[table_obj.name.lower()].append(clean)

    def insert_many(self, table: str, rows: list[dict[str, object]]) -> None:
        for row in rows:
            self.insert(table, row)

    def table_rows(self, table: str) -> list[dict[str, object]]:
        lowered = table.lower()
        if lowered not in self.rows:
            raise SchemaError(f"no table {table!r} in database")
        return self.rows[lowered]

    def column_values(self, table: str, column: str) -> list[object]:
        """All non-null values stored in a column."""
        column_l = column.lower()
        return [
            row[column_l]
            for row in self.table_rows(table)
            if row.get(column_l) is not None
        ]

    def find_value(self, value: object) -> list[tuple[str, str]]:
        """Return (table, column) pairs whose contents contain *value*.

        String comparison is case-insensitive — this powers the picklist
        search used by value grounding.
        """
        matches: list[tuple[str, str]] = []
        needle = value.lower() if isinstance(value, str) else value
        for table in self.schema.tables:
            for column in table.columns:
                for stored in self.column_values(table.name, column.name):
                    comparable = (
                        stored.lower() if isinstance(stored, str) else stored
                    )
                    if comparable == needle:
                        matches.append((table.name.lower(), column.name.lower()))
                        break
        return matches

    def size(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(rows) for rows in self.rows.values())
