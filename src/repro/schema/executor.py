"""SQL executor over the in-memory database.

Supports the Spider-compatible subset: multi-table FROM with explicit or
FK-inferred equi-joins, WHERE/HAVING with AND/OR, uncorrelated subqueries
(IN / comparison), GROUP BY with aggregates, ORDER BY with LIMIT, DISTINCT
and top-level set operations.  Used by the execution-accuracy (EX) metric
and by the interactive examples.

Semantics notes (documented divergences from full SQL):

- comparisons with NULL are false (no three-valued logic),
- string comparisons are case-insensitive (robust to NL-cased values),
- aggregates over an empty group: ``count`` is 0, others are NULL,
- a bare column under GROUP BY takes the group's first row value.

Execution is bounded by an optional :class:`ExecutionBudget` (row/step
limits) so a pathological candidate query — e.g. an accidental cartesian
product over large tables — raises :class:`ExecutionBudgetError` instead
of hanging evaluation.  The budget is ambient (a context variable), so
nested subquery execution draws from the same allowance.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.core.resilience import fire
from repro.schema.database import Database
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    Literal,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
    ValueExpr,
)
from repro.sqlkit.errors import ExecutionBudgetError, SqlExecutionError

Row = dict[str, object]
ResultRow = tuple[object, ...]


@dataclass
class ExecutionBudget:
    """Row/step limits for one top-level :func:`execute` call.

    ``max_steps`` bounds the cumulative work (row comparisons considered,
    including pre-charged join products); ``max_rows`` bounds the size of
    any single materialised intermediate row set.  ``None`` disables the
    corresponding limit.  A budget is stateful — create a fresh one per
    top-level call.
    """

    max_steps: int | None = 1_000_000
    max_rows: int | None = 100_000
    steps: int = 0

    def remaining(self) -> int | None:
        """Steps left before the budget trips (None = unlimited).

        Never negative: once exhausted the remaining allowance is 0.
        """
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps)

    @property
    def exhausted(self) -> bool:
        """Whether the step allowance has been fully consumed."""
        return self.remaining() == 0

    def charge(self, n: int = 1) -> None:
        """Consume *n* steps; raise once the step limit is exceeded."""
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            raise ExecutionBudgetError(
                "execution step budget exhausted", self.steps, self.max_steps
            )

    def charge_rows(self, n: int) -> None:
        """Account for materialising *n* rows in one intermediate set."""
        if self.max_rows is not None and n > self.max_rows:
            raise ExecutionBudgetError(
                "intermediate row budget exhausted", n, self.max_rows
            )
        self.charge(n)


_BUDGET: ContextVar[ExecutionBudget | None] = ContextVar(
    "execution_budget", default=None
)


def current_budget() -> ExecutionBudget | None:
    """The ambient :class:`ExecutionBudget` for this context, if any."""
    return _BUDGET.get()


@contextmanager
def budget_scope(
    budget: ExecutionBudget | None,
) -> Iterator[ExecutionBudget | None]:
    """Install *budget* as the ambient budget for the ``with`` body.

    Every :func:`execute` call inside the scope that does not pass an
    explicit budget charges this one *cumulatively* — the verify stage
    runs its whole top-k sweep under one allowance without manual
    per-call budget splitting::

        with budget_scope(ExecutionBudget(max_steps=50_000)) as budget:
            execute(first, db)    # charges the shared budget
            execute(second, db)   # keeps charging the same allowance
            budget.remaining()    # -> steps left for further candidates
    """
    token = _BUDGET.set(budget)
    try:
        yield budget
    finally:
        _BUDGET.reset(token)


def _charge(n: int = 1) -> None:
    budget = _BUDGET.get()
    if budget is not None:
        budget.charge(n)


def _charge_rows(n: int) -> None:
    budget = _BUDGET.get()
    if budget is not None:
        budget.charge_rows(n)


def execute(
    query: Query, db: Database, budget: ExecutionBudget | None = None
) -> list[ResultRow]:
    """Execute *query* against *db*, returning result rows as tuples.

    When *budget* is given it becomes the ambient budget for this call and
    every nested subquery; without one, the enclosing scope's budget (an
    enclosing ``execute`` call or a :func:`budget_scope`) keeps applying,
    so recursive internal calls never reset limits and repeated top-level
    calls under one scope charge the same allowance cumulatively.
    """
    fire("executor.execute")
    if budget is None:
        return _execute(query, db)
    token = _BUDGET.set(budget)
    try:
        return _execute(query, db)
    finally:
        _BUDGET.reset(token)


def _execute(query: Query, db: Database) -> list[ResultRow]:
    if isinstance(query, SetQuery):
        left = execute(query.left, db)
        right = execute(query.right, db)
        return _apply_set_op(query.op, left, right)
    return _execute_select(query, db)


def _apply_set_op(
    op: str, left: list[ResultRow], right: list[ResultRow]
) -> list[ResultRow]:
    left_set = _dedupe(left)
    right_keys = {_row_key(r) for r in right}
    if op == "union":
        merged = list(left_set)
        seen = {_row_key(r) for r in left_set}
        for row in _dedupe(right):
            if _row_key(row) not in seen:
                merged.append(row)
        return merged
    if op == "intersect":
        return [r for r in left_set if _row_key(r) in right_keys]
    if op == "except":
        return [r for r in left_set if _row_key(r) not in right_keys]
    raise SqlExecutionError(f"unknown set operation: {op}")


def _dedupe(rows: list[ResultRow]) -> list[ResultRow]:
    seen: set = set()
    out = []
    for row in rows:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _row_key(row: ResultRow):
    return tuple(
        value.lower() if isinstance(value, str) else value for value in row
    )


# ----------------------------------------------------------------------
# Single SELECT evaluation.


def _execute_select(query: SelectQuery, db: Database) -> list[ResultRow]:
    env_rows, env_columns = _build_from(query, db)
    _charge(len(env_rows))

    if query.where is not None:
        env_rows = [
            row for row in env_rows if _eval_condition(query.where, row, db)
        ]

    has_aggregate = _select_has_aggregate(query)
    if query.group_by:
        groups = _group_rows(env_rows, query.group_by, env_columns)
        if query.having is not None:
            groups = [
                g for g in groups if _eval_condition(query.having, g, db, group=True)
            ]
        result_envs: list[Row] = groups
    elif has_aggregate:
        result_envs = [{"__group__": env_rows}]
    else:
        result_envs = env_rows

    ordered = list(result_envs)
    if query.order_by:
        _charge(len(ordered) * len(query.order_by))
        # Stable multi-key sort: apply keys from least to most significant.
        for item in reversed(query.order_by):
            ordered.sort(
                key=lambda env, it=item: _orderable(
                    _eval_expr(it.expr, env, db, env_columns)
                ),
                reverse=item.desc,
            )

    # SELECT * expands to all columns of the FROM environment.
    if any(isinstance(e, Star) for e in query.select):
        projected = [
            _expand_star(query.select, env, db, env_columns) for env in ordered
        ]
    else:
        projected = [
            tuple(
                _eval_expr(expr, env, db, env_columns) for expr in query.select
            )
            for env in ordered
        ]

    if query.distinct:
        projected = _dedupe(projected)
    if query.limit is not None:
        projected = projected[: query.limit]
    return projected


def _expand_star(
    select: tuple[ValueExpr, ...], env: Row, db: Database, env_columns: list[str]
) -> ResultRow:
    values: list[object] = []
    for expr in select:
        if isinstance(expr, Star):
            if expr.table is None:
                values.extend(env.get(col) for col in env_columns)
            else:
                prefix = expr.table.lower() + "."
                values.extend(
                    env.get(col) for col in env_columns if col.startswith(prefix)
                )
        else:
            values.append(_eval_expr(expr, env, db, env_columns))
    return tuple(values)


def _orderable(value: object):
    """Total-order key tolerating mixed None/str/number values."""
    if value is None:
        return (0, 0)
    if isinstance(value, str):
        return (1, value.lower())
    if isinstance(value, bool):
        return (2, int(value))
    return (2, value)


def _select_has_aggregate(query: SelectQuery) -> bool:
    def expr_has(expr: ValueExpr) -> bool:
        if isinstance(expr, AggExpr):
            return True
        if isinstance(expr, Arith):
            return expr_has(expr.left) or expr_has(expr.right)
        return False

    return any(expr_has(e) for e in query.select)


# ----------------------------------------------------------------------
# FROM construction.


def _build_from(query: SelectQuery, db: Database) -> tuple[list[Row], list[str]]:
    from_ = query.from_
    if from_.subquery is not None:
        sub_rows = execute(from_.subquery, db)
        columns = _subquery_column_names(from_.subquery)
        env_rows = [
            dict(zip(columns, row)) for row in sub_rows
        ]
        return env_rows, columns

    schema = db.schema
    qualified_columns: list[str] = []
    for name in from_.tables:
        table = schema.table(name)
        for column in table.columns:
            qualified_columns.append(f"{table.name.lower()}.{column.name.lower()}")

    # Start with the first table, then join each next table.
    joined: list[Row] = []
    first = schema.table(from_.tables[0])
    for row in db.table_rows(first.name):
        joined.append(
            {f"{first.name.lower()}.{k}": v for k, v in row.items()}
        )
    _charge_rows(len(joined))
    attached = [first.name.lower()]

    explicit = list(from_.joins)
    for name in from_.tables[1:]:
        table = schema.table(name)
        table_l = table.name.lower()
        conditions = _join_conditions_for(
            table_l, attached, explicit, schema, from_.tables
        )
        new_rows: list[Row] = []
        right_rows = [
            {f"{table_l}.{k}": v for k, v in row.items()}
            for row in db.table_rows(table.name)
        ]
        # Pre-charge the full join product: a runaway cartesian explosion
        # must trip the budget before the work is done, not after.
        _charge(len(joined) * len(right_rows))
        for left_row, right_row in product(joined, right_rows):
            merged = {**left_row, **right_row}
            if all(
                _values_equal(merged.get(a), merged.get(b)) for a, b in conditions
            ):
                new_rows.append(merged)
        _charge_rows(len(new_rows))
        joined = new_rows
        attached.append(table_l)

    env_columns = qualified_columns
    env_rows = [_add_unqualified(row, env_columns) for row in joined]
    return env_rows, env_columns


def _subquery_column_names(query: Query) -> list[str]:
    """Column namespace exposed by a FROM-subquery."""
    while isinstance(query, SetQuery):
        query = query.left
    names = []
    for index, expr in enumerate(query.select):
        if isinstance(expr, ColumnRef):
            names.append(expr.column.lower())
        elif isinstance(expr, AggExpr) and isinstance(expr.arg, ColumnRef):
            names.append(f"{expr.func}({expr.arg.column.lower()})")
        elif isinstance(expr, AggExpr):
            names.append(f"{expr.func}(*)")
        else:
            names.append(f"col{index}")
    return names


def _join_conditions_for(
    table: str,
    attached: list[str],
    explicit: list,
    schema,
    all_tables: tuple[str, ...],
) -> list[tuple[str, str]]:
    """Equi-join key pairs linking *table* to the already-attached tables."""
    conditions: list[tuple[str, str]] = []
    for join in explicit:
        left_t = (join.left.table or "").lower()
        right_t = (join.right.table or "").lower()
        pair = {left_t, right_t}
        if table in pair and pair <= set(attached + [table]):
            conditions.append(
                (
                    f"{left_t}.{join.left.column.lower()}",
                    f"{right_t}.{join.right.column.lower()}",
                )
            )
    if conditions:
        return conditions
    # Fall back to FK inference against any attached table.
    for other in attached:
        fk = schema.join_condition(table, other)
        if fk is not None:
            conditions.append(
                (
                    f"{fk.child_table.lower()}.{fk.child_column.lower()}",
                    f"{fk.parent_table.lower()}.{fk.parent_column.lower()}",
                )
            )
            return conditions
    # No linking FK: cartesian product (matches SQL semantics for bare JOIN
    # without ON against an unrelated table).
    return []


def _add_unqualified(row: Row, env_columns: list[str]) -> Row:
    """Expose unambiguous unqualified column names alongside qualified ones."""
    out = dict(row)
    counts: dict[str, int] = {}
    for qualified in env_columns:
        bare = qualified.split(".", 1)[1]
        counts[bare] = counts.get(bare, 0) + 1
    for qualified in env_columns:
        bare = qualified.split(".", 1)[1]
        if counts[bare] == 1:
            out[bare] = row.get(qualified)
    return out


# ----------------------------------------------------------------------
# Grouping.


def _group_rows(
    rows: list[Row], group_by, env_columns: list[str]
) -> list[Row]:
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(
            _comparable(_lookup_column(ref, row)) for ref in group_by
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out: list[Row] = []
    for key in order:
        members = groups[key]
        env: Row = dict(members[0])
        env["__group__"] = members
        out.append(env)
    return out


def _comparable(value: object):
    if isinstance(value, str):
        return value.lower()
    return value


# ----------------------------------------------------------------------
# Expression and predicate evaluation.


def _lookup_column(ref: ColumnRef, row: Row) -> object:
    if ref.table is not None:
        key = f"{ref.table.lower()}.{ref.column.lower()}"
        if key in row:
            return row[key]
    key = ref.column.lower()
    if key in row:
        return row[key]
    # Qualified lookup failed: try any qualified variant.
    suffix = f".{ref.column.lower()}"
    for candidate, value in row.items():
        if isinstance(candidate, str) and candidate.endswith(suffix):
            return value
    raise SqlExecutionError(f"unknown column {ref.key()!r} in row scope")


def _eval_expr(
    expr: ValueExpr, env: Row, db: Database, env_columns: list[str] | None = None
) -> object:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return _lookup_column(expr, env)
    if isinstance(expr, Star):
        raise SqlExecutionError("bare * outside aggregate/select context")
    if isinstance(expr, AggExpr):
        members = env.get("__group__")
        if members is None:
            raise SqlExecutionError(
                f"aggregate {expr.func} used without grouping context"
            )
        return _eval_aggregate(expr, members, db)
    if isinstance(expr, Arith):
        left = _eval_expr(expr.left, env, db, env_columns)
        right = _eval_expr(expr.right, env, db, env_columns)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if right == 0:
                return None
            return left / right
        except TypeError as exc:
            raise SqlExecutionError(f"arithmetic type error: {exc}") from exc
    raise SqlExecutionError(f"cannot evaluate {type(expr).__name__}")


def _eval_aggregate(expr: AggExpr, members: list[Row], db: Database) -> object:
    if isinstance(expr.arg, Star):
        values: list[object] = [1] * len(members)
    else:
        values = []
        for member in members:
            value = _eval_expr(expr.arg, member, db)
            if value is not None:
                values.append(value)
    if expr.distinct:
        seen = set()
        unique = []
        for value in values:
            key = _comparable(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique
    if expr.func == "count":
        return len(values)
    if not values:
        return None
    if expr.func == "sum":
        return sum(values)  # type: ignore[arg-type]
    if expr.func == "avg":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if expr.func == "min":
        return min(values, key=_orderable)
    if expr.func == "max":
        return max(values, key=_orderable)
    raise SqlExecutionError(f"unknown aggregate: {expr.func}")


def _eval_condition(
    condition: Condition, env: Row, db: Database, group: bool = False
) -> bool:
    result = _eval_predicate(condition.predicates[0], env, db)
    for connector, predicate in zip(condition.connectors, condition.predicates[1:]):
        value = _eval_predicate(predicate, env, db)
        if connector == "and":
            result = result and value
        else:
            result = result or value
    return result


def _values_equal(left: object, right: object) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if isinstance(left, str) != isinstance(right, str):
        return str(left).lower() == str(right).lower()
    return left == right


def _compare(op: str, left: object, right: object) -> bool:
    if left is None or right is None:
        return False
    if op == "=":
        return _values_equal(left, right)
    if op == "!=":
        return not _values_equal(left, right)
    if isinstance(left, str) or isinstance(right, str):
        left_c, right_c = str(left).lower(), str(right).lower()
    else:
        left_c, right_c = left, right
    try:
        if op == "<":
            return left_c < right_c
        if op == ">":
            return left_c > right_c
        if op == "<=":
            return left_c <= right_c
        if op == ">=":
            return left_c >= right_c
    except TypeError:
        return False
    raise SqlExecutionError(f"unknown comparison operator: {op}")


def _eval_predicate(predicate: Predicate, env: Row, db: Database) -> bool:
    left = _eval_expr(predicate.left, env, db)
    op = predicate.op

    if isinstance(predicate.right, (SelectQuery, SetQuery)):
        sub_rows = execute(predicate.right, db)
        sub_values = [row[0] for row in sub_rows if row]
        if op == "in":
            hit = any(_values_equal(left, v) for v in sub_values)
            return hit != predicate.negated
        if not sub_values:
            return False
        # Scalar comparison against a subquery: compare with its first value
        # (the generator only emits single-value scalar subqueries).
        hit = _compare(op, left, sub_values[0])
        return hit != predicate.negated

    if op == "in":
        assert isinstance(predicate.right, tuple)
        values = [lit.value for lit in predicate.right]
        hit = any(_values_equal(left, v) for v in values)
        return hit != predicate.negated

    if op == "between":
        low = _eval_expr(predicate.right, env, db)  # type: ignore[arg-type]
        high = _eval_expr(predicate.right2, env, db)  # type: ignore[arg-type]
        hit = _compare(">=", left, low) and _compare("<=", left, high)
        return hit != predicate.negated

    if op == "like":
        right = _eval_expr(predicate.right, env, db)  # type: ignore[arg-type]
        if left is None or right is None:
            return False
        pattern = re.escape(str(right)).replace("%", ".*").replace("_", ".")
        hit = re.fullmatch(pattern, str(left), re.IGNORECASE) is not None
        return hit != predicate.negated

    right = _eval_expr(predicate.right, env, db)  # type: ignore[arg-type]
    hit = _compare(op, left, right)
    return hit != predicate.negated
