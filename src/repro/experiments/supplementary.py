"""Supplementary ablations beyond the paper's Table 9.

Two design choices DESIGN.md calls out get their own ablations:

- **value grounding** — the pipeline fills ``'value'`` placeholders before
  ranking; the paper credits this for LGESQL's EX jump (Table 4 footnote).
  We measure EX with grounding on vs off.
- **composition budget** — how many metadata compositions to condition on
  (the paper fixes the pipeline's candidate budget implicitly; we sweep it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generation import CandidateGenerator, GeneratorConfig
from repro.core.pipeline import MetaSQL
from repro.eval.evaluate import evaluate_metasql
from repro.eval.report import format_table, pct
from repro.experiments.common import ExperimentContext


@dataclass
class SupplementaryResult:
    """Value-grounding and composition-budget ablation results."""
    grounding: dict[str, dict] = field(default_factory=dict)
    budget: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        sections = [
            format_table(
                ["value grounding", "EM", "EX"],
                [
                    [label, pct(row["em"]), pct(row["ex"])]
                    for label, row in self.grounding.items()
                ],
                title="Supplementary A: value grounding ablation (LGESQL)",
            ),
            format_table(
                ["max compositions", "EM"],
                [[k, pct(v)] for k, v in self.budget.items()],
                title="Supplementary B: metadata composition budget (LGESQL)",
            ),
        ]
        return "\n\n".join(sections)


def _clone_with_generator(pipeline: MetaSQL, generator_config) -> MetaSQL:
    """A view of *pipeline* with a different candidate generator."""
    clone = MetaSQL.__new__(MetaSQL)
    clone.model = pipeline.model
    clone.config = pipeline.config
    clone.classifier = pipeline.classifier
    clone.composer = pipeline.composer
    clone.generator = CandidateGenerator(pipeline.model, generator_config)
    clone.stage1 = pipeline.stage1
    clone.stage2 = pipeline.stage2
    clone._trained = True
    clone._classifier_ok = pipeline._classifier_ok
    clone._stage1_ok = pipeline._stage1_ok
    clone._stage2_ok = pipeline._stage2_ok
    clone.training_report = pipeline.training_report
    return clone


def run(
    ctx: ExperimentContext,
    model: str = "lgesql",
    limit: int | None = 200,
) -> SupplementaryResult:
    """Run the supplementary design-choice ablations."""
    result = SupplementaryResult()
    pipeline = ctx.pipeline(model)
    dev = ctx.benchmark.dev

    for label, grounding in (("on", True), ("off", False)):
        config = GeneratorConfig(ground_placeholder_values=grounding)
        view = _clone_with_generator(pipeline, config)
        evaluation = evaluate_metasql(view, dev, limit=limit)
        result.grounding[label] = {
            "em": evaluation.em,
            "ex": evaluation.ex,
        }

    for budget in (1, 2, 4, 8):
        config = GeneratorConfig(
            max_candidates=max(budget * 2 + 3, 5),
        )
        view = _clone_with_generator(pipeline, config)
        original = view.composer.config.max_compositions
        view.composer.config.max_compositions = budget
        evaluation = evaluate_metasql(
            view, dev, compute_execution=False, limit=limit
        )
        view.composer.config.max_compositions = original
        result.budget[budget] = evaluation.em
    return result
