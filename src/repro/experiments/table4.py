"""Table 4: overall translation results on both benchmarks.

For every baseline model, EM/EX on SpiderSim-dev with and without MetaSQL,
plus EM on the three ScienceBenchmark-sim databases (zero-shot; the paper
reports EM only there because the Cordis/SDSS database files are
inaccessible — we mirror that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.evaluate import evaluate_metasql, evaluate_model
from repro.eval.report import format_table, pct
from repro.experiments.common import ALL_MODELS, ExperimentContext

#: Paper-published rows (SPIDER-dev EM/EX; Science EM oncomx/cordis/sdss).
PAPER_ROWS = {
    "bridge": {"em": 68.7, "ex": 68.0, "science": (16.5, 23.0, 5.0)},
    "bridge+metasql": {"em": 70.5, "ex": 69.2, "science": (18.6, 25.0, 7.0)},
    "gap": {"em": 71.8, "ex": 34.9, "science": (33.0, 20.0, 5.0)},
    "gap+metasql": {"em": 73.4, "ex": 37.2, "science": (35.0, 20.0, 6.0)},
    "lgesql": {"em": 75.1, "ex": 36.3, "science": (41.7, 24.0, 4.0)},
    "lgesql+metasql": {"em": 77.4, "ex": 42.0, "science": (42.7, 28.0, 12.0)},
    "resdsql": {"em": 75.8, "ex": 80.1, "science": (42.7, 29.0, 4.0)},
    "resdsql+metasql": {"em": 76.9, "ex": 81.5, "science": (49.7, 33.0, 10.0)},
    "chatgpt": {"em": 51.5, "ex": 65.3, "science": (51.2, 40.0, 11.0)},
    "chatgpt+metasql": {"em": 65.1, "ex": 74.2, "science": (53.2, 42.0, 16.0)},
    "gpt4": {"em": 54.3, "ex": 67.4, "science": (65.7, 42.0, 15.0)},
    "gpt4+metasql": {"em": 69.6, "ex": 76.8, "science": (68.6, 42.0, 17.6)},
}

SCIENCE_ORDER = ("oncomx", "cordis", "sdss")


@dataclass
class Table4Result:
    """Measured Table 4 rows keyed by model name."""
    rows: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "model", "EM%", "EX%",
            "EM%(oncomx)", "EM%(cordis)", "EM%(sdss)",
            "paper EM%", "paper EX%",
        ]
        body = []
        for name, row in self.rows.items():
            paper = PAPER_ROWS.get(name, {})
            body.append(
                [
                    name,
                    pct(row["em"]),
                    pct(row["ex"]),
                    pct(row["science"][0]),
                    pct(row["science"][1]),
                    pct(row["science"][2]),
                    paper.get("em", "-"),
                    paper.get("ex", "-"),
                ]
            )
        return format_table(
            headers, body, title="Table 4: translation results (measured vs paper)"
        )


def run(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ALL_MODELS,
    limit: int | None = None,
) -> Table4Result:
    """Run the Table 4 experiment over *models* on the context's data."""
    result = Table4Result()
    dev = ctx.benchmark.dev
    for name in models:
        model = ctx.base_model(name)
        base_eval = evaluate_model(model, dev, limit=limit)
        base_science = [
            evaluate_model(
                model,
                ctx.science[db_id],
                compute_execution=False,
                limit=limit,
            ).em
            for db_id in SCIENCE_ORDER
        ]
        result.rows[name] = {
            "em": base_eval.em,
            "ex": base_eval.ex,
            "science": tuple(base_science),
        }

        pipe = ctx.pipeline(name)
        meta_eval = evaluate_metasql(pipe, dev, limit=limit)
        meta_science = [
            evaluate_metasql(
                pipe,
                ctx.science[db_id],
                compute_execution=False,
                limit=limit,
            ).em
            for db_id in SCIENCE_ORDER
        ]
        result.rows[f"{name}+metasql"] = {
            "em": meta_eval.em,
            "ex": meta_eval.ex,
            "science": tuple(meta_science),
        }
    return result
