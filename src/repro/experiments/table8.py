"""Table 8: stage-wise accuracy of the pipeline.

- **Metadata selection accuracy** — can the classifier's predicted labels
  compose the ground-truth metadata (gold tags selected and gold rating
  among predicted ratings)?  One number per context (the classifier is
  shared, as in the paper).
- **Metadata-conditioned generation accuracy** — conditioned on the
  *ground-truth* metadata, does any decoded candidate match gold?
- **Ranking accuracy** — translation MRR when the candidate lists are
  generated from ground-truth metadata compositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metadata import extract_metadata
from repro.eval.metrics import mrr
from repro.eval.report import format_table, pct
from repro.experiments.common import ExperimentContext
from repro.sqlkit.compare import exact_match

PAPER_ROWS = {
    "bridge+metasql": (91.4, 77.3, 87.1),
    "gap+metasql": (91.4, 77.9, 88.4),
    "lgesql+metasql": (91.4, 82.7, 90.3),
    "resdsql+metasql": (91.4, 83.1, 89.6),
}


@dataclass
class Table8Result:
    """Stage-wise accuracies per model plus the shared selection accuracy."""
    selection_accuracy: float = 0.0
    rows: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "model", "metadata selection", "conditioned generation",
            "ranking (MRR)", "paper (sel/gen/rank)",
        ]
        body = []
        for name, row in self.rows.items():
            paper = PAPER_ROWS.get(name)
            body.append(
                [
                    name,
                    pct(self.selection_accuracy),
                    pct(row["generation"]),
                    pct(row["ranking"]),
                    "/".join(str(v) for v in paper) if paper else "-",
                ]
            )
        return format_table(headers, body, title="Table 8: stage-wise accuracy")


def metadata_selection_accuracy(ctx: ExperimentContext, limit=None) -> float:
    """Fraction of dev questions whose predicted labels cover the gold metadata."""
    # The paper uses a unified classifier built on LGESQL.
    pipeline = ctx.pipeline("lgesql")
    dev = ctx.benchmark.dev
    examples = dev.examples[:limit] if limit else dev.examples
    hits = 0
    for example in examples:
        db = dev.database(example.db_id)
        gold = extract_metadata(example.sql)
        tags, ratings = pipeline.classifier.predict(example.question, db)
        tags = set(tags) | {"project"}
        covered = gold.tags <= tags and any(
            abs(r - gold.rating) <= 100 for r in ratings
        )
        hits += covered
    return hits / max(len(examples), 1)


def run(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ("bridge", "gap", "lgesql", "resdsql"),
    limit: int | None = None,
) -> Table8Result:
    """Run the Table 8 experiment (stage-wise accuracy)."""
    result = Table8Result()
    result.selection_accuracy = metadata_selection_accuracy(ctx, limit=limit)
    dev = ctx.benchmark.dev
    examples = dev.examples[:limit] if limit else dev.examples
    for name in models:
        pipe = ctx.pipeline(name)
        generation_hits = 0
        ranked_flags = []
        for example in examples:
            db = dev.database(example.db_id)
            gold_meta = extract_metadata(example.sql)
            candidates = pipe.candidates(
                example.question, db, compositions=[gold_meta]
            )
            if any(exact_match(c.query, example.sql) for c in candidates):
                generation_hits += 1
            ranked = pipe.translate_ranked(
                example.question, db, compositions=[gold_meta]
            )
            ranked_flags.append(
                [exact_match(r.query, example.sql) for r in ranked[:5]]
            )
        result.rows[f"{name}+metasql"] = {
            "generation": generation_hits / max(len(examples), 1),
            "ranking": mrr(ranked_flags),
        }
    return result
