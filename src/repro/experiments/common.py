"""Shared experiment context with caching.

Builds the SpiderSim and ScienceBenchmark-sim corpora, fits base models and
trains MetaSQL pipelines on demand, caching everything so the full
benchmark suite pays each training cost once.

Two scales exist: ``full`` (default, used by benchmarks/) and ``small``
(used by integration tests); select via the ``REPRO_SCALE`` environment
variable or the *scale* argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.dataset import Benchmark, Dataset
from repro.data.sciencebench import build_sciencebenchmark
from repro.data.spider import build_spider
from repro.models.base import TranslationModel
from repro.models.registry import create_model

#: The six baseline models of the paper's Table 4, in paper order.
ALL_MODELS = ("bridge", "gap", "lgesql", "resdsql", "chatgpt", "gpt4")

_SCALES = {
    "full": {"train_per_domain": 100, "dev_per_domain": 20, "science": 100,
             "ranker_questions": 400},
    "small": {"train_per_domain": 35, "dev_per_domain": 6, "science": 25,
              "ranker_questions": 120},
}


@dataclass
class ExperimentContext:
    """Lazily-built, cached models and datasets for all experiments."""

    scale: str = "full"
    seed: int = 7
    _benchmark: Benchmark | None = None
    _science: dict[str, Dataset] | None = None
    _models: dict[str, TranslationModel] = field(default_factory=dict)
    _pipelines: dict[tuple, MetaSQL] = field(default_factory=dict)

    @property
    def params(self) -> dict:
        return _SCALES[self.scale]

    # ------------------------------------------------------------------

    @property
    def benchmark(self) -> Benchmark:
        if self._benchmark is None:
            self._benchmark = build_spider(
                seed=self.seed,
                train_per_domain=self.params["train_per_domain"],
                dev_per_domain=self.params["dev_per_domain"],
            )
        return self._benchmark

    @property
    def science(self) -> dict[str, Dataset]:
        if self._science is None:
            self._science = build_sciencebenchmark(
                per_domain=self.params["science"]
            )
        return self._science

    # ------------------------------------------------------------------

    def base_model(self, name: str) -> TranslationModel:
        """A fitted base translation model (plain supervised training)."""
        if name not in self._models:
            model = create_model(name)
            model.fit(self.benchmark.train)
            self._models[name] = model
        return self._models[name]

    def pipeline(
        self, name: str, config: MetaSQLConfig | None = None, key: str = ""
    ) -> MetaSQL:
        """A trained MetaSQL pipeline around the named base model.

        Distinct configurations must pass a distinct *key* to avoid cache
        collisions (used by the ablation experiments).
        """
        cache_key = (name, key)
        if cache_key not in self._pipelines:
            model = self.base_model(name)
            if config is None:
                config = MetaSQLConfig()
            config.ranker_train_questions = min(
                config.ranker_train_questions,
                self.params["ranker_questions"],
            )
            pipe = MetaSQL(model, config)
            pipe.train(self.benchmark.train)
            self._pipelines[cache_key] = pipe
        return self._pipelines[cache_key]


_CONTEXTS: dict[str, ExperimentContext] = {}


def get_context(scale: str | None = None) -> ExperimentContext:
    """The process-wide cached context for *scale* (env default)."""
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "full")
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; use one of {sorted(_SCALES)}")
    if scale not in _CONTEXTS:
        _CONTEXTS[scale] = ExperimentContext(scale=scale)
    return _CONTEXTS[scale]
