"""Table 5: EM on SpiderSim-dev broken down by SQL difficulty level."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.evaluate import evaluate_metasql, evaluate_model
from repro.eval.report import format_table, pct
from repro.experiments.common import ALL_MODELS, ExperimentContext

PAPER_ROWS = {
    "bridge": (91.1, 73.3, 54.0, 39.2, 68.7),
    "bridge+metasql": (89.1, 75.3, 58.0, 42.8, 70.5),
    "gap": (91.5, 74.2, 64.4, 44.2, 71.8),
    "gap+metasql": (91.5, 75.9, 64.9, 43.4, 73.4),
    "lgesql": (91.9, 77.4, 65.5, 53.0, 75.1),
    "lgesql+metasql": (94.0, 81.4, 70.1, 49.4, 77.4),
    "resdsql": (90.3, 82.7, 62.6, 47.0, 75.8),
    "resdsql+metasql": (92.5, 83.9, 64.1, 48.2, 76.9),
    "chatgpt": (85.7, 52.6, 31.6, 14.6, 51.5),
    "chatgpt+metasql": (89.0, 66.2, 40.8, 24.4, 65.1),
    "gpt4": (82.2, 51.3, 42.5, 36.1, 54.3),
    "gpt4+metasql": (91.1, 64.1, 74.7, 47.2, 69.6),
}

LEVELS = ("easy", "medium", "hard", "extra")


@dataclass
class Table5Result:
    """Measured Table 5 rows keyed by model name."""
    rows: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["model", "easy", "medium", "hard", "extra", "overall",
                   "paper overall"]
        body = []
        for name, row in self.rows.items():
            paper = PAPER_ROWS.get(name)
            body.append(
                [name]
                + [pct(row[level]) for level in LEVELS]
                + [pct(row["overall"]), paper[-1] if paper else "-"]
            )
        return format_table(
            headers, body, title="Table 5: EM by SQL difficulty level"
        )


def run(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ALL_MODELS,
    limit: int | None = None,
) -> Table5Result:
    """Run the Table 5 experiment (EM by difficulty level)."""
    result = Table5Result()
    dev = ctx.benchmark.dev
    for name in models:
        base_eval = evaluate_model(
            ctx.base_model(name), dev, compute_execution=False, limit=limit
        )
        row = base_eval.em_by_hardness()
        row["overall"] = base_eval.em
        result.rows[name] = row

        meta_eval = evaluate_metasql(
            ctx.pipeline(name), dev, compute_execution=False, limit=limit
        )
        row = meta_eval.em_by_hardness()
        row["overall"] = meta_eval.em
        result.rows[f"{name}+metasql"] = row
    return result
