"""Table 7: translation Precision@K and MRR of MetaSQL's ranked lists."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.evaluate import evaluate_metasql
from repro.eval.report import format_table, pct
from repro.experiments.common import ALL_MODELS, ExperimentContext

PAPER_ROWS = {
    "bridge+metasql": (73.8, 70.5, 76.7, 78.6),
    "gap+metasql": (76.4, 73.4, 79.9, 81.0),
    "lgesql+metasql": (78.2, 76.8, 79.6, 80.9),
    "resdsql+metasql": (78.8, 77.2, 80.6, 80.1),
    "chatgpt+metasql": (52.6, 51.5, 64.3, 64.5),
    "gpt4+metasql": (69.6, 69.6, 72.5, 72.5),
}


@dataclass
class Table7Result:
    """Measured Table 7 rows (MRR / P@1 / P@3 / P@5)."""
    rows: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["model", "MRR", "P@1", "P@3", "P@5", "paper MRR"]
        body = []
        for name, row in self.rows.items():
            paper = PAPER_ROWS.get(name)
            body.append(
                [
                    name,
                    pct(row["mrr"]),
                    pct(row["p1"]),
                    pct(row["p3"]),
                    pct(row["p5"]),
                    paper[0] if paper else "-",
                ]
            )
        return format_table(
            headers, body, title="Table 7: Precision@K and MRR on SpiderSim-dev"
        )


def run(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ALL_MODELS,
    limit: int | None = None,
) -> Table7Result:
    """Run the Table 7 experiment (ranking precision and MRR)."""
    result = Table7Result()
    dev = ctx.benchmark.dev
    for name in models:
        meta_eval = evaluate_metasql(
            ctx.pipeline(name), dev, compute_execution=False, limit=limit
        )
        result.rows[f"{name}+metasql"] = {
            "mrr": meta_eval.mrr,
            "p1": meta_eval.precision_at(1),
            "p3": meta_eval.precision_at(3),
            "p5": meta_eval.precision_at(5),
        }
    return result
