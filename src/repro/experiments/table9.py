"""Table 9: ablation study on SpiderSim-dev with LGESQL-sim.

Four configurations, each with the paper's miss-count accounting:

- the full pipeline;
- **w/o multi-label classifier** — candidates generated under *all*
  training-observed metadata compositions;
- **w/o phrase-level supervision** — the NL-to-phrase local loss and the
  phrase triplet loss removed from second-stage training;
- **w/o second-stage ranking** — final order is the first-stage cosine.

A *generation miss* counts a question whose candidate set lacks the gold
query; a *ranking miss* counts a question where the gold query was generated
but not ranked first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import MetaSQLConfig
from repro.eval.report import format_table, pct
from repro.experiments.common import ExperimentContext
from repro.sqlkit.compare import exact_match

PAPER_ROWS = {
    "full": (185, 56, 77.4),
    "w/o multi-label classifier": (167, 159, 68.5),
    "w/o phrase-level supervision": (185, 87, 75.2),
    "w/o second-stage ranking": (185, 253, 57.7),
}


@dataclass
class Table9Result:
    """Ablation rows with the paper's miss-count accounting."""
    rows: dict[str, dict] = field(default_factory=dict)
    total: int = 0

    def render(self) -> str:
        headers = [
            "configuration", "generation miss", "ranking miss", "overall EM",
            "paper (gen/rank/EM)",
        ]
        body = []
        for name, row in self.rows.items():
            paper = PAPER_ROWS.get(name)
            body.append(
                [
                    name,
                    row["generation_miss"],
                    row["ranking_miss"],
                    pct(row["em"]),
                    "/".join(str(v) for v in paper) if paper else "-",
                ]
            )
        return format_table(
            headers,
            body,
            title=f"Table 9: ablation study (LGESQL, n={self.total})",
        )


_CONFIGS = {
    "full": {},
    "w/o multi-label classifier": {"use_classifier": False},
    "w/o phrase-level supervision": {"phrase_supervision": False},
    "w/o second-stage ranking": {"use_stage2": False},
}


def run(
    ctx: ExperimentContext,
    model: str = "lgesql",
    limit: int | None = None,
) -> Table9Result:
    """Run the Table 9 ablations around the named base model."""
    result = Table9Result()
    dev = ctx.benchmark.dev
    examples = dev.examples[:limit] if limit else dev.examples
    result.total = len(examples)
    for label, overrides in _CONFIGS.items():
        config = MetaSQLConfig()
        for attr, value in overrides.items():
            setattr(config, attr, value)
        pipe = ctx.pipeline(model, config=config, key=label)
        generation_miss = 0
        ranking_miss = 0
        correct = 0
        for example in examples:
            db = dev.database(example.db_id)
            ranked = pipe.translate_ranked(example.question, db)
            in_list = any(exact_match(r.query, example.sql) for r in ranked)
            top = bool(ranked) and exact_match(ranked[0].query, example.sql)
            if not in_list:
                generation_miss += 1
            elif not top:
                ranking_miss += 1
            else:
                correct += 1
        result.rows[label] = {
            "generation_miss": generation_miss,
            "ranking_miss": ranking_miss,
            "em": correct / max(len(examples), 1),
        }
    return result
