"""CLI for regenerating individual paper tables/figures.

Usage::

    python -m repro.experiments table4 [--scale small] [--models lgesql,gpt4]
    python -m repro.experiments fig6 --scale small
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig6,
    supplementary,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.common import ALL_MODELS, get_context

EXPERIMENTS = {
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "fig6": fig6,
    "supplementary": supplementary,
}

#: experiments that accept a models tuple.
_TAKES_MODELS = {"table4", "table5", "table6", "table7", "table8"}


def main(argv: list[str] | None = None) -> int:
    """Parse CLI arguments and run the selected experiment(s)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=("full", "small"),
        default="full",
        help="corpus scale (default: full)",
    )
    parser.add_argument(
        "--models",
        default=None,
        help="comma-separated model subset (default: all six)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="evaluate only the first N dev examples",
    )
    args = parser.parse_args(argv)

    ctx = get_context(args.scale)
    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    models = (
        tuple(args.models.split(",")) if args.models else ALL_MODELS
    )
    for name in names:
        module = EXPERIMENTS[name]
        kwargs = {"limit": args.limit}
        if name in _TAKES_MODELS:
            kwargs["models"] = models
        result = module.run(ctx, **kwargs)
        print()
        print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
