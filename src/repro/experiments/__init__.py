"""Experiment drivers: one module per paper table/figure.

``repro.experiments.common`` builds and caches the shared experiment
context (benchmarks, fitted base models, trained MetaSQL pipelines) so the
benchmark suite trains each pipeline once and reuses it across tables.
"""

from repro.experiments.common import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
