"""Figure 6: metadata sensitivity analysis (LGESQL-sim).

Four sweeps over how metadata is supplied at inference time:

- **6a** — classification threshold p from 0 down to -60 (noisier labels);
- **6b** — correctness indicator: correct / incorrect / none;
- **6c** — hardness value: predicted / oracle / fixed values;
- **6d** — operator tags: predicted / oracle / random.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metadata import (
    CORRECT,
    INCORRECT,
    QueryMetadata,
    TAG_VOCABULARY,
    extract_metadata,
)
from repro.eval.report import format_table, pct
from repro.experiments.common import ExperimentContext
from repro.sqlkit.compare import exact_match

#: Paper reference points (LGESQL + MetaSQL on SPIDER dev).
PAPER = {
    "baseline_em": 75.1,
    "metasql_em": 77.4,
    "oracle_tags_em": 81.3,
    "threshold_shape": "EM degrades as p decreases below -10",
}


@dataclass
class Fig6Result:
    """The four sensitivity sweeps of Figure 6."""
    threshold_sweep: dict[float, float] = field(default_factory=dict)  # 6a
    correctness: dict[str, float] = field(default_factory=dict)  # 6b
    hardness: dict[str, float] = field(default_factory=dict)  # 6c
    tags: dict[str, float] = field(default_factory=dict)  # 6d

    def render(self) -> str:
        sections = []
        sections.append(
            format_table(
                ["threshold p", "EM"],
                [[p, pct(em)] for p, em in self.threshold_sweep.items()],
                title="Fig 6a: EM vs classification threshold",
            )
        )
        sections.append(
            format_table(
                ["correctness indicator", "EM"],
                [[k, pct(v)] for k, v in self.correctness.items()],
                title="Fig 6b: EM vs correctness indicator",
            )
        )
        sections.append(
            format_table(
                ["hardness setting", "EM"],
                [[k, pct(v)] for k, v in self.hardness.items()],
                title="Fig 6c: EM vs hardness value",
            )
        )
        sections.append(
            format_table(
                ["operator tags", "EM"],
                [[k, pct(v)] for k, v in self.tags.items()],
                title="Fig 6d: EM vs operator tags (paper oracle: 81.3)",
            )
        )
        return "\n\n".join(sections)


def _em_with_compositions(pipe, dev, examples, composer) -> float:
    correct = 0
    for example in examples:
        db = dev.database(example.db_id)
        compositions = composer(example, db)
        ranked = pipe.translate_ranked(
            example.question, db, compositions=compositions
        )
        if ranked and exact_match(ranked[0].query, example.sql):
            correct += 1
    return correct / max(len(examples), 1)


def run(
    ctx: ExperimentContext,
    model: str = "lgesql",
    limit: int | None = None,
    thresholds: tuple[float, ...] = (0.0, -5.0, -10.0, -20.0, -40.0, -60.0),
) -> Fig6Result:
    """Run all four Figure 6 metadata-sensitivity sweeps."""
    result = Fig6Result()
    pipe = ctx.pipeline(model)
    dev = ctx.benchmark.dev
    examples = dev.examples[:limit] if limit else dev.examples
    rng = np.random.default_rng(999)

    # 6a: threshold sweep — noisier label sets as p decreases.
    for threshold in thresholds:
        def compose_threshold(example, db, _t=threshold):
            tags, ratings = pipe.classifier.predict(
                example.question, db, threshold=_t
            )
            return pipe.composer.compose(tags, ratings)

        result.threshold_sweep[threshold] = _em_with_compositions(
            pipe, dev, examples, compose_threshold
        )

    # 6b: correctness indicator variants.
    for label, indicator in (
        ("correct", CORRECT),
        ("incorrect", INCORRECT),
        ("none", "none"),
    ):
        def compose_indicator(example, db, _i=indicator):
            tags, ratings = pipe.classifier.predict(example.question, db)
            return [
                m.with_correctness(_i)
                for m in pipe.composer.compose(tags, ratings)
            ]

        result.correctness[label] = _em_with_compositions(
            pipe, dev, examples, compose_indicator
        )

    # 6c: hardness value variants.
    def hardness_variant(rating_of):
        def compose(example, db):
            tags, ratings = pipe.classifier.predict(example.question, db)
            fixed = rating_of(example)
            base = pipe.composer.compose(tags, [fixed])
            if not base:
                base = pipe.composer.compose(tags, ratings)
            return [m.with_rating(fixed) for m in base]

        return compose

    result.hardness["predicted"] = result.threshold_sweep.get(
        0.0,
        _em_with_compositions(
            pipe,
            dev,
            examples,
            lambda e, db: pipe.composer.compose(
                *pipe.classifier.predict(e.question, db)
            ),
        ),
    )
    result.hardness["oracle"] = _em_with_compositions(
        pipe, dev, examples, hardness_variant(lambda e: e.rating)
    )
    for fixed in (100, 250, 450):
        result.hardness[f"fixed:{fixed}"] = _em_with_compositions(
            pipe, dev, examples, hardness_variant(lambda e, _f=fixed: _f)
        )

    # 6d: operator tag variants.
    result.tags["predicted"] = result.hardness["predicted"]

    def compose_oracle_tags(example, db):
        gold = extract_metadata(example.sql)
        __, ratings = pipe.classifier.predict(example.question, db)
        compositions = pipe.composer.compose(set(gold.tags), ratings)
        if not compositions:
            compositions = [gold]
        return compositions

    result.tags["oracle"] = _em_with_compositions(
        pipe, dev, examples, compose_oracle_tags
    )

    def compose_random_tags(example, db):
        __, ratings = pipe.classifier.predict(example.question, db)
        sampled = {
            t for t in TAG_VOCABULARY if rng.random() < 0.35
        } | {"project"}
        compositions = pipe.composer.compose(sampled, ratings)
        if not compositions:
            compositions = pipe.composer.all_compositions(limit=4)
        return compositions

    result.tags["random"] = _em_with_compositions(
        pipe, dev, examples, compose_random_tags
    )
    return result
