"""Table 6: EM on SpiderSim-dev broken down by SQL statement type."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.evaluate import evaluate_metasql, evaluate_model
from repro.eval.report import format_table, pct
from repro.experiments.common import ALL_MODELS, ExperimentContext

PAPER_ROWS = {
    "bridge": (42.8, 52.9, 63.6, 56.8),
    "bridge+metasql": (39.6, 49.5, 70.6, 63.8),
    "gap": (47.2, 62.1, 60.0, 67.9),
    "gap+metasql": (44.7, 56.8, 73.2, 68.6),
    "lgesql": (54.1, 62.1, 67.9, 67.9),
    "lgesql+metasql": (51.6, 62.1, 78.8, 69.7),
    "resdsql": (50.3, 57.9, 74.0, 72.0),
    "resdsql+metasql": (50.0, 59.1, 75.6, 73.1),
    "chatgpt": (28.3, 29.5, 47.4, 42.0),
    "chatgpt+metasql": (33.3, 44.4, 54.5, 43.1),
    "gpt4": (36.5, 45.0, 46.0, 50.7),
    "gpt4+metasql": (46.0, 55.0, 74.0, 51.9),
}

TYPES = ("orderby", "groupby", "nested", "negation")


@dataclass
class Table6Result:
    """Measured Table 6 rows plus statement-type counts."""
    rows: dict[str, dict] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["model", "ORDER BY", "GROUP BY", "nested", "negation"]
        body = [
            [name] + [pct(row[t]) for t in TYPES]
            for name, row in self.rows.items()
        ]
        title = (
            "Table 6: EM by SQL statement type "
            f"(counts: {self.counts})"
        )
        return format_table(headers, body, title=title)


def run(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ALL_MODELS,
    limit: int | None = None,
) -> Table6Result:
    """Run the Table 6 experiment (EM by statement type)."""
    result = Table6Result()
    dev = ctx.benchmark.dev
    for name in models:
        base_eval = evaluate_model(
            ctx.base_model(name), dev, compute_execution=False, limit=limit
        )
        result.rows[name] = base_eval.em_by_statement_type()
        result.counts = base_eval.counts_by_statement_type()
        meta_eval = evaluate_metasql(
            ctx.pipeline(name), dev, compute_execution=False, limit=limit
        )
        result.rows[f"{name}+metasql"] = meta_eval.em_by_statement_type()
    return result
