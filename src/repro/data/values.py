"""Value pools for populating synthetic databases.

Pools are plain word lists; row builders draw from them through a seeded
``numpy.random.Generator`` so databases are fully deterministic.
"""

from __future__ import annotations

import numpy as np

PERSON_FIRST = (
    "James", "Mary", "John", "Linda", "Robert", "Susan", "Michael", "Karen",
    "David", "Nancy", "Carlos", "Elena", "Ahmed", "Yuki", "Chen", "Priya",
    "Olga", "Marco", "Aisha", "Lars", "Ingrid", "Pedro", "Fatima", "Hiro",
)

PERSON_LAST = (
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis", "Wilson",
    "Anderson", "Taylor", "Thomas", "Moore", "Martin", "Tanaka", "Kumar",
    "Ivanov", "Rossi", "Silva", "Khan", "Nakamura", "Larsen", "Weber",
)

CITIES = (
    "Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown",
    "Madison", "Clayton", "Ashland", "Burlington", "Dayton", "Florence",
    "Greenville", "Kingston", "Milton", "Newport", "Oxford", "Salem",
    "Troy", "Winchester", "Bristol", "Dover", "Hudson",
)

COUNTRIES = (
    "France", "Japan", "Brazil", "Canada", "Germany", "India", "Italy",
    "Mexico", "Norway", "Spain", "Egypt", "Kenya", "Chile", "Poland",
    "Turkey", "Vietnam", "Australia", "Portugal", "Greece", "Sweden",
)

LANGUAGES = (
    "English", "French", "Spanish", "German", "Japanese", "Arabic",
    "Portuguese", "Hindi", "Mandarin", "Russian", "Italian", "Dutch",
    "Korean", "Swedish", "Turkish", "Greek",
)

CONTINENTS = (
    "Asia", "Europe", "Africa", "North America", "South America", "Oceania",
)

GENRES = (
    "pop", "rock", "jazz", "folk", "classical", "blues", "country",
    "electronic", "reggae", "metal",
)

PET_TYPES = ("cat", "dog", "bird", "hamster", "rabbit", "turtle", "fish")

MAJORS = (
    "Biology", "History", "Physics", "Economics", "Philosophy",
    "Mathematics", "Chemistry", "Linguistics", "Sociology", "Engineering",
)

DEPARTMENTS = (
    "Sales", "Engineering", "Marketing", "Finance", "Research", "Support",
    "Operations", "Design", "Legal", "Procurement",
)

AIRLINES = (
    "Skyways", "Aerolux", "Nimbus Air", "Polar Jet", "Coastal Air",
    "Summit Airlines", "Harbor Air", "Zephyr", "Meridian", "Aurora Air",
)

COLORS = ("red", "blue", "green", "black", "white", "silver", "yellow")

MAKERS = (
    "Volvano", "Detra", "Kaizen Motors", "Urbania", "Stellar Auto",
    "Fiorano", "Nordwagen", "Pacifica", "Everdrive", "Montania",
)

INSTRUMENTS = ("violin", "cello", "flute", "oboe", "trumpet", "harp", "piano")

SHOW_TITLES = (
    "Night Harbor", "The Long Meadow", "Silver Lining", "Crossing Paths",
    "Iron Coast", "Quiet Rooms", "Second Wind", "The Glass Garden",
    "Northern Line", "Golden Hour", "Open Water", "Paper Moon",
)

MUSEUM_NAMES = (
    "City Museum of Art", "Natural History Hall", "Maritime Museum",
    "Museum of Science", "Folk Heritage Center", "Modern Gallery",
    "Railway Museum", "Ceramics House", "Aviation Hall", "Stone Age Museum",
)

BATTLE_NAMES = (
    "Battle of Redford", "Siege of Calder", "Battle of Two Rivers",
    "Skirmish at Elm Pass", "Battle of the White Plain", "Siege of Morvane",
    "Battle of Harrow Bridge", "Battle of the Dunes",
)

DISEASES = (
    "melanoma", "glioma", "leukemia", "lymphoma", "carcinoma",
    "sarcoma", "adenoma", "neuroblastoma",
)

TISSUES = (
    "lung", "liver", "kidney", "brain", "skin", "colon", "breast",
    "pancreas", "stomach", "prostate",
)

GENE_SYMBOLS = (
    "TP53", "BRCA1", "EGFR", "KRAS", "MYC", "PTEN", "RB1", "ALK", "BRAF",
    "NRAS", "CDK4", "MDM2", "ERBB2", "VEGFA", "NOTCH1", "JAK2",
)

INSTITUTION_NAMES = (
    "Delta Research Institute", "Northgate University", "Helios Labs",
    "Civic Data Centre", "Arcadia Polytechnic", "Meridian Institute",
    "Blue Forest University", "Quantum Works", "Atlas Foundation",
    "Harbourview College",
)

PROGRAMME_NAMES = (
    "Horizon Alpha", "Green Transition", "Digital Europe", "Quantum Flag",
    "Health Shield", "Ocean Watch", "Smart Mobility", "AgriNext",
)

SPECTRAL_CLASSES = ("STAR", "GALAXY", "QSO")


def sample(pool: tuple[str, ...], rng: np.random.Generator) -> str:
    """Draw one value from a pool."""
    return pool[int(rng.integers(len(pool)))]


def sample_unique(
    pool: tuple[str, ...], count: int, rng: np.random.Generator
) -> list[str]:
    """Draw *count* distinct values (cycling with suffixes if pool is small)."""
    if count <= len(pool):
        indices = rng.permutation(len(pool))[:count]
        return [pool[int(i)] for i in indices]
    values = list(pool)
    suffix = 2
    while len(values) < count:
        values.extend(f"{v} {suffix}" for v in pool)
        suffix += 1
    return values[:count]


def person_name(rng: np.random.Generator) -> str:
    """A synthetic 'First Last' person name."""
    return f"{sample(PERSON_FIRST, rng)} {sample(PERSON_LAST, rng)}"
