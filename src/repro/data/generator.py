"""Stratified SQL query sampler.

Samples executable SQL queries over a populated database, covering the
Spider query patterns: projections, aggregates, filters (=, !=, <, >, LIKE,
BETWEEN, IN), joins along foreign keys, GROUP BY / HAVING, ORDER BY / LIMIT,
set operations and nested subqueries.  Template weights are tuned so the
hardness-level mix resembles Spider's (roughly 23% easy / 40% medium /
20% hard / 17% extra).

Every sampled query is validated by execution; queries with empty results are
retried a few times so the corpus stays meaningful for the EX metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schema.database import Database
from repro.schema.executor import execute
from repro.schema.schema import NUMBER, TEXT, Column, Table
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    FromClause,
    JoinCond,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
)
from repro.sqlkit.errors import SqlError


@dataclass
class SamplerConfig:
    """Knobs controlling the query mix."""

    max_retries: int = 8
    allow_empty_result_fraction: float = 0.15
    max_where_predicates: int = 2
    #: template -> sampling weight
    weights: dict[str, float] | None = None


DEFAULT_WEIGHTS = {
    "projection": 16.0,
    "projection_where": 22.0,
    "aggregate": 9.0,
    "agg_arith": 2.0,
    "count_star": 7.0,
    "order_limit": 10.0,
    "group_count": 9.0,
    "group_having": 4.0,
    "join_projection": 12.0,
    "join_chain": 2.0,
    "join_group": 5.0,
    "nested_in": 5.0,
    "scalar_subquery": 4.0,
    "set_op": 5.0,
    "from_subquery": 2.0,
}


class QuerySampler:
    """Samples random-but-valid queries over one database."""

    def __init__(
        self,
        db: Database,
        rng: np.random.Generator,
        config: SamplerConfig | None = None,
    ) -> None:
        self.db = db
        self.schema = db.schema
        self.rng = rng
        self.config = config or SamplerConfig()
        weights = self.config.weights or DEFAULT_WEIGHTS
        self._templates = list(weights.keys())
        total = sum(weights.values())
        self._probs = np.array([weights[t] / total for t in self._templates])

    # ------------------------------------------------------------------
    # Public API.

    def sample(self) -> Query:
        """Sample one validated query."""
        for attempt in range(self.config.max_retries):
            template = self._templates[
                int(self.rng.choice(len(self._templates), p=self._probs))
            ]
            try:
                query = self._build(template)
                rows = execute(query, self.db)
            except SqlError:
                continue
            allow_empty = (
                self.rng.random() < self.config.allow_empty_result_fraction
            )
            if rows or allow_empty or attempt == self.config.max_retries - 1:
                return query
        # Fall back to a trivially valid projection.
        return self._build("projection")

    def sample_many(self, count: int) -> list[Query]:
        """Sample *count* validated queries."""
        return [self.sample() for _ in range(count)]

    # ------------------------------------------------------------------
    # Random pickers.

    def _pick(self, items):
        return items[int(self.rng.integers(len(items)))]

    def _pick_table(self) -> Table:
        return self._pick(self.schema.tables)

    def _pick_column(
        self,
        table: Table,
        ctype: str | None = None,
        avoid_keys: bool = False,
    ) -> Column:
        candidates = [
            c for c in table.columns if ctype is None or c.ctype == ctype
        ]
        if avoid_keys:
            non_keys = [
                c
                for c in candidates
                if not self.schema.is_key_column(table.name, c.name)
            ]
            if non_keys:
                candidates = non_keys
        if not candidates:
            candidates = list(table.columns)
        return self._pick(candidates)

    def _nonkey_numbers(self, table: Table) -> list[Column]:
        columns = [
            c
            for c in self._number_columns(table)
            if not self.schema.is_key_column(table.name, c.name)
        ]
        return columns or self._number_columns(table)

    def _text_columns(self, table: Table) -> list[Column]:
        return [c for c in table.columns if c.ctype == TEXT]

    def _number_columns(self, table: Table) -> list[Column]:
        return [c for c in table.columns if c.ctype == NUMBER]

    def _joinable_pair(self) -> tuple[Table, Table] | None:
        """A random FK-linked table pair (child first)."""
        if not self.schema.foreign_keys:
            return None
        fk = self._pick(self.schema.foreign_keys)
        return self.schema.table(fk.child_table), self.schema.table(fk.parent_table)

    def _column_ref(self, table: Table, column: Column) -> ColumnRef:
        return ColumnRef(column=column.name.lower(), table=table.name.lower())

    # ------------------------------------------------------------------
    # Predicate construction grounded in database contents.

    def _value_for(self, table: Table, column: Column) -> object | None:
        values = self.db.column_values(table.name, column.name)
        if not values:
            return None
        return self._pick(values)

    def _predicate(self, table: Table, prefer: str | None = None) -> Predicate | None:
        """A grounded predicate over one column of *table*."""
        kinds = ["eq", "neq", "cmp", "like", "between"]
        weights = [0.38, 0.12, 0.3, 0.1, 0.1]
        if prefer is not None:
            kind = prefer
        else:
            kind = kinds[int(self.rng.choice(len(kinds), p=weights))]

        if kind in ("eq", "neq", "like"):
            text_cols = self._text_columns(table)
            if not text_cols:
                kind = "cmp"
            else:
                column = self._pick(text_cols)
                value = self._value_for(table, column)
                if value is None:
                    return None
                ref = self._column_ref(table, column)
                if kind == "like":
                    token = str(value).split()[0]
                    return Predicate(
                        left=ref, op="like", right=Literal(f"%{token}%")
                    )
                op = "=" if kind == "eq" else "!="
                return Predicate(left=ref, op=op, right=Literal(value))

        number_cols = self._number_columns(table)
        if not number_cols:
            return None
        column = self._pick(number_cols)
        values = [
            v
            for v in self.db.column_values(table.name, column.name)
            if isinstance(v, (int, float))
        ]
        if not values:
            return None
        ref = self._column_ref(table, column)
        pivot = self._pick(values)
        if kind == "between":
            low, high = sorted((pivot, self._pick(values)))
            return Predicate(
                left=ref,
                op="between",
                right=Literal(low),
                right2=Literal(high),
            )
        op = self._pick(["<", ">", "<=", ">="])
        return Predicate(left=ref, op=op, right=Literal(pivot))

    def _where(self, table: Table, max_predicates: int | None = None) -> Condition | None:
        if max_predicates is None:
            max_predicates = self.config.max_where_predicates
        if max_predicates <= 1:
            count = 1
        elif max_predicates >= 3:
            count = int(self.rng.choice([1, 2, 3], p=[0.3, 0.4, 0.3]))
        elif self.rng.random() < 0.72:
            count = 1
        else:
            count = 2
        predicates = []
        for _ in range(count):
            predicate = self._predicate(table)
            if predicate is not None:
                predicates.append(predicate)
        if not predicates:
            return None
        connectors = tuple(
            "and" if self.rng.random() < 0.75 else "or"
            for _ in range(len(predicates) - 1)
        )
        return Condition(predicates=tuple(predicates), connectors=connectors)

    # ------------------------------------------------------------------
    # Templates.

    def _build(self, template: str) -> Query:
        builder = getattr(self, f"_template_{template}")
        query = builder()
        if query is None:
            raise SqlError(f"template {template} not applicable")
        return query

    def _template_projection(self) -> Query:
        table = self._pick_table()
        count = 1 if self.rng.random() < 0.6 else 2
        columns = [
            self._pick_column(table, avoid_keys=True) for _ in range(count)
        ]
        distinct = self.rng.random() < 0.18
        select = tuple(
            dict.fromkeys(self._column_ref(table, c) for c in columns)
        )
        return SelectQuery(
            select=select,
            from_=FromClause(tables=(table.name.lower(),)),
            distinct=distinct,
        )

    def _template_projection_where(self) -> Query | None:
        table = self._pick_table()
        where = self._where(table)
        if where is None:
            return None
        count = 1 if self.rng.random() < 0.65 else 2
        columns = [
            self._pick_column(table, avoid_keys=True) for _ in range(count)
        ]
        select = tuple(
            dict.fromkeys(self._column_ref(table, c) for c in columns)
        )
        return SelectQuery(
            select=select,
            from_=FromClause(tables=(table.name.lower(),)),
            where=where,
        )

    def _template_aggregate(self) -> Query | None:
        table = self._pick_table()
        number_cols = self._nonkey_numbers(table)
        if not number_cols:
            return None
        column = self._pick(number_cols)
        func = self._pick(["avg", "sum", "min", "max"])
        where = self._where(table) if self.rng.random() < 0.45 else None
        agg = AggExpr(func=func, arg=self._column_ref(table, column))
        select: tuple = (agg,)
        if self.rng.random() < 0.25 and len(number_cols) > 1:
            other = self._pick([c for c in number_cols if c is not column])
            select = (
                agg,
                AggExpr(
                    func=self._pick(["min", "max", "avg"]),
                    arg=self._column_ref(table, other),
                ),
            )
        return SelectQuery(
            select=select,
            from_=FromClause(tables=(table.name.lower(),)),
            where=where,
        )

    def _template_agg_arith(self) -> Query | None:
        """Arithmetic over aggregates: SELECT max(c) - min(c) FROM t."""
        table = self._pick_table()
        number_cols = self._nonkey_numbers(table)
        if not number_cols:
            return None
        column = self._pick(number_cols)
        ref = self._column_ref(table, column)
        expr = Arith(
            op="-",
            left=AggExpr(func="max", arg=ref),
            right=AggExpr(func="min", arg=ref),
        )
        where = self._where(table) if self.rng.random() < 0.3 else None
        return SelectQuery(
            select=(expr,),
            from_=FromClause(tables=(table.name.lower(),)),
            where=where,
        )

    def _template_count_star(self) -> Query | None:
        table = self._pick_table()
        where = self._where(table) if self.rng.random() < 0.6 else None
        return SelectQuery(
            select=(AggExpr(func="count", arg=Star()),),
            from_=FromClause(tables=(table.name.lower(),)),
            where=where,
        )

    def _template_order_limit(self) -> Query | None:
        table = self._pick_table()
        number_cols = self._nonkey_numbers(table)
        if not number_cols:
            return None
        order_col = self._pick(number_cols)
        shown = self._pick_column(table, avoid_keys=True)
        desc = self.rng.random() < 0.55
        limit = None
        if self.rng.random() < 0.68:
            limit = 1 if self.rng.random() < 0.6 else int(self.rng.integers(2, 6))
        where = self._where(table) if self.rng.random() < 0.25 else None
        return SelectQuery(
            select=(self._column_ref(table, shown),),
            from_=FromClause(tables=(table.name.lower(),)),
            where=where,
            order_by=(OrderItem(expr=self._column_ref(table, order_col), desc=desc),),
            limit=limit,
        )

    def _template_group_count(self) -> Query | None:
        table = self._pick_table()
        text_cols = self._text_columns(table)
        if not text_cols:
            return None
        group_col = self._pick(text_cols)
        ref = self._column_ref(table, group_col)
        select = (ref, AggExpr(func="count", arg=Star()))
        order_by: tuple[OrderItem, ...] = ()
        limit = None
        if self.rng.random() < 0.4:
            order_by = (
                OrderItem(expr=AggExpr(func="count", arg=Star()), desc=True),
            )
            limit = 1
        return SelectQuery(
            select=select,
            from_=FromClause(tables=(table.name.lower(),)),
            group_by=(ref,),
            order_by=order_by,
            limit=limit,
        )

    def _template_group_having(self) -> Query | None:
        table = self._pick_table()
        text_cols = self._text_columns(table)
        if not text_cols:
            return None
        group_col = self._pick(text_cols)
        ref = self._column_ref(table, group_col)
        threshold = int(self.rng.integers(1, 4))
        having = Condition(
            predicates=(
                Predicate(
                    left=AggExpr(func="count", arg=Star()),
                    op=self._pick([">", ">="]),
                    right=Literal(threshold),
                ),
            )
        )
        return SelectQuery(
            select=(ref,),
            from_=FromClause(tables=(table.name.lower(),)),
            group_by=(ref,),
            having=having,
        )

    def _join_from(self, child: Table, parent: Table) -> FromClause:
        fk = self.schema.join_condition(child.name, parent.name)
        joins: tuple[JoinCond, ...] = ()
        if fk is not None:
            joins = (
                JoinCond(
                    left=ColumnRef(
                        column=fk.child_column.lower(),
                        table=fk.child_table.lower(),
                    ),
                    right=ColumnRef(
                        column=fk.parent_column.lower(),
                        table=fk.parent_table.lower(),
                    ),
                ),
            )
        return FromClause(
            tables=(child.name.lower(), parent.name.lower()), joins=joins
        )

    def _template_join_projection(self) -> Query | None:
        pair = self._joinable_pair()
        if pair is None:
            return None
        child, parent = pair
        shown_table = self._pick([child, parent])
        other = parent if shown_table is child else child
        shown = self._pick_column(shown_table, avoid_keys=True)
        where = self._where(other)
        if where is None and self.rng.random() < 0.7:
            return None
        return SelectQuery(
            select=(self._column_ref(shown_table, shown),),
            from_=self._join_from(child, parent),
            where=where,
        )

    def _template_join_chain(self) -> Query | None:
        """Three tables joined along a foreign-key path."""
        chains = []
        for fk1 in self.schema.foreign_keys:
            for fk2 in self.schema.foreign_keys:
                if fk1 is fk2:
                    continue
                shared = {fk1.child_table.lower(), fk1.parent_table.lower()} & {
                    fk2.child_table.lower(),
                    fk2.parent_table.lower(),
                }
                if shared:
                    chains.append((fk1, fk2))
        if not chains:
            return None
        fk1, fk2 = self._pick(chains)
        tables: list[str] = []
        for name in (
            fk1.child_table, fk1.parent_table, fk2.child_table, fk2.parent_table
        ):
            if name.lower() not in tables:
                tables.append(name.lower())
        if len(tables) != 3:
            return None
        joins = tuple(
            JoinCond(
                left=ColumnRef(column=fk.child_column.lower(), table=fk.child_table.lower()),
                right=ColumnRef(column=fk.parent_column.lower(), table=fk.parent_table.lower()),
            )
            for fk in (fk1, fk2)
        )
        shown_table = self.schema.table(tables[0])
        shown = self._pick_column(shown_table, avoid_keys=True)
        where_table = self.schema.table(tables[-1])
        where = self._where(where_table, max_predicates=1)
        return SelectQuery(
            select=(self._column_ref(shown_table, shown),),
            from_=FromClause(tables=tuple(tables), joins=joins),
            where=where,
        )

    def _template_join_group(self) -> Query | None:
        pair = self._joinable_pair()
        if pair is None:
            return None
        child, parent = pair
        text_cols = self._text_columns(parent)
        if not text_cols:
            return None
        group_col = self._pick(text_cols)
        ref = self._column_ref(parent, group_col)
        return SelectQuery(
            select=(ref, AggExpr(func="count", arg=Star())),
            from_=self._join_from(child, parent),
            group_by=(ref,),
        )

    def _template_nested_in(self) -> Query | None:
        if not self.schema.foreign_keys:
            return None
        fk = self._pick(self.schema.foreign_keys)
        child = self.schema.table(fk.child_table)
        parent = self.schema.table(fk.parent_table)
        inner_where = self._where(child, max_predicates=1)
        shown = self._pick_column(parent, avoid_keys=True)
        negated = self.rng.random() < 0.45
        inner = SelectQuery(
            select=(
                ColumnRef(
                    column=fk.child_column.lower(), table=fk.child_table.lower()
                ),
            ),
            from_=FromClause(tables=(child.name.lower(),)),
            where=inner_where,
        )
        outer_where = Condition(
            predicates=(
                Predicate(
                    left=ColumnRef(
                        column=fk.parent_column.lower(),
                        table=fk.parent_table.lower(),
                    ),
                    op="in",
                    right=inner,
                    negated=negated,
                ),
            )
        )
        return SelectQuery(
            select=(self._column_ref(parent, shown),),
            from_=FromClause(tables=(parent.name.lower(),)),
            where=outer_where,
        )

    def _template_scalar_subquery(self) -> Query | None:
        table = self._pick_table()
        number_cols = self._nonkey_numbers(table)
        if not number_cols:
            return None
        column = self._pick(number_cols)
        ref = self._column_ref(table, column)
        inner = SelectQuery(
            select=(AggExpr(func="avg", arg=ref),),
            from_=FromClause(tables=(table.name.lower(),)),
        )
        shown = self._pick_column(table, avoid_keys=True)
        op = self._pick([">", "<"])
        return SelectQuery(
            select=(self._column_ref(table, shown),),
            from_=FromClause(tables=(table.name.lower(),)),
            where=Condition(
                predicates=(Predicate(left=ref, op=op, right=inner),)
            ),
        )

    def _template_set_op(self) -> Query | None:
        table = self._pick_table()
        shown = self._pick_column(table, avoid_keys=True)
        ref = self._column_ref(table, shown)
        op = self._pick(["except", "intersect", "union"])
        left_where = None if op == "except" else self._where(table, max_predicates=1)
        right_where = self._where(table, max_predicates=1)
        if right_where is None:
            return None
        if op != "except" and left_where is None:
            return None
        left = SelectQuery(
            select=(ref,),
            from_=FromClause(tables=(table.name.lower(),)),
            where=left_where,
        )
        right = SelectQuery(
            select=(ref,),
            from_=FromClause(tables=(table.name.lower(),)),
            where=right_where,
        )
        return SetQuery(op=op, left=left, right=right)

    def _template_from_subquery(self) -> Query | None:
        table = self._pick_table()
        text_cols = self._text_columns(table)
        if not text_cols:
            return None
        group_col = self._pick(text_cols)
        ref = self._column_ref(table, group_col)
        threshold = int(self.rng.integers(1, 4))
        inner = SelectQuery(
            select=(ref,),
            from_=FromClause(tables=(table.name.lower(),)),
            group_by=(ref,),
            having=Condition(
                predicates=(
                    Predicate(
                        left=AggExpr(func="count", arg=Star()),
                        op=">",
                        right=Literal(threshold),
                    ),
                )
            ),
        )
        return SelectQuery(
            select=(AggExpr(func="count", arg=Star()),),
            from_=FromClause(subquery=inner),
        )
