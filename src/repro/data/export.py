"""Spider-format JSON export/import.

Serialises a benchmark the way the real Spider distributes data —
``tables.json`` (schemas), per-split example files with ``question``/
``query``/``db_id`` fields, and a ``database/`` directory with row dumps —
so the synthetic corpora can be inspected with existing Spider tooling, and
external Spider-style files can be loaded back into a
:class:`~repro.data.dataset.Dataset`.
"""

from __future__ import annotations

import json
import pathlib

from repro.data.dataset import Benchmark, Dataset, Example
from repro.schema.database import Database
from repro.schema.schema import Column, ForeignKey, Schema, Table
from repro.sqlkit.parser import parse_sql


def schema_to_spider(schema: Schema) -> dict:
    """One entry of Spider's ``tables.json`` for *schema*.

    Column index 0 is Spider's ``*`` pseudo-column; real columns follow in
    (table, position) order.
    """
    table_names = [t.name.lower() for t in schema.tables]
    column_names: list[list] = [[-1, "*"]]
    column_types: list[str] = ["text"]
    index_of: dict[tuple[str, str], int] = {}
    for table_index, table in enumerate(schema.tables):
        for column in table.columns:
            index_of[(table.name.lower(), column.name.lower())] = len(
                column_names
            )
            column_names.append([table_index, column.name.lower()])
            column_types.append(column.ctype)
    foreign_keys = []
    for fk in schema.foreign_keys:
        child = index_of[(fk.child_table.lower(), fk.child_column.lower())]
        parent = index_of[(fk.parent_table.lower(), fk.parent_column.lower())]
        foreign_keys.append([child, parent])
    return {
        "db_id": schema.db_id,
        "table_names_original": table_names,
        "table_names": [t.nl for t in schema.tables],
        "column_names_original": column_names,
        "column_names": [
            [owner, schema.tables[owner].column(name).nl if owner >= 0 else "*"]
            for owner, name in column_names
        ],
        "column_types": column_types,
        "foreign_keys": foreign_keys,
        "primary_keys": [],
    }


def spider_to_schema(entry: dict) -> Schema:
    """Rebuild a :class:`Schema` from a Spider ``tables.json`` entry."""
    tables: list[Table] = []
    names = entry["table_names_original"]
    columns_by_table: dict[int, list[Column]] = {i: [] for i in range(len(names))}
    for (owner, name), ctype in zip(
        entry["column_names_original"], entry["column_types"]
    ):
        if owner < 0:
            continue
        columns_by_table[owner].append(
            Column(name=name, ctype="number" if ctype == "number" else "text")
        )
    for index, name in enumerate(names):
        tables.append(Table(name=name, columns=tuple(columns_by_table[index])))

    flat: list[tuple[str, str]] = [("", "*")]
    for owner, name in entry["column_names_original"]:
        if owner < 0:
            continue
        flat.append((names[owner], name))
    foreign_keys = tuple(
        ForeignKey(
            child_table=flat[child][0],
            child_column=flat[child][1],
            parent_table=flat[parent][0],
            parent_column=flat[parent][1],
        )
        for child, parent in entry.get("foreign_keys", [])
    )
    return Schema(
        db_id=entry["db_id"], tables=tuple(tables), foreign_keys=foreign_keys
    )


def examples_to_spider(dataset: Dataset) -> list[dict]:
    """Spider-style example records (question/query/db_id)."""
    return [
        {
            "db_id": example.db_id,
            "question": example.question,
            "query": example.sql_text,
        }
        for example in dataset.examples
    ]


def export_benchmark(benchmark: Benchmark, directory: str | pathlib.Path) -> None:
    """Write *benchmark* in Spider layout under *directory*.

    Layout::

        tables.json
        train.json
        dev.json
        database/<db_id>/rows.json
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    schemas = [
        schema_to_spider(db.schema)
        for db in benchmark.train.databases.values()
    ]
    (root / "tables.json").write_text(json.dumps(schemas, indent=1))
    (root / "train.json").write_text(
        json.dumps(examples_to_spider(benchmark.train), indent=1)
    )
    (root / "dev.json").write_text(
        json.dumps(examples_to_spider(benchmark.dev), indent=1)
    )
    database_dir = root / "database"
    for db_id, db in benchmark.train.databases.items():
        target = database_dir / db_id
        target.mkdir(parents=True, exist_ok=True)
        (target / "rows.json").write_text(json.dumps(db.rows, indent=1))


def load_benchmark(directory: str | pathlib.Path) -> Benchmark:
    """Load a benchmark previously written by :func:`export_benchmark`."""
    root = pathlib.Path(directory)
    schemas = {
        entry["db_id"]: spider_to_schema(entry)
        for entry in json.loads((root / "tables.json").read_text())
    }
    databases: dict[str, Database] = {}
    for db_id, schema in schemas.items():
        db = Database(schema)
        rows_file = root / "database" / db_id / "rows.json"
        if rows_file.exists():
            stored = json.loads(rows_file.read_text())
            for table, rows in stored.items():
                db.rows[table] = rows
        databases[db_id] = db

    def load_split(name: str) -> Dataset:
        records = json.loads((root / f"{name}.json").read_text())
        examples = [
            Example(
                question=record["question"],
                sql=parse_sql(record["query"]),
                db_id=record["db_id"],
            )
            for record in records
        ]
        return Dataset(
            name=f"loaded-{name}", examples=examples, databases=databases
        )

    return Benchmark(
        name="loaded", train=load_split("train"), dev=load_split("dev")
    )
