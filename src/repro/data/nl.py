"""NL question rendering from SQL ASTs.

Given a sampled SQL query and its schema, produces an English question the
way Spider annotators would phrase it, with seeded paraphrase noise:
multiple question frames, column/table synonym substitution, occasional
implicit table mentions.  The noise level controls how hard the corpus is
for the learned parsers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schema.schema import Schema
from repro.sqlkit.ast import (
    AggExpr,
    Arith,
    ColumnRef,
    Condition,
    Literal,
    OrderItem,
    Predicate,
    Query,
    SelectQuery,
    SetQuery,
    Star,
)


@dataclass
class NoiseConfig:
    """Paraphrase-noise knobs for question rendering."""

    synonym_prob: float = 0.3
    drop_table_prob: float = 0.15
    casual_prob: float = 0.25


_AGG_WORDS = {
    "avg": ("the average", "the mean"),
    "sum": ("the total", "the sum of"),
    "min": ("the minimum", "the smallest", "the lowest"),
    "max": ("the maximum", "the largest", "the highest"),
}

_OPENERS = (
    "What is {body}?",
    "What are {body}?",
    "Find {body}.",
    "List {body}.",
    "Show {body}.",
    "Give me {body}.",
    "Return {body}.",
    "Show me {body}.",
    "Tell me {body}.",
)

_COUNT_OPENERS = (
    "How many {body}?",
    "Count the number of {body}.",
    "Find the number of {body}.",
    "What is the total number of {body}?",
)


class QuestionRenderer:
    """Renders NL questions for queries over one schema."""

    def __init__(
        self,
        schema: Schema,
        rng: np.random.Generator,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.schema = schema
        self.rng = rng
        self.noise = noise or NoiseConfig()

    # ------------------------------------------------------------------
    # Helpers.

    def _pick(self, items):
        return items[int(self.rng.integers(len(items)))]

    def _maybe(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    def _column_phrase(self, ref: ColumnRef) -> str:
        column = None
        if ref.table is not None and self.schema.has_table(ref.table):
            table = self.schema.table(ref.table)
            if table.has_column(ref.column):
                column = table.column(ref.column)
        if column is None:
            # Unqualified reference: resolve through any owning table.
            for owner in self.schema.tables_of_column(ref.column):
                column = owner.column(ref.column)
                break
        if column is not None:
            options = (column.nl,) + column.synonyms
            if len(options) > 1 and self._maybe(self.noise.synonym_prob):
                return self._pick(options[1:])
            return column.nl
        return self.schema.column_phrase(ref.column, ref.table)

    def _table_phrase(self, name: str, plural: bool = False) -> str:
        if self.schema.has_table(name):
            table = self.schema.table(name)
            options = (table.nl,) + table.synonyms
            if len(options) > 1 and self._maybe(self.noise.synonym_prob):
                phrase = self._pick(options[1:])
            else:
                phrase = table.nl
        else:
            phrase = name.replace("_", " ").lower()
        if plural and not phrase.endswith("s"):
            return phrase + "s"
        return phrase

    # ------------------------------------------------------------------
    # Expression phrases.

    def _expr_phrase(self, expr) -> str:
        if isinstance(expr, ColumnRef):
            return self._column_phrase(expr)
        if isinstance(expr, Star):
            return "records"
        if isinstance(expr, AggExpr):
            if expr.func == "count":
                if isinstance(expr.arg, Star):
                    return "the number of records"
                inner = self._expr_phrase(expr.arg)
                if expr.distinct:
                    return f"the number of different {inner}"
                return f"the number of {inner}"
            head = self._pick(_AGG_WORDS[expr.func])
            return f"{head} {self._expr_phrase(expr.arg)}"
        if isinstance(expr, Arith):
            if (
                expr.op == "-"
                and isinstance(expr.left, AggExpr)
                and isinstance(expr.right, AggExpr)
                and expr.left.func == "max"
                and expr.right.func == "min"
                and expr.left.arg == expr.right.arg
            ):
                column = self._expr_phrase(expr.left.arg)
                return self._pick(
                    (
                        f"the difference between the highest and lowest {column}",
                        f"the range of {column} values",
                    )
                )
            words = {"+": "plus", "-": "minus", "*": "times", "/": "over"}
            return (
                f"{self._expr_phrase(expr.left)} {words[expr.op]} "
                f"{self._expr_phrase(expr.right)}"
            )
        if isinstance(expr, Literal):
            return str(expr.value)
        raise TypeError(f"cannot phrase {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Predicate phrases.

    def _predicate_phrase(self, predicate: Predicate) -> str:
        left = predicate.left
        if isinstance(left, AggExpr):
            # HAVING-style predicate.
            value = self._value_text(predicate.right)
            if predicate.op == ">":
                return self._pick(
                    (
                        f"with more than {value} records",
                        f"appearing more than {value} times",
                        f"having over {value} entries",
                    )
                )
            if predicate.op == ">=":
                return self._pick(
                    (
                        f"with at least {value} records",
                        f"appearing at least {value} times",
                    )
                )
            if predicate.op in ("<", "<="):
                return f"with fewer than {value} records"
            return f"with exactly {value} records"

        column = self._expr_phrase(left)
        if isinstance(predicate.right, (SelectQuery, SetQuery)):
            return self._subquery_phrase(predicate, column)
        if predicate.op == "between":
            low = self._value_text(predicate.right)
            high = self._value_text(predicate.right2)
            return f"whose {column} is between {low} and {high}"
        value = self._value_text(predicate.right)
        negated = predicate.negated
        if predicate.op == "=" and not negated:
            return self._pick(
                (
                    f"whose {column} is {value}",
                    f"with {column} {value}",
                    f"whose {column} equals {value}",
                    f"with a {column} of {value}",
                )
            )
        if predicate.op == "!=" or (predicate.op == "=" and negated):
            return self._pick(
                (
                    f"whose {column} is not {value}",
                    f"that do not have the {column} {value}",
                )
            )
        if predicate.op == "like":
            token = str(value).strip("%")
            return self._pick(
                (
                    f"whose {column} contains {token}",
                    f"whose {column} includes the word {token}",
                )
            )
        if predicate.op == ">":
            return self._pick(
                (
                    f"whose {column} is greater than {value}",
                    f"with {column} above {value}",
                    f"with more than {value} {column}",
                )
            )
        if predicate.op == ">=":
            return self._pick(
                (
                    f"whose {column} is at least {value}",
                    f"with no less than {value} {column}",
                )
            )
        if predicate.op == "<":
            return self._pick(
                (
                    f"whose {column} is less than {value}",
                    f"with {column} below {value}",
                    f"with fewer than {value} {column}",
                )
            )
        if predicate.op == "<=":
            return self._pick(
                (
                    f"whose {column} is at most {value}",
                    f"with no more than {value} {column}",
                )
            )
        return f"whose {column} {predicate.op} {value}"

    def _subquery_phrase(self, predicate: Predicate, column: str) -> str:
        sub = predicate.right
        assert isinstance(sub, (SelectQuery, SetQuery))
        if predicate.op == "in":
            inner = self._subquery_body(sub)
            if predicate.negated:
                return self._pick(
                    (
                        f"that do not have {inner}",
                        f"without {inner}",
                        f"that are not among those with {inner}",
                    )
                )
            return self._pick(
                (f"that have {inner}", f"that are among those with {inner}")
            )
        # Scalar comparison against an aggregate subquery.
        inner_select = sub if isinstance(sub, SelectQuery) else sub.left
        agg = inner_select.select[0]
        agg_phrase = self._expr_phrase(agg)
        direction = "above" if predicate.op in (">", ">=") else "below"
        return self._pick(
            (
                f"whose {column} is {direction} {agg_phrase}",
                f"with {column} {direction} {agg_phrase}",
            )
        )

    def _subquery_body(self, sub: Query) -> str:
        select = sub if isinstance(sub, SelectQuery) else sub.left
        table = select.from_.tables[0] if select.from_.tables else "record"
        table_phrase = self._table_phrase(table)
        if select.where is not None:
            conds = " and ".join(
                self._predicate_phrase(p) for p in select.where.predicates
            )
            return f"a {table_phrase} {conds}"
        return f"a {table_phrase}"

    def _value_text(self, value) -> str:
        if isinstance(value, Literal):
            if isinstance(value.value, float):
                return f"{value.value:g}"
            return str(value.value)
        return self._expr_phrase(value)

    # ------------------------------------------------------------------
    # Clause assembly.

    def _where_phrase(self, where: Condition) -> str:
        parts = [self._predicate_phrase(where.predicates[0])]
        for connector, predicate in zip(where.connectors, where.predicates[1:]):
            joiner = "and" if connector == "and" else "or"
            parts.append(joiner)
            parts.append(self._predicate_phrase(predicate))
        return " ".join(parts)

    def _order_phrase(self, order_by: tuple[OrderItem, ...], limit) -> str:
        item = order_by[0]
        column = self._expr_phrase(item.expr)
        if limit == 1:
            word = "highest" if item.desc else "lowest"
            return self._pick(
                (
                    f"with the {word} {column}",
                    f"that has the {word} {column}",
                )
            )
        if limit is not None:
            word = "most" if item.desc else "least"
            return f"for the top {limit} by {column} ({word} first)"
        direction = "descending" if item.desc else "ascending"
        return self._pick(
            (
                f"sorted by {column} in {direction} order",
                f"ordered by {column} {direction}",
            )
        )

    # ------------------------------------------------------------------
    # Entry points.

    def render(self, query: Query) -> str:
        """Render one NL question for *query*."""
        if isinstance(query, SetQuery):
            return self._render_set(query)
        return self._render_select(query)

    def _render_set(self, query: SetQuery) -> str:
        left = query.left if isinstance(query.left, SelectQuery) else None
        right = query.right if isinstance(query.right, SelectQuery) else None
        if left is None or right is None:
            # Nested set operations: fall back to a flat conjunction.
            return self.render(query.left)
        base = self._body_for_select(left, include_opener=False)
        right_where = (
            self._where_phrase(right.where) if right.where is not None else ""
        )
        if query.op == "except":
            connector = self._pick(
                ("but not those", "excluding those", "that are not the ones")
            )
        elif query.op == "intersect":
            connector = self._pick(
                ("that are also the ones", "and also those", "that at the same time are those")
            )
        else:
            connector = self._pick(("or those", "together with those", "plus those"))
        body = f"{base} {connector} {right_where}".strip()
        opener = self._pick(_OPENERS)
        return opener.format(body=body)

    def _render_select(self, query: SelectQuery) -> str:
        is_count = (
            len(query.select) == 1
            and isinstance(query.select[0], AggExpr)
            and query.select[0].func == "count"
            and not query.group_by
        )
        if is_count and query.from_.subquery is None:
            body = self._count_body(query)
            opener = self._pick(_COUNT_OPENERS)
            return opener.format(body=body)
        if is_count and query.from_.subquery is not None:
            inner = query.from_.subquery
            assert isinstance(inner, SelectQuery)
            group_col = self._expr_phrase(inner.group_by[0])
            having = (
                self._where_phrase(inner.having)
                if inner.having is not None
                else ""
            )
            table = inner.from_.tables[0]
            body = (
                f"{group_col} values of {self._table_phrase(table, plural=True)} "
                f"{having}"
            ).strip()
            opener = self._pick(_COUNT_OPENERS)
            return opener.format(body=body)
        body = self._body_for_select(query, include_opener=False)
        opener = self._pick(_OPENERS)
        return opener.format(body=body)

    def _count_body(self, query: SelectQuery) -> str:
        table = query.from_.tables[0]
        plural = self._table_phrase(table, plural=True)
        parts = [plural]
        if len(query.from_.tables) > 1:
            other = self._table_phrase(query.from_.tables[1], plural=True)
            parts.append(f"with {other}")
        if query.where is not None:
            parts.append(self._where_phrase(query.where))
        return " ".join(parts)

    def _body_for_select(
        self, query: SelectQuery, include_opener: bool
    ) -> str:
        projections = " and ".join(
            self._expr_phrase(expr) for expr in query.select
        )
        table = query.from_.tables[0] if query.from_.tables else "record"
        mention_table = not self._maybe(self.noise.drop_table_prob)
        parts = [projections]
        if mention_table:
            join_suffix = ""
            if len(query.from_.tables) > 1:
                others = ", ".join(
                    self._table_phrase(t, plural=True)
                    for t in query.from_.tables[1:]
                )
                join_suffix = f" with {others}"
            of_word = self._pick(("of", "for", "from"))
            parts.append(
                f"{of_word} {self._table_phrase(table, plural=True)}{join_suffix}"
            )
        if query.group_by:
            group_cols = " and ".join(
                self._column_phrase(c) for c in query.group_by
            )
            parts.append(self._pick((f"for each {group_cols}", f"per {group_cols}", f"grouped by {group_cols}")))
        if query.where is not None:
            parts.append(self._where_phrase(query.where))
        if query.having is not None:
            parts.append(self._where_phrase(query.having))
        if query.order_by:
            parts.append(self._order_phrase(query.order_by, query.limit))
        if query.distinct:
            parts[0] = f"the different {parts[0]}"
        return " ".join(parts)


def render_question(
    query: Query,
    schema: Schema,
    rng: np.random.Generator,
    noise: NoiseConfig | None = None,
) -> str:
    """Render one NL question for *query* with seeded paraphrase noise."""
    return QuestionRenderer(schema, rng, noise).render(query)
