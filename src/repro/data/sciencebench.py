"""ScienceBenchmark-sim: three scientific zero-shot evaluation domains.

Mirrors ScienceBenchmark (Zhang et al., 2023): OncoMX (cancer biomarkers),
Cordis (EU research projects) and SDSS (astronomy).  Column names are mostly
symbolic (``doid``, ``unics_id``, ``specobjid``) so lexical alignment learned
on SpiderSim transfers poorly — the same distribution shift that hurts PLM
schema linking on the real benchmark.  SDSS queries are join/WHERE-heavy,
reproducing the "all models hover around 10%" regime of the paper.

Only dev splits exist (the paper's *Spider Train (Zero-Shot)* setting).
"""

from __future__ import annotations

import numpy as np

from repro.data import values as V
from repro.data.dataset import Dataset, Example
from repro.data.domains import ColSpec, DomainSpec, TableSpec, build_domain
from repro.data.generator import QuerySampler, SamplerConfig
from repro.data.nl import NoiseConfig, QuestionRenderer
from repro.schema.schema import NUMBER, TEXT
from repro.sqlkit.printer import to_sql


def _oncomx_domain() -> DomainSpec:
    return DomainSpec(
        db_id="oncomx",
        tables=(
            TableSpec(
                "disease",
                (
                    ColSpec("doid", NUMBER, ("pk",), phrase="doid"),
                    ColSpec("name", TEXT, ("pool", V.DISEASES),
                            phrase="disease name"),
                ),
                rows=8,
                phrase="disease",
            ),
            TableSpec(
                "anatomical_entity",
                (
                    ColSpec("uberon_id", NUMBER, ("pk",), phrase="uberon id"),
                    ColSpec("name", TEXT, ("pool", V.TISSUES),
                            phrase="anatomical entity name"),
                ),
                rows=10,
                phrase="anatomical entity",
            ),
            TableSpec(
                "gene",
                (
                    ColSpec("gene_id", NUMBER, ("pk",), phrase="gene id"),
                    ColSpec("gene_symbol", TEXT, ("pool", V.GENE_SYMBOLS),
                            phrase="gene symbol"),
                    ColSpec("species_id", NUMBER, ("int", 9606, 10090),
                            phrase="species id"),
                ),
                rows=16,
                phrase="gene",
            ),
            TableSpec(
                "differential_expression",
                (
                    ColSpec("gene_id", NUMBER, ("fk", "gene", "gene_id"),
                            phrase="gene id"),
                    ColSpec("doid", NUMBER, ("fk", "disease", "doid"),
                            phrase="doid"),
                    ColSpec("uberon_id", NUMBER,
                            ("fk", "anatomical_entity", "uberon_id"),
                            phrase="uberon id"),
                    ColSpec("log2fc", NUMBER, ("float", -6.0, 6.0),
                            phrase="log2 fold change"),
                    ColSpec("adjpvalue", NUMBER, ("float", 0.0, 0.2),
                            phrase="adjusted p value"),
                ),
                rows=60,
                phrase="differential expression record",
            ),
            TableSpec(
                "biomarker",
                (
                    ColSpec("biomarker_id", NUMBER, ("pk",),
                            phrase="biomarker id"),
                    ColSpec("gene_id", NUMBER, ("fk", "gene", "gene_id"),
                            phrase="gene id"),
                    ColSpec("test_trade_name", TEXT, ("pool", (
                        "OncoTrace", "GenePanel X", "MarkerPro",
                        "BioScan 3", "PathSight",
                    )), phrase="test trade name"),
                    ColSpec("phase", TEXT, ("pool", (
                        "approved", "phase 1", "phase 2", "phase 3",
                    ))),
                ),
                rows=22,
                phrase="biomarker",
            ),
        ),
        fks=(
            ("differential_expression", "gene_id", "gene", "gene_id"),
            ("differential_expression", "doid", "disease", "doid"),
            ("differential_expression", "uberon_id",
             "anatomical_entity", "uberon_id"),
            ("biomarker", "gene_id", "gene", "gene_id"),
        ),
    )


def _cordis_domain() -> DomainSpec:
    return DomainSpec(
        db_id="cordis",
        tables=(
            TableSpec(
                "projects",
                (
                    ColSpec("unics_id", NUMBER, ("pk",), phrase="unics id"),
                    ColSpec("acronym", TEXT, ("pool", (
                        "AQUAFLOW", "BIOGRID", "CLIMAPATH", "DATAWEAVE",
                        "ENERMESH", "FUSENET", "GEOSENSE", "HYDROPULSE",
                    )), phrase="project acronym"),
                    ColSpec("ec_max_contribution", NUMBER,
                            ("int", 100000, 9000000),
                            phrase="ec max contribution"),
                    ColSpec("framework_program", TEXT,
                            ("pool", ("FP7", "H2020", "HORIZON")),
                            phrase="framework program"),
                    ColSpec("start_year", NUMBER, ("year", 2008, 2023),
                            phrase="start year"),
                ),
                rows=26,
                phrase="project",
            ),
            TableSpec(
                "institutions",
                (
                    ColSpec("institutions_id", NUMBER, ("pk",),
                            phrase="institutions id"),
                    ColSpec("institutions_name", TEXT,
                            ("pool", V.INSTITUTION_NAMES),
                            phrase="institution name"),
                    ColSpec("country_id", TEXT, ("pool", V.COUNTRIES),
                            phrase="country id"),
                ),
                rows=14,
                phrase="institution",
            ),
            TableSpec(
                "project_members",
                (
                    ColSpec("project", NUMBER, ("fk", "projects", "unics_id"),
                            phrase="project"),
                    ColSpec("institution_id", NUMBER,
                            ("fk", "institutions", "institutions_id"),
                            phrase="institution id"),
                    ColSpec("member_role", TEXT, ("pool", (
                        "coordinator", "participant", "partner",
                    )), phrase="member role"),
                    ColSpec("ec_contribution", NUMBER, ("int", 20000, 2500000),
                            phrase="ec contribution"),
                ),
                rows=52,
                phrase="project member",
            ),
            TableSpec(
                "people",
                (
                    ColSpec("unics_id", NUMBER, ("pk",), phrase="unics id"),
                    ColSpec("full_name", TEXT, ("name",), phrase="full name"),
                ),
                rows=20,
                phrase="person",
            ),
        ),
        fks=(
            ("project_members", "project", "projects", "unics_id"),
            ("project_members", "institution_id",
             "institutions", "institutions_id"),
        ),
    )


def _sdss_domain() -> DomainSpec:
    return DomainSpec(
        db_id="sdss",
        tables=(
            TableSpec(
                "photoobj",
                (
                    ColSpec("objid", NUMBER, ("pk",), phrase="objid"),
                    ColSpec("ra", NUMBER, ("float", 0.0, 360.0), phrase="ra"),
                    ColSpec("dec_", NUMBER, ("float", -90.0, 90.0),
                            phrase="dec"),
                    ColSpec("u", NUMBER, ("float", 14.0, 25.0), phrase="u"),
                    ColSpec("g", NUMBER, ("float", 14.0, 25.0), phrase="g"),
                    ColSpec("r", NUMBER, ("float", 14.0, 25.0), phrase="r"),
                    ColSpec("i", NUMBER, ("float", 14.0, 25.0), phrase="i"),
                    ColSpec("z_mag", NUMBER, ("float", 14.0, 25.0),
                            phrase="z mag"),
                    ColSpec("type_", NUMBER, ("int", 3, 6), phrase="type"),
                    ColSpec("mode_", NUMBER, ("int", 1, 2), phrase="mode"),
                ),
                rows=70,
                phrase="photoobj",
            ),
            TableSpec(
                "specobj",
                (
                    ColSpec("specobjid", NUMBER, ("pk",), phrase="specobjid"),
                    ColSpec("bestobjid", NUMBER, ("fk", "photoobj", "objid"),
                            phrase="bestobjid"),
                    ColSpec("class_", TEXT, ("pool", V.SPECTRAL_CLASSES),
                            phrase="class"),
                    ColSpec("redshift", NUMBER, ("float", 0.0, 4.5),
                            phrase="redshift"),
                    ColSpec("zwarning", NUMBER, ("int", 0, 4),
                            phrase="zwarning"),
                    ColSpec("plate", NUMBER, ("int", 200, 9000),
                            phrase="plate"),
                ),
                rows=48,
                phrase="specobj",
            ),
            TableSpec(
                "photoz",
                (
                    ColSpec("objid", NUMBER, ("fk", "photoobj", "objid"),
                            phrase="objid"),
                    ColSpec("z_est", NUMBER, ("float", 0.0, 1.5),
                            phrase="z est"),
                    ColSpec("zerr", NUMBER, ("float", 0.0, 0.3),
                            phrase="zerr"),
                ),
                rows=40,
                phrase="photoz record",
            ),
        ),
        fks=(
            ("specobj", "bestobjid", "photoobj", "objid"),
            ("photoz", "objid", "photoobj", "objid"),
        ),
    )


#: Per-domain query-mix weights: SDSS is join/WHERE-heavy, Cordis joins a lot.
_SCIENCE_WEIGHTS = {
    "oncomx": {
        "projection": 6.0,
        "projection_where": 20.0,
        "aggregate": 8.0,
        "count_star": 8.0,
        "order_limit": 8.0,
        "group_count": 6.0,
        "join_projection": 20.0,
        "join_chain": 6.0,
        "nested_in": 8.0,
        "scalar_subquery": 4.0,
        "set_op": 3.0,
    },
    "cordis": {
        "projection": 4.0,
        "projection_where": 14.0,
        "aggregate": 8.0,
        "count_star": 6.0,
        "order_limit": 8.0,
        "group_count": 8.0,
        "group_having": 4.0,
        "join_projection": 20.0,
        "join_chain": 12.0,
        "join_group": 8.0,
        "nested_in": 8.0,
        "set_op": 2.0,
    },
    "sdss": {
        "projection_where": 28.0,
        "aggregate": 4.0,
        "count_star": 8.0,
        "join_projection": 22.0,
        "join_chain": 16.0,
        "order_limit": 4.0,
        "nested_in": 10.0,
        "scalar_subquery": 6.0,
        "group_count": 2.0,
    },
}

#: WHERE clauses per domain: SDSS queries stack many predicates.
_SCIENCE_MAX_PREDICATES = {"oncomx": 2, "cordis": 2, "sdss": 3}

#: Domain-expert phrasings that replace the renderer's canonical cue words.
#: These are exactly the wording shifts that make zero-shot transfer hard:
#: the models' cue lexicon has never seen them.
_JARGON = {
    "oncomx": (
        (" whose ", " having "),
        (" is greater than ", " exceeding "),
        (" is less than ", " under the level "),
        ("for each ", "stratified by "),
    ),
    "cordis": (
        (" whose ", " having "),
        (" is greater than ", " exceeding "),
        (" is at least ", " no smaller than "),
        ("for each ", "broken down by "),
        (" is less than ", " staying below "),
    ),
    "sdss": (
        (" whose ", " having "),
        (" is greater than ", " brighter than "),
        (" is less than ", " fainter than "),
        (" is at most ", " capped at "),
        (" is at least ", " reaching "),
        ("for each ", "binned by "),
    ),
}


def _apply_jargon(
    question: str, db_id: str, rng: np.random.Generator, probability: float = 0.55
) -> str:
    """Swap canonical cue phrasings for domain jargon with some probability."""
    for old, new in _JARGON[db_id]:
        if old in question and rng.random() < probability:
            question = question.replace(old, new)
    return question

SCIENCE_DOMAINS = {
    "oncomx": _oncomx_domain,
    "cordis": _cordis_domain,
    "sdss": _sdss_domain,
}


def build_sciencebenchmark(
    seed: int = 17, per_domain: int = 100
) -> dict[str, Dataset]:
    """Build the three dev-only scientific datasets (zero-shot evaluation)."""
    datasets: dict[str, Dataset] = {}
    for index, (db_id, factory) in enumerate(sorted(SCIENCE_DOMAINS.items())):
        db = build_domain(factory(), seed=seed * 100 + index)
        rng = np.random.default_rng(seed + 31 * index)
        # Domain experts phrase questions tersely against symbolic columns:
        # synonyms are rare, table mentions often implicit.
        noise = NoiseConfig(synonym_prob=0.05, drop_table_prob=0.3)
        config = SamplerConfig(
            weights=_SCIENCE_WEIGHTS[db_id],
            max_where_predicates=_SCIENCE_MAX_PREDICATES[db_id],
        )
        sampler = QuerySampler(db, rng, config)
        renderer = QuestionRenderer(db.schema, rng, noise)
        seen: set[str] = set()
        examples: list[Example] = []
        attempts = 0
        while len(examples) < per_domain and attempts < per_domain * 12:
            attempts += 1
            query = sampler.sample()
            sql_text = to_sql(query)
            if sql_text in seen:
                continue
            seen.add(sql_text)
            question = renderer.render(query)
            question = _apply_jargon(question, db_id, rng)
            examples.append(Example(question=question, sql=query, db_id=db_id))
        datasets[db_id] = Dataset(
            name=f"science-{db_id}", examples=examples, databases={db_id: db}
        )
    return datasets
