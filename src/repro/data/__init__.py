"""Synthetic benchmark substrate.

Builds Spider-like and ScienceBenchmark-like corpora: multi-table domain
schemas with populated rows, a stratified SQL query sampler, and a rule-based
NL question renderer with seeded paraphrase noise.
"""

from repro.data.dataset import Benchmark, Dataset, Example
from repro.data.sciencebench import build_sciencebenchmark
from repro.data.spider import build_spider

__all__ = ["Example", "Dataset", "Benchmark", "build_spider", "build_sciencebenchmark"]
