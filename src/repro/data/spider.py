"""SpiderSim: the synthetic Spider-like cross-domain benchmark.

Builds 17 populated domain databases and samples train/dev NL-SQL pairs over
them.  Unlike the real Spider, dev questions use the *same* databases as
train (our learned parsers have no pre-trained encoder to generalise to
unseen schemas with), but dev query instances are freshly sampled and
disjoint from train; difficulty comes from paraphrase noise and query
compositionality.  This substitution is documented in DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Benchmark, Dataset, Example
from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.data.nl import NoiseConfig, QuestionRenderer
from repro.schema.database import Database
from repro.sqlkit.printer import to_sql


def build_databases(seed: int = 7) -> dict[str, Database]:
    """Instantiate every SpiderSim domain database."""
    databases: dict[str, Database] = {}
    for index, (db_id, spec) in enumerate(sorted(SPIDER_DOMAINS.items())):
        databases[db_id] = build_domain(spec, seed=seed * 1000 + index)
    return databases


def _sample_split(
    databases: dict[str, Database],
    per_domain: int,
    rng: np.random.Generator,
    noise: NoiseConfig,
    exclude: set[tuple[str, str]],
    name: str,
) -> Dataset:
    """Sample *per_domain* examples per database, avoiding *exclude* pairs."""
    examples: list[Example] = []
    for db_id in sorted(databases):
        db = databases[db_id]
        sampler = QuerySampler(db, rng)
        renderer = QuestionRenderer(db.schema, rng, noise)
        produced = 0
        attempts = 0
        while produced < per_domain and attempts < per_domain * 12:
            attempts += 1
            query = sampler.sample()
            key = (db_id, to_sql(query))
            if key in exclude:
                continue
            question = renderer.render(query)
            examples.append(Example(question=question, sql=query, db_id=db_id))
            exclude.add(key)
            produced += 1
    return Dataset(name=name, examples=examples, databases=databases)


def build_spider(
    seed: int = 7,
    train_per_domain: int = 100,
    dev_per_domain: int = 20,
    noise: NoiseConfig | None = None,
) -> Benchmark:
    """Build the SpiderSim benchmark (defaults: ~2500 train / ~500 dev)."""
    databases = build_databases(seed)
    noise = noise or NoiseConfig()
    train_rng = np.random.default_rng(seed + 101)
    dev_rng = np.random.default_rng(seed + 202)
    seen: set[tuple[str, str]] = set()
    train = _sample_split(
        databases, train_per_domain, train_rng, noise, seen, "spider-train"
    )
    dev = _sample_split(
        databases, dev_per_domain, dev_rng, noise, seen, "spider-dev"
    )
    return Benchmark(name="spider-sim", train=train, dev=dev)
