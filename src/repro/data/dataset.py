"""Dataset containers: examples, per-database splits and whole benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.database import Database
from repro.schema.schema import Schema
from repro.sqlkit.ast import Query
from repro.sqlkit.hardness import Hardness, hardness_level, hardness_rating
from repro.sqlkit.printer import to_sql


@dataclass(frozen=True)
class Example:
    """One NL/SQL pair bound to a database."""

    question: str
    sql: Query
    db_id: str

    @property
    def sql_text(self) -> str:
        return to_sql(self.sql)

    @property
    def hardness(self) -> Hardness:
        return hardness_level(self.sql)

    @property
    def rating(self) -> int:
        return hardness_rating(self.sql)


@dataclass
class Dataset:
    """A list of examples plus the databases they reference."""

    name: str
    examples: list[Example]
    databases: dict[str, Database]

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def schema(self, db_id: str) -> Schema:
        return self.databases[db_id].schema

    def database(self, db_id: str) -> Database:
        return self.databases[db_id]

    def by_hardness(self) -> dict[Hardness, list[Example]]:
        buckets: dict[Hardness, list[Example]] = {h: [] for h in Hardness}
        for example in self.examples:
            buckets[example.hardness].append(example)
        return buckets

    def subset(self, predicate) -> "Dataset":
        """A new dataset view keeping only examples matching *predicate*."""
        return Dataset(
            name=self.name,
            examples=[e for e in self.examples if predicate(e)],
            databases=self.databases,
        )


@dataclass
class Benchmark:
    """Train/dev splits sharing a database collection."""

    name: str
    train: Dataset
    dev: Dataset

    def summary(self) -> str:
        train_h = {h.value: len(v) for h, v in self.train.by_hardness().items()}
        dev_h = {h.value: len(v) for h, v in self.dev.by_hardness().items()}
        return (
            f"{self.name}: train={len(self.train)} {train_h} "
            f"dev={len(self.dev)} {dev_h} "
            f"databases={len(self.train.databases)}"
        )
