"""Domain schema specifications and the database builder.

Each :class:`DomainSpec` declares tables, typed columns with value
generators, NL phrases/synonyms and foreign keys.  ``build_domain``
instantiates a populated :class:`~repro.schema.database.Database`
deterministically from a seed.

The catalog below provides 25 Spider-like cross-domain schemas covering the
patterns the paper's examples revolve around (pets, world countries, cars,
concerts, ...), used by :mod:`repro.data.spider`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import values as V
from repro.schema.database import Database
from repro.schema.schema import NUMBER, TEXT, Column, ForeignKey, Schema, Table

# ----------------------------------------------------------------------
# Specification DSL.


@dataclass(frozen=True)
class ColSpec:
    """Column specification: type, value generator and NL annotations.

    ``value`` forms:
      ("pk",)                     sequential integer primary key
      ("fk", table, column)       sample from the parent column's values
      ("pool", tuple_of_values)   draw from a fixed pool
      ("name",)                   synthetic person name
      ("int", lo, hi)             uniform integer
      ("float", lo, hi)           uniform float rounded to 1 decimal
      ("year", lo, hi)            uniform year
    """

    name: str
    ctype: str = TEXT
    value: tuple = ("pool", V.CITIES)
    phrase: str | None = None
    synonyms: tuple[str, ...] = ()


@dataclass(frozen=True)
class TableSpec:
    name: str
    columns: tuple[ColSpec, ...]
    rows: int = 24
    phrase: str | None = None
    synonyms: tuple[str, ...] = ()


@dataclass(frozen=True)
class DomainSpec:
    db_id: str
    tables: tuple[TableSpec, ...]
    fks: tuple[tuple[str, str, str, str], ...] = ()


def build_domain(spec: DomainSpec, seed: int) -> Database:
    """Instantiate a populated database from *spec* deterministically."""
    rng = np.random.default_rng(seed)
    tables = tuple(
        Table(
            name=t.name,
            columns=tuple(
                Column(
                    name=c.name,
                    ctype=c.ctype,
                    phrase=c.phrase,
                    synonyms=c.synonyms,
                )
                for c in t.columns
            ),
            phrase=t.phrase,
            synonyms=t.synonyms,
        )
        for t in spec.tables
    )
    fks = tuple(ForeignKey(*fk) for fk in spec.fks)
    schema = Schema(db_id=spec.db_id, tables=tables, foreign_keys=fks)
    db = Database(schema)

    generated: dict[tuple[str, str], list[object]] = {}
    for table_spec in spec.tables:
        rows = []
        for row_index in range(table_spec.rows):
            row: dict[str, object] = {}
            for col_spec in table_spec.columns:
                row[col_spec.name] = _make_value(
                    col_spec, row_index, generated, rng
                )
            rows.append(row)
        db.insert_many(table_spec.name, rows)
        for col_spec in table_spec.columns:
            generated[(table_spec.name.lower(), col_spec.name.lower())] = [
                r[col_spec.name] for r in rows
            ]
    return db


def _make_value(
    col: ColSpec,
    row_index: int,
    generated: dict[tuple[str, str], list[object]],
    rng: np.random.Generator,
) -> object:
    kind = col.value[0]
    if kind == "pk":
        return row_index + 1
    if kind == "fk":
        parent = generated.get((col.value[1].lower(), col.value[2].lower()))
        if not parent:
            raise ValueError(
                f"fk column {col.name} references unbuilt {col.value[1]}"
            )
        return parent[int(rng.integers(len(parent)))]
    if kind == "pool":
        return V.sample(col.value[1], rng)
    if kind == "name":
        return V.person_name(rng)
    if kind == "int":
        return int(rng.integers(col.value[1], col.value[2] + 1))
    if kind == "float":
        return round(float(rng.uniform(col.value[1], col.value[2])), 1)
    if kind == "year":
        return int(rng.integers(col.value[1], col.value[2] + 1))
    raise ValueError(f"unknown value spec: {col.value}")


# ----------------------------------------------------------------------
# Spider-like domain catalog.


def _pets_domain() -> DomainSpec:
    return DomainSpec(
        db_id="pets",
        tables=(
            TableSpec(
                "student",
                (
                    ColSpec("stuid", NUMBER, ("pk",), phrase="student id"),
                    ColSpec("lname", TEXT, ("pool", V.PERSON_LAST),
                            phrase="last name", synonyms=("family name",)),
                    ColSpec("fname", TEXT, ("pool", V.PERSON_FIRST),
                            phrase="first name"),
                    ColSpec("age", NUMBER, ("int", 17, 27)),
                    ColSpec("major", TEXT, ("pool", V.MAJORS),
                            synonyms=("field of study",)),
                    ColSpec("city_code", TEXT, ("pool", V.CITIES),
                            phrase="home city"),
                ),
                rows=30,
                phrase="student",
                synonyms=("pupil",),
            ),
            TableSpec(
                "has_pet",
                (
                    ColSpec("stuid", NUMBER, ("fk", "student", "stuid"),
                            phrase="student id"),
                    ColSpec("petid", NUMBER, ("pk",), phrase="pet id"),
                ),
                rows=26,
                phrase="pet ownership",
            ),
            TableSpec(
                "pets",
                (
                    ColSpec("petid", NUMBER, ("pk",), phrase="pet id"),
                    ColSpec("pettype", TEXT, ("pool", V.PET_TYPES),
                            phrase="pet type", synonyms=("kind of pet",)),
                    ColSpec("pet_age", NUMBER, ("int", 1, 14),
                            phrase="pet age"),
                    ColSpec("weight", NUMBER, ("float", 1, 40)),
                ),
                rows=26,
                phrase="pet",
                synonyms=("animal",),
            ),
        ),
        fks=(
            ("has_pet", "stuid", "student", "stuid"),
            ("has_pet", "petid", "pets", "petid"),
        ),
    )


def _world_domain() -> DomainSpec:
    return DomainSpec(
        db_id="world",
        tables=(
            TableSpec(
                "country",
                (
                    ColSpec("code", TEXT, ("pool", V.COUNTRIES),
                            phrase="country code"),
                    ColSpec("name", TEXT, ("pool", V.COUNTRIES),
                            phrase="country name"),
                    ColSpec("continent", TEXT, ("pool", V.CONTINENTS)),
                    ColSpec("population", NUMBER, ("int", 100000, 90000000)),
                    ColSpec("surfacearea", NUMBER, ("int", 1000, 900000),
                            phrase="surface area", synonyms=("area",)),
                ),
                rows=20,
                phrase="country",
                synonyms=("nation",),
            ),
            TableSpec(
                "countrylanguage",
                (
                    ColSpec("countrycode", TEXT, ("fk", "country", "code"),
                            phrase="country code"),
                    ColSpec("language", TEXT, ("pool", V.LANGUAGES),
                            synonyms=("tongue",)),
                    ColSpec("isofficial", TEXT, ("pool", ("T", "F")),
                            phrase="official status"),
                    ColSpec("percentage", NUMBER, ("float", 0.5, 100.0),
                            phrase="speaking percentage"),
                ),
                rows=40,
                phrase="country language",
                synonyms=("spoken language",),
            ),
            TableSpec(
                "city",
                (
                    ColSpec("city_id", NUMBER, ("pk",), phrase="city id"),
                    ColSpec("name", TEXT, ("pool", V.CITIES),
                            phrase="city name"),
                    ColSpec("countrycode", TEXT, ("fk", "country", "code"),
                            phrase="country code"),
                    ColSpec("population", NUMBER, ("int", 5000, 9000000)),
                ),
                rows=34,
                phrase="city",
                synonyms=("town",),
            ),
        ),
        fks=(
            ("countrylanguage", "countrycode", "country", "code"),
            ("city", "countrycode", "country", "code"),
        ),
    )


def _cars_domain() -> DomainSpec:
    return DomainSpec(
        db_id="cars",
        tables=(
            TableSpec(
                "car_makers",
                (
                    ColSpec("maker_id", NUMBER, ("pk",), phrase="maker id"),
                    ColSpec("maker", TEXT, ("pool", V.MAKERS),
                            phrase="maker name", synonyms=("manufacturer",)),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                ),
                rows=14,
                phrase="car maker",
                synonyms=("manufacturer",),
            ),
            TableSpec(
                "model_list",
                (
                    ColSpec("model_id", NUMBER, ("pk",), phrase="model id"),
                    ColSpec("maker_id", NUMBER, ("fk", "car_makers", "maker_id"),
                            phrase="maker id"),
                    ColSpec("model", TEXT, ("pool", (
                        "falcon", "orbit", "strada", "lumen", "vector",
                        "canyon", "breeze", "apex", "terra", "comet",
                    )), phrase="model name"),
                ),
                rows=26,
                phrase="car model",
            ),
            TableSpec(
                "cars_data",
                (
                    ColSpec("car_id", NUMBER, ("pk",), phrase="car id"),
                    ColSpec("model_id", NUMBER, ("fk", "model_list", "model_id"),
                            phrase="model id"),
                    ColSpec("mpg", NUMBER, ("float", 10, 45),
                            phrase="miles per gallon", synonyms=("fuel economy",)),
                    ColSpec("horsepower", NUMBER, ("int", 60, 400)),
                    ColSpec("weight", NUMBER, ("int", 1600, 5200)),
                    ColSpec("year", NUMBER, ("year", 1970, 1995),
                            phrase="production year"),
                ),
                rows=40,
                phrase="car",
                synonyms=("vehicle", "automobile"),
            ),
        ),
        fks=(
            ("model_list", "maker_id", "car_makers", "maker_id"),
            ("cars_data", "model_id", "model_list", "model_id"),
        ),
    )


def _concerts_domain() -> DomainSpec:
    return DomainSpec(
        db_id="concert_singer",
        tables=(
            TableSpec(
                "singer",
                (
                    ColSpec("singer_id", NUMBER, ("pk",), phrase="singer id"),
                    ColSpec("name", TEXT, ("name",), phrase="singer name"),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                    ColSpec("age", NUMBER, ("int", 18, 65)),
                    ColSpec("genre", TEXT, ("pool", V.GENRES),
                            synonyms=("music style",)),
                ),
                rows=24,
                phrase="singer",
                synonyms=("vocalist", "artist"),
            ),
            TableSpec(
                "stadium",
                (
                    ColSpec("stadium_id", NUMBER, ("pk",), phrase="stadium id"),
                    ColSpec("name", TEXT, ("pool", (
                        "North Arena", "Harbor Field", "Sunset Dome",
                        "Union Grounds", "Central Bowl", "Lakeside Park",
                        "Granite Hall", "Meadow Court",
                    )), phrase="stadium name"),
                    ColSpec("capacity", NUMBER, ("int", 2000, 80000)),
                    ColSpec("city", TEXT, ("pool", V.CITIES)),
                ),
                rows=12,
                phrase="stadium",
                synonyms=("venue", "arena"),
            ),
            TableSpec(
                "concert",
                (
                    ColSpec("concert_id", NUMBER, ("pk",), phrase="concert id"),
                    ColSpec("singer_id", NUMBER, ("fk", "singer", "singer_id"),
                            phrase="singer id"),
                    ColSpec("stadium_id", NUMBER, ("fk", "stadium", "stadium_id"),
                            phrase="stadium id"),
                    ColSpec("year", NUMBER, ("year", 2010, 2023),
                            phrase="concert year"),
                    ColSpec("attendance", NUMBER, ("int", 500, 70000)),
                ),
                rows=34,
                phrase="concert",
                synonyms=("show", "performance"),
            ),
        ),
        fks=(
            ("concert", "singer_id", "singer", "singer_id"),
            ("concert", "stadium_id", "stadium", "stadium_id"),
        ),
    )


def _employees_domain() -> DomainSpec:
    return DomainSpec(
        db_id="company",
        tables=(
            TableSpec(
                "department",
                (
                    ColSpec("dept_id", NUMBER, ("pk",), phrase="department id"),
                    ColSpec("dept_name", TEXT, ("pool", V.DEPARTMENTS),
                            phrase="department name", synonyms=("division",)),
                    ColSpec("budget", NUMBER, ("int", 100000, 5000000)),
                ),
                rows=10,
                phrase="department",
                synonyms=("division",),
            ),
            TableSpec(
                "employee",
                (
                    ColSpec("emp_id", NUMBER, ("pk",), phrase="employee id"),
                    ColSpec("name", TEXT, ("name",), phrase="employee name"),
                    ColSpec("dept_id", NUMBER, ("fk", "department", "dept_id"),
                            phrase="department id"),
                    ColSpec("salary", NUMBER, ("int", 30000, 180000),
                            synonyms=("pay", "wage")),
                    ColSpec("age", NUMBER, ("int", 21, 64)),
                    ColSpec("city", TEXT, ("pool", V.CITIES),
                            phrase="home city"),
                ),
                rows=40,
                phrase="employee",
                synonyms=("worker", "staff member"),
            ),
            TableSpec(
                "evaluation",
                (
                    ColSpec("eval_id", NUMBER, ("pk",), phrase="evaluation id"),
                    ColSpec("emp_id", NUMBER, ("fk", "employee", "emp_id"),
                            phrase="employee id"),
                    ColSpec("year", NUMBER, ("year", 2015, 2023),
                            phrase="evaluation year"),
                    ColSpec("bonus", NUMBER, ("int", 0, 30000),
                            synonyms=("one time bonus",)),
                ),
                rows=36,
                phrase="evaluation",
                synonyms=("review",),
            ),
        ),
        fks=(
            ("employee", "dept_id", "department", "dept_id"),
            ("evaluation", "emp_id", "employee", "emp_id"),
        ),
    )


def _flights_domain() -> DomainSpec:
    return DomainSpec(
        db_id="flights",
        tables=(
            TableSpec(
                "airline",
                (
                    ColSpec("airline_id", NUMBER, ("pk",), phrase="airline id"),
                    ColSpec("name", TEXT, ("pool", V.AIRLINES),
                            phrase="airline name", synonyms=("carrier",)),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES),
                            phrase="home country"),
                ),
                rows=10,
                phrase="airline",
                synonyms=("carrier",),
            ),
            TableSpec(
                "airport",
                (
                    ColSpec("airport_code", TEXT, ("pool", (
                        "ANB", "BRX", "CLD", "DRW", "ELM", "FRV", "GTN",
                        "HBR", "KNG", "LKW", "MDS", "NWP",
                    )), phrase="airport code"),
                    ColSpec("city", TEXT, ("pool", V.CITIES)),
                    ColSpec("elevation", NUMBER, ("int", 0, 2500)),
                ),
                rows=12,
                phrase="airport",
            ),
            TableSpec(
                "flight",
                (
                    ColSpec("flight_id", NUMBER, ("pk",), phrase="flight id"),
                    ColSpec("airline_id", NUMBER, ("fk", "airline", "airline_id"),
                            phrase="airline id"),
                    ColSpec("source", TEXT, ("fk", "airport", "airport_code"),
                            phrase="source airport", synonyms=("origin",)),
                    ColSpec("destination", TEXT,
                            ("fk", "airport", "airport_code"),
                            phrase="destination airport"),
                    ColSpec("distance", NUMBER, ("int", 120, 9000)),
                    ColSpec("price", NUMBER, ("int", 60, 1500),
                            synonyms=("fare", "cost")),
                ),
                rows=44,
                phrase="flight",
            ),
        ),
        fks=(
            ("flight", "airline_id", "airline", "airline_id"),
            ("flight", "source", "airport", "airport_code"),
        ),
    )


def _college_domain() -> DomainSpec:
    return DomainSpec(
        db_id="college",
        tables=(
            TableSpec(
                "college",
                (
                    ColSpec("cname", TEXT, ("pool", V.INSTITUTION_NAMES),
                            phrase="college name"),
                    ColSpec("state", TEXT, ("pool", V.CITIES)),
                    ColSpec("enrollment", NUMBER, ("int", 2000, 45000),
                            synonyms=("enrolment", "student count")),
                ),
                rows=10,
                phrase="college",
                synonyms=("school", "university"),
            ),
            TableSpec(
                "player",
                (
                    ColSpec("pid", NUMBER, ("pk",), phrase="player id"),
                    ColSpec("pname", TEXT, ("name",), phrase="player name"),
                    ColSpec("ycard", TEXT, ("pool", ("yes", "no")),
                            phrase="yellow card status"),
                    ColSpec("hs", NUMBER, ("int", 200, 1800),
                            phrase="training hours",
                            synonyms=("hours spent training",)),
                ),
                rows=34,
                phrase="player",
                synonyms=("athlete",),
            ),
            TableSpec(
                "tryout",
                (
                    ColSpec("pid", NUMBER, ("fk", "player", "pid"),
                            phrase="player id"),
                    ColSpec("cname", TEXT, ("fk", "college", "cname"),
                            phrase="college name"),
                    ColSpec("ppos", TEXT, ("pool", (
                        "goalie", "striker", "midfielder", "defender",
                    )), phrase="position"),
                    ColSpec("decision", TEXT, ("pool", ("yes", "no")),
                            phrase="tryout decision"),
                ),
                rows=38,
                phrase="tryout",
            ),
        ),
        fks=(
            ("tryout", "pid", "player", "pid"),
            ("tryout", "cname", "college", "cname"),
        ),
    )


def _orchestra_domain() -> DomainSpec:
    return DomainSpec(
        db_id="orchestra",
        tables=(
            TableSpec(
                "conductor",
                (
                    ColSpec("conductor_id", NUMBER, ("pk",),
                            phrase="conductor id"),
                    ColSpec("name", TEXT, ("name",), phrase="conductor name"),
                    ColSpec("nationality", TEXT, ("pool", V.COUNTRIES)),
                    ColSpec("year_of_work", NUMBER, ("int", 1, 40),
                            phrase="years of work"),
                ),
                rows=14,
                phrase="conductor",
                synonyms=("maestro",),
            ),
            TableSpec(
                "orchestra",
                (
                    ColSpec("orchestra_id", NUMBER, ("pk",),
                            phrase="orchestra id"),
                    ColSpec("orchestra_name", TEXT, ("pool", (
                        "Riverton Philharmonic", "Civic Symphony",
                        "Chamber Players", "Festival Orchestra",
                        "Radio Symphony", "Youth Orchestra",
                        "Opera House Orchestra", "Baroque Ensemble",
                    )), phrase="orchestra name"),
                    ColSpec("conductor_id", NUMBER,
                            ("fk", "conductor", "conductor_id"),
                            phrase="conductor id"),
                    ColSpec("year_founded", NUMBER, ("year", 1880, 2005),
                            phrase="founding year"),
                ),
                rows=16,
                phrase="orchestra",
                synonyms=("ensemble",),
            ),
            TableSpec(
                "performance",
                (
                    ColSpec("performance_id", NUMBER, ("pk",),
                            phrase="performance id"),
                    ColSpec("orchestra_id", NUMBER,
                            ("fk", "orchestra", "orchestra_id"),
                            phrase="orchestra id"),
                    ColSpec("type", TEXT, ("pool", (
                        "symphony", "concerto", "overture", "suite",
                    )), phrase="performance type"),
                    ColSpec("attendance", NUMBER, ("int", 150, 3200)),
                ),
                rows=30,
                phrase="performance",
            ),
        ),
        fks=(
            ("orchestra", "conductor_id", "conductor", "conductor_id"),
            ("performance", "orchestra_id", "orchestra", "orchestra_id"),
        ),
    )


def _tvshow_domain() -> DomainSpec:
    return DomainSpec(
        db_id="tvshow",
        tables=(
            TableSpec(
                "tv_channel",
                (
                    ColSpec("channel_id", NUMBER, ("pk",), phrase="channel id"),
                    ColSpec("series_name", TEXT, ("pool", (
                        "Channel One", "Metro TV", "Blue Screen", "Nova",
                        "Skyline", "Pulse", "Horizon TV", "Vista",
                    )), phrase="channel name"),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                    ColSpec("language", TEXT, ("pool", V.LANGUAGES)),
                ),
                rows=10,
                phrase="TV channel",
                synonyms=("network",),
            ),
            TableSpec(
                "tv_series",
                (
                    ColSpec("series_id", NUMBER, ("pk",), phrase="series id"),
                    ColSpec("title", TEXT, ("pool", V.SHOW_TITLES),
                            phrase="series title", synonyms=("show name",)),
                    ColSpec("channel_id", NUMBER,
                            ("fk", "tv_channel", "channel_id"),
                            phrase="channel id"),
                    ColSpec("rating", NUMBER, ("float", 1.0, 9.9)),
                    ColSpec("episodes", NUMBER, ("int", 6, 120),
                            phrase="episode count"),
                ),
                rows=26,
                phrase="TV series",
                synonyms=("show", "program"),
            ),
        ),
        fks=(("tv_series", "channel_id", "tv_channel", "channel_id"),),
    )


def _museum_domain() -> DomainSpec:
    return DomainSpec(
        db_id="museum_visit",
        tables=(
            TableSpec(
                "museum",
                (
                    ColSpec("museum_id", NUMBER, ("pk",), phrase="museum id"),
                    ColSpec("name", TEXT, ("pool", V.MUSEUM_NAMES),
                            phrase="museum name"),
                    ColSpec("num_of_staff", NUMBER, ("int", 4, 120),
                            phrase="staff count"),
                    ColSpec("open_year", NUMBER, ("year", 1860, 2015),
                            phrase="opening year"),
                ),
                rows=10,
                phrase="museum",
            ),
            TableSpec(
                "visitor",
                (
                    ColSpec("visitor_id", NUMBER, ("pk",), phrase="visitor id"),
                    ColSpec("name", TEXT, ("name",), phrase="visitor name"),
                    ColSpec("age", NUMBER, ("int", 6, 80)),
                    ColSpec("level_of_membership", NUMBER, ("int", 1, 8),
                            phrase="membership level"),
                ),
                rows=26,
                phrase="visitor",
                synonyms=("guest",),
            ),
            TableSpec(
                "visit",
                (
                    ColSpec("museum_id", NUMBER, ("fk", "museum", "museum_id"),
                            phrase="museum id"),
                    ColSpec("visitor_id", NUMBER,
                            ("fk", "visitor", "visitor_id"),
                            phrase="visitor id"),
                    ColSpec("num_of_ticket", NUMBER, ("int", 1, 8),
                            phrase="ticket count"),
                    ColSpec("total_spent", NUMBER, ("float", 5, 400),
                            phrase="total spending"),
                ),
                rows=36,
                phrase="visit",
            ),
        ),
        fks=(
            ("visit", "museum_id", "museum", "museum_id"),
            ("visit", "visitor_id", "visitor", "visitor_id"),
        ),
    )


def _battles_domain() -> DomainSpec:
    return DomainSpec(
        db_id="battle_death",
        tables=(
            TableSpec(
                "battle",
                (
                    ColSpec("battle_id", NUMBER, ("pk",), phrase="battle id"),
                    ColSpec("name", TEXT, ("pool", V.BATTLE_NAMES),
                            phrase="battle name"),
                    ColSpec("date_year", NUMBER, ("year", 1700, 1900),
                            phrase="battle year"),
                    ColSpec("result", TEXT, ("pool", (
                        "victory", "defeat", "draw",
                    )), phrase="battle result"),
                ),
                rows=12,
                phrase="battle",
            ),
            TableSpec(
                "ship",
                (
                    ColSpec("ship_id", NUMBER, ("pk",), phrase="ship id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Resolute", "Dawn Star", "Iron Gull", "Sea Fox",
                        "Tempest", "Vigilant", "Wanderer", "Meridian",
                    )), phrase="ship name"),
                    ColSpec("lost_in_battle", NUMBER,
                            ("fk", "battle", "battle_id"),
                            phrase="battle where lost"),
                    ColSpec("tonnage", NUMBER, ("int", 200, 4000)),
                ),
                rows=22,
                phrase="ship",
                synonyms=("vessel",),
            ),
            TableSpec(
                "death",
                (
                    ColSpec("caused_by_ship_id", NUMBER, ("fk", "ship", "ship_id"),
                            phrase="ship id"),
                    ColSpec("killed", NUMBER, ("int", 0, 600)),
                    ColSpec("injured", NUMBER, ("int", 0, 900)),
                ),
                rows=24,
                phrase="casualty record",
            ),
        ),
        fks=(
            ("ship", "lost_in_battle", "battle", "battle_id"),
            ("death", "caused_by_ship_id", "ship", "ship_id"),
        ),
    )


def _dorms_domain() -> DomainSpec:
    return DomainSpec(
        db_id="dorm",
        tables=(
            TableSpec(
                "dorm",
                (
                    ColSpec("dormid", NUMBER, ("pk",), phrase="dorm id"),
                    ColSpec("dorm_name", TEXT, ("pool", (
                        "Maple Hall", "Cedar House", "Willow Court",
                        "Elm Lodge", "Aspen Hall", "Birch House",
                    )), phrase="dorm name"),
                    ColSpec("student_capacity", NUMBER, ("int", 40, 600),
                            phrase="capacity"),
                    ColSpec("gender", TEXT, ("pool", ("male", "female", "mixed"))),
                ),
                rows=8,
                phrase="dorm",
                synonyms=("dormitory", "residence hall"),
            ),
            TableSpec(
                "lives_in",
                (
                    ColSpec("stuid", NUMBER, ("int", 1, 40),
                            phrase="student id"),
                    ColSpec("dormid", NUMBER, ("fk", "dorm", "dormid"),
                            phrase="dorm id"),
                    ColSpec("room_number", NUMBER, ("int", 100, 499)),
                ),
                rows=34,
                phrase="residence record",
            ),
        ),
        fks=(("lives_in", "dormid", "dorm", "dormid"),),
    )


def _library_domain() -> DomainSpec:
    return DomainSpec(
        db_id="library",
        tables=(
            TableSpec(
                "author",
                (
                    ColSpec("author_id", NUMBER, ("pk",), phrase="author id"),
                    ColSpec("name", TEXT, ("name",), phrase="author name"),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                ),
                rows=16,
                phrase="author",
                synonyms=("writer",),
            ),
            TableSpec(
                "book",
                (
                    ColSpec("book_id", NUMBER, ("pk",), phrase="book id"),
                    ColSpec("title", TEXT, ("pool", V.SHOW_TITLES),
                            phrase="book title"),
                    ColSpec("author_id", NUMBER, ("fk", "author", "author_id"),
                            phrase="author id"),
                    ColSpec("year", NUMBER, ("year", 1950, 2022),
                            phrase="publication year"),
                    ColSpec("pages", NUMBER, ("int", 80, 900),
                            phrase="page count"),
                ),
                rows=30,
                phrase="book",
                synonyms=("novel", "title"),
            ),
            TableSpec(
                "loan",
                (
                    ColSpec("loan_id", NUMBER, ("pk",), phrase="loan id"),
                    ColSpec("book_id", NUMBER, ("fk", "book", "book_id"),
                            phrase="book id"),
                    ColSpec("member_name", TEXT, ("name",),
                            phrase="member name"),
                    ColSpec("days_kept", NUMBER, ("int", 1, 60),
                            phrase="days kept"),
                ),
                rows=36,
                phrase="loan",
                synonyms=("borrowing",),
            ),
        ),
        fks=(
            ("book", "author_id", "author", "author_id"),
            ("loan", "book_id", "book", "book_id"),
        ),
    )


def _restaurant_domain() -> DomainSpec:
    return DomainSpec(
        db_id="restaurants",
        tables=(
            TableSpec(
                "restaurant",
                (
                    ColSpec("rest_id", NUMBER, ("pk",), phrase="restaurant id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Blue Plate", "Harvest Table", "Corner Bistro",
                        "Sea Salt", "The Copper Pot", "Garden Cafe",
                        "Night Market", "Cedar Grill",
                    )), phrase="restaurant name"),
                    ColSpec("food_type", TEXT, ("pool", (
                        "italian", "thai", "mexican", "seafood", "vegan",
                        "barbecue", "french", "indian",
                    )), phrase="food type", synonyms=("cuisine",)),
                    ColSpec("city", TEXT, ("pool", V.CITIES)),
                    ColSpec("rating", NUMBER, ("float", 1.0, 5.0)),
                ),
                rows=24,
                phrase="restaurant",
                synonyms=("eatery", "diner"),
            ),
            TableSpec(
                "orders",
                (
                    ColSpec("order_id", NUMBER, ("pk",), phrase="order id"),
                    ColSpec("rest_id", NUMBER, ("fk", "restaurant", "rest_id"),
                            phrase="restaurant id"),
                    ColSpec("customer", TEXT, ("name",),
                            phrase="customer name"),
                    ColSpec("total", NUMBER, ("float", 8, 220),
                            phrase="order total"),
                ),
                rows=40,
                phrase="order",
            ),
        ),
        fks=(("orders", "rest_id", "restaurant", "rest_id"),),
    )


def _courses_domain() -> DomainSpec:
    return DomainSpec(
        db_id="courses",
        tables=(
            TableSpec(
                "instructor",
                (
                    ColSpec("instr_id", NUMBER, ("pk",), phrase="instructor id"),
                    ColSpec("name", TEXT, ("name",), phrase="instructor name"),
                    ColSpec("dept", TEXT, ("pool", V.MAJORS),
                            phrase="department"),
                    ColSpec("salary", NUMBER, ("int", 45000, 160000)),
                ),
                rows=18,
                phrase="instructor",
                synonyms=("teacher", "professor"),
            ),
            TableSpec(
                "course",
                (
                    ColSpec("course_id", NUMBER, ("pk",), phrase="course id"),
                    ColSpec("title", TEXT, ("pool", (
                        "Intro to Logic", "Linear Algebra", "World History",
                        "Organic Chemistry", "Microeconomics",
                        "Data Structures", "Thermodynamics", "Poetics",
                    )), phrase="course title"),
                    ColSpec("instr_id", NUMBER, ("fk", "instructor", "instr_id"),
                            phrase="instructor id"),
                    ColSpec("credits", NUMBER, ("int", 1, 6)),
                    ColSpec("enrollment", NUMBER, ("int", 5, 300),
                            phrase="enrolled students"),
                ),
                rows=30,
                phrase="course",
                synonyms=("class",),
            ),
        ),
        fks=(("course", "instr_id", "instructor", "instr_id"),),
    )


def _climbing_domain() -> DomainSpec:
    return DomainSpec(
        db_id="climbing",
        tables=(
            TableSpec(
                "mountain",
                (
                    ColSpec("mountain_id", NUMBER, ("pk",),
                            phrase="mountain id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Mount Arden", "Kestrel Peak", "Graystone",
                        "Mount Halla", "Windmere Summit", "The Needle",
                        "Mount Corvus", "Falcon Ridge",
                    )), phrase="mountain name"),
                    ColSpec("height", NUMBER, ("int", 1800, 8500)),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                ),
                rows=14,
                phrase="mountain",
                synonyms=("peak",),
            ),
            TableSpec(
                "climber",
                (
                    ColSpec("climber_id", NUMBER, ("pk",), phrase="climber id"),
                    ColSpec("name", TEXT, ("name",), phrase="climber name"),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                    ColSpec("mountain_id", NUMBER,
                            ("fk", "mountain", "mountain_id"),
                            phrase="mountain id"),
                    ColSpec("points", NUMBER, ("int", 0, 100)),
                ),
                rows=26,
                phrase="climber",
                synonyms=("mountaineer",),
            ),
        ),
        fks=(("climber", "mountain_id", "mountain", "mountain_id"),),
    )


def _shops_domain() -> DomainSpec:
    return DomainSpec(
        db_id="shops",
        tables=(
            TableSpec(
                "shop",
                (
                    ColSpec("shop_id", NUMBER, ("pk",), phrase="shop id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Corner Goods", "Daily Mart", "Green Grocer",
                        "Hardware Plus", "Book Nook", "Style Avenue",
                        "Fresh Fields", "Gadget Hub",
                    )), phrase="shop name"),
                    ColSpec("district", TEXT, ("pool", V.CITIES)),
                    ColSpec("number_products", NUMBER, ("int", 20, 900),
                            phrase="product count"),
                ),
                rows=14,
                phrase="shop",
                synonyms=("store",),
            ),
            TableSpec(
                "staff",
                (
                    ColSpec("staff_id", NUMBER, ("pk",), phrase="staff id"),
                    ColSpec("name", TEXT, ("name",), phrase="staff name"),
                    ColSpec("shop_id", NUMBER, ("fk", "shop", "shop_id"),
                            phrase="shop id"),
                    ColSpec("age", NUMBER, ("int", 18, 62)),
                    ColSpec("wage", NUMBER, ("int", 1800, 6200),
                            synonyms=("salary",)),
                ),
                rows=34,
                phrase="staff member",
                synonyms=("employee", "clerk"),
            ),
        ),
        fks=(("staff", "shop_id", "shop", "shop_id"),),
    )




def _hospital_domain() -> DomainSpec:
    return DomainSpec(
        db_id="hospital",
        tables=(
            TableSpec(
                "physician",
                (
                    ColSpec("physician_id", NUMBER, ("pk",),
                            phrase="physician id"),
                    ColSpec("name", TEXT, ("name",), phrase="physician name"),
                    ColSpec("specialty", TEXT, ("pool", (
                        "cardiology", "oncology", "pediatrics", "neurology",
                        "radiology", "surgery",
                    ))),
                    ColSpec("years_experience", NUMBER, ("int", 1, 35),
                            phrase="years of experience"),
                ),
                rows=18,
                phrase="physician",
                synonyms=("doctor",),
            ),
            TableSpec(
                "patient",
                (
                    ColSpec("patient_id", NUMBER, ("pk",), phrase="patient id"),
                    ColSpec("name", TEXT, ("name",), phrase="patient name"),
                    ColSpec("age", NUMBER, ("int", 1, 90)),
                    ColSpec("city", TEXT, ("pool", V.CITIES)),
                ),
                rows=30,
                phrase="patient",
            ),
            TableSpec(
                "appointment",
                (
                    ColSpec("appt_id", NUMBER, ("pk",), phrase="appointment id"),
                    ColSpec("physician_id", NUMBER,
                            ("fk", "physician", "physician_id"),
                            phrase="physician id"),
                    ColSpec("patient_id", NUMBER,
                            ("fk", "patient", "patient_id"),
                            phrase="patient id"),
                    ColSpec("duration", NUMBER, ("int", 10, 90),
                            phrase="duration in minutes"),
                ),
                rows=40,
                phrase="appointment",
                synonyms=("visit",),
            ),
        ),
        fks=(
            ("appointment", "physician_id", "physician", "physician_id"),
            ("appointment", "patient_id", "patient", "patient_id"),
        ),
    )


def _wine_domain() -> DomainSpec:
    return DomainSpec(
        db_id="wine",
        tables=(
            TableSpec(
                "winery",
                (
                    ColSpec("winery_id", NUMBER, ("pk",), phrase="winery id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Stonebrook Cellars", "Vista Ridge", "Old Mill Estate",
                        "Harvest Moon", "Copper Creek", "Valley Oak",
                    )), phrase="winery name"),
                    ColSpec("region", TEXT, ("pool", V.CITIES)),
                ),
                rows=10,
                phrase="winery",
                synonyms=("vineyard",),
            ),
            TableSpec(
                "wine",
                (
                    ColSpec("wine_id", NUMBER, ("pk",), phrase="wine id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Red Harvest", "Golden Field", "Night Press",
                        "Silver Vine", "Autumn Cask", "First Frost",
                    )), phrase="wine name"),
                    ColSpec("winery_id", NUMBER, ("fk", "winery", "winery_id"),
                            phrase="winery id"),
                    ColSpec("year", NUMBER, ("year", 1990, 2022),
                            phrase="vintage year"),
                    ColSpec("score", NUMBER, ("int", 70, 100)),
                    ColSpec("price", NUMBER, ("int", 8, 250)),
                ),
                rows=34,
                phrase="wine",
                synonyms=("bottle",),
            ),
        ),
        fks=(("wine", "winery_id", "winery", "winery_id"),),
    )


def _race_domain() -> DomainSpec:
    return DomainSpec(
        db_id="race_track",
        tables=(
            TableSpec(
                "track",
                (
                    ColSpec("track_id", NUMBER, ("pk",), phrase="track id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Silver Loop", "Harbor Circuit", "Hillcrest Raceway",
                        "Sunset Speedway", "Granite Ring",
                    )), phrase="track name"),
                    ColSpec("seating", NUMBER, ("int", 5000, 120000)),
                    ColSpec("year_opened", NUMBER, ("year", 1950, 2015),
                            phrase="opening year"),
                ),
                rows=8,
                phrase="track",
                synonyms=("circuit",),
            ),
            TableSpec(
                "race",
                (
                    ColSpec("race_id", NUMBER, ("pk",), phrase="race id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Spring Grand Prix", "Harvest Cup", "Winter Classic",
                        "City Sprint", "Endurance 500",
                    )), phrase="race name"),
                    ColSpec("track_id", NUMBER, ("fk", "track", "track_id"),
                            phrase="track id"),
                    ColSpec("laps", NUMBER, ("int", 20, 200)),
                ),
                rows=22,
                phrase="race",
            ),
        ),
        fks=(("race", "track_id", "track", "track_id"),),
    )


def _apartments_domain() -> DomainSpec:
    return DomainSpec(
        db_id="apartments",
        tables=(
            TableSpec(
                "building",
                (
                    ColSpec("building_id", NUMBER, ("pk",),
                            phrase="building id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Linden Court", "Harbor Tower", "Maple Heights",
                        "The Meridian", "Garden Terrace", "Summit Place",
                    )), phrase="building name"),
                    ColSpec("floors", NUMBER, ("int", 3, 40)),
                    ColSpec("district", TEXT, ("pool", V.CITIES)),
                ),
                rows=10,
                phrase="building",
            ),
            TableSpec(
                "apartment",
                (
                    ColSpec("apt_id", NUMBER, ("pk",), phrase="apartment id"),
                    ColSpec("building_id", NUMBER,
                            ("fk", "building", "building_id"),
                            phrase="building id"),
                    ColSpec("bedrooms", NUMBER, ("int", 0, 5)),
                    ColSpec("rent", NUMBER, ("int", 600, 4800)),
                    ColSpec("status", TEXT, ("pool", (
                        "available", "occupied", "renovating",
                    ))),
                ),
                rows=36,
                phrase="apartment",
                synonyms=("unit", "flat"),
            ),
        ),
        fks=(("apartment", "building_id", "building", "building_id"),),
    )


def _festival_domain() -> DomainSpec:
    return DomainSpec(
        db_id="festival",
        tables=(
            TableSpec(
                "artist",
                (
                    ColSpec("artist_id", NUMBER, ("pk",), phrase="artist id"),
                    ColSpec("name", TEXT, ("name",), phrase="artist name"),
                    ColSpec("genre", TEXT, ("pool", V.GENRES)),
                    ColSpec("followers", NUMBER, ("int", 1000, 9000000)),
                ),
                rows=22,
                phrase="artist",
                synonyms=("performer", "act"),
            ),
            TableSpec(
                "stage",
                (
                    ColSpec("stage_id", NUMBER, ("pk",), phrase="stage id"),
                    ColSpec("name", TEXT, ("pool", (
                        "Main Stage", "River Stage", "Forest Stage",
                        "Night Tent", "Acoustic Corner",
                    )), phrase="stage name"),
                    ColSpec("capacity", NUMBER, ("int", 500, 40000)),
                ),
                rows=6,
                phrase="stage",
            ),
            TableSpec(
                "performance_slot",
                (
                    ColSpec("slot_id", NUMBER, ("pk",), phrase="slot id"),
                    ColSpec("artist_id", NUMBER, ("fk", "artist", "artist_id"),
                            phrase="artist id"),
                    ColSpec("stage_id", NUMBER, ("fk", "stage", "stage_id"),
                            phrase="stage id"),
                    ColSpec("day", NUMBER, ("int", 1, 3),
                            phrase="festival day"),
                    ColSpec("minutes", NUMBER, ("int", 30, 120),
                            phrase="set length"),
                ),
                rows=34,
                phrase="performance slot",
                synonyms=("set",),
            ),
        ),
        fks=(
            ("performance_slot", "artist_id", "artist", "artist_id"),
            ("performance_slot", "stage_id", "stage", "stage_id"),
        ),
    )


def _warehouse_domain() -> DomainSpec:
    return DomainSpec(
        db_id="warehouse",
        tables=(
            TableSpec(
                "supplier",
                (
                    ColSpec("supplier_id", NUMBER, ("pk",),
                            phrase="supplier id"),
                    ColSpec("name", TEXT, ("pool", V.INSTITUTION_NAMES),
                            phrase="supplier name", synonyms=("vendor",)),
                    ColSpec("country", TEXT, ("pool", V.COUNTRIES)),
                ),
                rows=12,
                phrase="supplier",
                synonyms=("vendor",),
            ),
            TableSpec(
                "product",
                (
                    ColSpec("product_id", NUMBER, ("pk",),
                            phrase="product id"),
                    ColSpec("name", TEXT, ("pool", (
                        "steel bolt", "copper wire", "hinge set",
                        "rubber seal", "glass pane", "pine board",
                        "ceramic tile", "light fixture",
                    )), phrase="product name"),
                    ColSpec("supplier_id", NUMBER,
                            ("fk", "supplier", "supplier_id"),
                            phrase="supplier id"),
                    ColSpec("unit_price", NUMBER, ("float", 0.5, 120.0),
                            phrase="unit price"),
                    ColSpec("quantity", NUMBER, ("int", 0, 5000),
                            phrase="stock quantity"),
                ),
                rows=40,
                phrase="product",
                synonyms=("item",),
            ),
        ),
        fks=(("product", "supplier_id", "supplier", "supplier_id"),),
    )


def _gym_domain() -> DomainSpec:
    return DomainSpec(
        db_id="gym",
        tables=(
            TableSpec(
                "trainer",
                (
                    ColSpec("trainer_id", NUMBER, ("pk",), phrase="trainer id"),
                    ColSpec("name", TEXT, ("name",), phrase="trainer name"),
                    ColSpec("specialty", TEXT, ("pool", (
                        "yoga", "pilates", "crossfit", "spinning", "boxing",
                    ))),
                ),
                rows=10,
                phrase="trainer",
                synonyms=("coach", "instructor"),
            ),
            TableSpec(
                "member",
                (
                    ColSpec("member_id", NUMBER, ("pk",), phrase="member id"),
                    ColSpec("name", TEXT, ("name",), phrase="member name"),
                    ColSpec("age", NUMBER, ("int", 16, 75)),
                    ColSpec("monthly_fee", NUMBER, ("int", 20, 150),
                            phrase="monthly fee"),
                ),
                rows=32,
                phrase="member",
            ),
            TableSpec(
                "session",
                (
                    ColSpec("session_id", NUMBER, ("pk",), phrase="session id"),
                    ColSpec("trainer_id", NUMBER,
                            ("fk", "trainer", "trainer_id"),
                            phrase="trainer id"),
                    ColSpec("member_id", NUMBER, ("fk", "member", "member_id"),
                            phrase="member id"),
                    ColSpec("length", NUMBER, ("int", 30, 120),
                            phrase="session length"),
                ),
                rows=38,
                phrase="session",
                synonyms=("workout",),
            ),
        ),
        fks=(
            ("session", "trainer_id", "trainer", "trainer_id"),
            ("session", "member_id", "member", "member_id"),
        ),
    )


def _elections_domain() -> DomainSpec:
    return DomainSpec(
        db_id="elections",
        tables=(
            TableSpec(
                "county",
                (
                    ColSpec("county_id", NUMBER, ("pk",), phrase="county id"),
                    ColSpec("name", TEXT, ("pool", V.CITIES),
                            phrase="county name"),
                    ColSpec("population", NUMBER, ("int", 20000, 2000000)),
                ),
                rows=12,
                phrase="county",
            ),
            TableSpec(
                "candidate",
                (
                    ColSpec("candidate_id", NUMBER, ("pk",),
                            phrase="candidate id"),
                    ColSpec("name", TEXT, ("name",), phrase="candidate name"),
                    ColSpec("party", TEXT, ("pool", (
                        "Unity", "Progress", "Heritage", "Reform",
                    ))),
                ),
                rows=10,
                phrase="candidate",
            ),
            TableSpec(
                "result",
                (
                    ColSpec("county_id", NUMBER, ("fk", "county", "county_id"),
                            phrase="county id"),
                    ColSpec("candidate_id", NUMBER,
                            ("fk", "candidate", "candidate_id"),
                            phrase="candidate id"),
                    ColSpec("votes", NUMBER, ("int", 500, 600000)),
                ),
                rows=40,
                phrase="election result",
                synonyms=("tally",),
            ),
        ),
        fks=(
            ("result", "county_id", "county", "county_id"),
            ("result", "candidate_id", "candidate", "candidate_id"),
        ),
    )


#: The Spider-like domain catalog: db_id -> spec factory.
SPIDER_DOMAINS: dict[str, DomainSpec] = {
    spec.db_id: spec
    for spec in (
        _pets_domain(),
        _world_domain(),
        _cars_domain(),
        _concerts_domain(),
        _employees_domain(),
        _flights_domain(),
        _college_domain(),
        _orchestra_domain(),
        _tvshow_domain(),
        _museum_domain(),
        _battles_domain(),
        _dorms_domain(),
        _library_domain(),
        _restaurant_domain(),
        _courses_domain(),
        _climbing_domain(),
        _shops_domain(),
        _hospital_domain(),
        _wine_domain(),
        _race_domain(),
        _apartments_domain(),
        _festival_domain(),
        _warehouse_domain(),
        _gym_domain(),
        _elections_domain(),
    )
}
