"""A live operational endpoint over stdlib ``http.server``.

:class:`OpsServer` exposes what the serving layer already knows — the
Prometheus exposition, the health snapshot, SLO state, and the flight
recorder's captured entries — on a small threaded HTTP listener so a
scraper, an orchestrator probe, or ``tools/opsctl.py`` can reach a
*running* service without any in-process access:

========================  ==============================================
``/metrics``              Prometheus text (``render_prometheus()``)
``/healthz``              liveness: 200 + the health snapshot JSON
``/readyz``               readiness: 200/503 from ``HealthSnapshot.ready``
                          (``?tenant=x`` scopes to one tenant's section)
``/slo``                  SLO statuses + the names currently firing
``/debug/flightrecorder`` captured entries (``?tenant=x&limit=N``)
========================  ==============================================

The server is source-agnostic: each route is a plain callable injected
at construction (``None`` routes answer 404), so tests can serve stubs
and :class:`~repro.serve.service.TranslationService` wires its own
methods in.  Binding to port 0 picks an ephemeral port (tests);
:meth:`close` shuts the listener down cleanly — in-flight responses
finish, the socket closes, the thread joins.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

#: The route table rendered into 404 bodies.
ROUTES = (
    "/metrics",
    "/healthz",
    "/readyz",
    "/slo",
    "/debug/flightrecorder",
)


class OpsServer:
    """Threaded HTTP listener over injected ops callables.

    *metrics* returns the exposition text; *health* a JSON-ready dict
    (shape of ``HealthSnapshot.as_dict()``); *slo* a list of JSON-ready
    SLO status dicts; *recorder* takes ``(tenant, limit)`` and returns a
    list of JSON-ready flight-recorder entries.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Callable[[], str] | None = None,
        health: Callable[[], dict] | None = None,
        slo: Callable[[], list] | None = None,
        recorder: Callable[[str | None, int | None], list] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._metrics = metrics
        self._health = health
        self._slo = slo
        self._recorder = recorder
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._server is not None:
            return self.address
        handler = _build_handler(self)
        server = ThreadingHTTPServer((self.host, self.port), handler)
        server.daemon_threads = True
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="metasql-ops",
            daemon=True,
        )
        self._thread.start()
        return self.address

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving; safe to call twice."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "OpsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- route handlers (called from the handler thread) ---------------

    def handle(self, path: str, query: dict) -> tuple[int, str, str]:
        """Dispatch one GET; returns ``(status, content_type, body)``."""
        if path == "/metrics" and self._metrics is not None:
            return 200, "text/plain; version=0.0.4", self._metrics()
        if path == "/healthz" and self._health is not None:
            return 200, "application/json", _dumps(self._health())
        if path == "/readyz" and self._health is not None:
            return self._ready(query)
        if path == "/slo" and self._slo is not None:
            statuses = [_as_dict(status) for status in self._slo()]
            firing = sorted(
                status["slo"]
                for status in statuses
                if status.get("firing")
            )
            return (
                200,
                "application/json",
                _dumps({"slos": statuses, "firing": firing}),
            )
        if path == "/debug/flightrecorder" and self._recorder is not None:
            tenant = _first(query, "tenant")
            limit = _first(query, "limit")
            entries = self._recorder(
                tenant, int(limit) if limit is not None else None
            )
            return (
                200,
                "application/json",
                _dumps({"count": len(entries), "entries": entries}),
            )
        return (
            404,
            "application/json",
            _dumps({"error": f"no route {path!r}", "routes": list(ROUTES)}),
        )

    def _ready(self, query: dict) -> tuple[int, str, str]:
        snapshot = self._health()
        tenant = _first(query, "tenant")
        if tenant is None:
            ready = bool(snapshot.get("ready"))
            body = {"ready": ready}
        else:
            section = snapshot.get("tenants", {}).get(tenant)
            if section is None:
                return (
                    404,
                    "application/json",
                    _dumps({"error": f"unknown tenant {tenant!r}"}),
                )
            ready = bool(snapshot.get("accepting")) and not section.get(
                "breaker_open"
            )
            body = {"ready": ready, "tenant": tenant}
        return (200 if ready else 503, "application/json", _dumps(body))


def _dumps(payload: object) -> str:
    return json.dumps(payload, sort_keys=True) + "\n"


def _as_dict(status: object) -> dict:
    if hasattr(status, "as_dict"):
        return status.as_dict()
    return dict(status)


def _first(query: dict, key: str) -> str | None:
    values = query.get(key)
    return values[0] if values else None


def _build_handler(ops: OpsServer):
    class _OpsHandler(BaseHTTPRequestHandler):
        server_version = "metasql-ops/1"

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            parsed = urlsplit(self.path)
            try:
                status, content_type, body = ops.handle(
                    parsed.path, parse_qs(parsed.query)
                )
            except Exception as exc:  # repolint: allow[broad-except] — a broken source must yield 500, not kill the listener
                status, content_type, body = (
                    500,
                    "application/json",
                    _dumps({"error": f"{type(exc).__name__}: {exc}"}),
                )
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, format: str, *args) -> None:
            """Silence per-request stderr logging (scrapes are chatty)."""

    return _OpsHandler
