"""Thread-safe metrics registry with Prometheus-style exposition.

Three instrument kinds cover everything the pipeline and the serving
layer need to report:

- :class:`Counter` — monotonically increasing totals (requests,
  rejections, faults by stage/site, breaker trips);
- :class:`Gauge` — point-in-time levels (queue depth, in-flight);
- :class:`Histogram` — distributions over fixed log-scaled buckets
  (stage latency, queue wait, end-to-end latency) with streaming
  quantile estimates interpolated from the cumulative bucket counts —
  O(1) memory, no samples retained.

Instruments are created through a :class:`MetricsRegistry` with
get-or-create semantics (the second ``registry.counter("x")`` returns the
first one), optional label dimensions
(``family.labels(stage="stage1").inc()``), and a deterministic
``render_prometheus()`` text rendering next to a JSON ``as_dict()``.

Like the ambient deadline/tracer, a process-wide default registry is
reachable via :func:`get_registry`, and :func:`registry_scope` installs a
replacement in a :class:`~contextvars.ContextVar` so tests (and the
serving layer's worker threads) observe an isolated registry.

The module imports only the stdlib and numpy, so any layer of the
codebase can record metrics without import cycles.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.devtools.lockdep import new_lock

import numpy as np

#: Default histogram buckets: log-scaled, four per decade from 100us to
#: ~31.6s.  Latencies outside the range land in the first/+Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(f"{10 ** (exponent / 4):.6g}") for exponent in range(-16, 7)
)


class MetricError(ValueError):
    """Inconsistent re-registration or misuse of a metric family."""


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"invalid metric name {name!r}")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (ints stay integral)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_suffix(labelnames: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + inner + "}"


class _Family:
    """Shared machinery: labelled children, locking, registration info."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = new_lock("_Family._lock")
        self._children: dict[tuple[str, ...], "_Family"] = {}
        if not self.labelnames:
            # A label-less family is its own only child.
            self._children[()] = self

    def labels(self, **labels: str) -> "_Family":
        """The child instrument for one combination of label values."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Family":
        child = type(self)(self.name, self.help)
        child._lock = self._lock  # one lock per family: updates are tiny
        return child

    def _sorted_children(self) -> list[tuple[tuple[str, ...], "_Family"]]:
        with self._lock:
            return sorted(self._children.items())

    # Subclasses implement value access and rendering.
    def _render_lines(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _child_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def as_dict(self) -> dict:
        """JSON-ready snapshot of the whole family."""
        series = []
        for key, child in self._sorted_children():
            entry = {"labels": dict(zip(self.labelnames, key))}
            entry.update(child._child_dict())
            series.append(entry)
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }


class Counter(_Family):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _child_dict(self) -> dict:
        return {"value": self._value}

    def _render_lines(self) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}{suffix} {_format_value(child._value)}"
            )
        return lines


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _child_dict(self) -> dict:
        return {"value": self._value}

    def _render_lines(self) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}{suffix} {_format_value(child._value)}"
            )
        return lines


class Histogram(_Family):
    """Fixed-bucket distribution with streaming quantile estimates.

    Buckets follow Prometheus ``le`` semantics: an observation lands in
    the first bucket whose upper bound is **>=** the value; anything
    above the last bound lands in the implicit ``+Inf`` bucket.  The
    per-bucket counts are non-cumulative internally (numpy-friendly via
    :attr:`bucket_counts`) and cumulated at render time.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=None):
        super().__init__(name, help, labelnames)
        bounds = tuple(
            float(b) for b in (DEFAULT_BUCKETS if buckets is None else buckets)
        )
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be sorted and unique"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def _make_child(self) -> "Histogram":
        child = Histogram(self.name, self.help, buckets=self.bounds)
        child._lock = self._lock
        return child

    def observe(self, value: float) -> None:
        value = float(value)
        # Leftmost bucket with bound >= value (Prometheus `le`).
        index = int(np.searchsorted(self.bounds, value, side="left"))
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def bucket_counts(self) -> np.ndarray:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        with self._lock:
            return np.asarray(self._counts, dtype=np.int64)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate interpolated within its bucket.

        The estimate is exact at observed min/max, linear inside the
        containing bucket, and clamped to the observed range — the same
        trade-off as ``histogram_quantile`` in PromQL, without retaining
        samples.  Returns NaN with no observations.

        Edge buckets interpolate against the *observed* range, not an
        imaginary one: the first bucket's lower edge is the observed min
        (there is no lower bound to extrapolate from — assuming 0.0
        skews every estimate for data far below the first bound, and is
        simply wrong for negative observations), every bucket's upper
        edge is capped at the observed max, and the +Inf bucket has no
        finite edge at all so it answers with the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            rank = q * self._count
            seen = 0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                if seen + count >= rank:
                    if index < len(self.bounds):
                        upper = min(self.bounds[index], self._max)
                        lower = (
                            self.bounds[index - 1]
                            if index
                            else min(self._min, upper)
                        )
                    else:  # +Inf bucket: fall back to the observed max
                        return self._max
                    fraction = (rank - seen) / count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
                seen += count
            return self._max

    def _child_dict(self) -> dict:
        cumulative = np.cumsum(self._counts).tolist()
        return {
            "count": self._count,
            "sum": self._sum,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "buckets": dict(
                zip([*map(str, self.bounds), "+Inf"], cumulative)
            ),
        }

    def _render_lines(self) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            cumulative = 0
            for bound, count in zip(
                [*child.bounds, math.inf], child._counts
            ):
                cumulative += count
                suffix = _label_suffix(
                    self.labelnames + ("le",),
                    key + (_format_value(bound),),
                )
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}_sum{suffix} {_format_value(child._sum)}"
            )
            lines.append(f"{self.name}_count{suffix} {child._count}")
        return lines


class MetricsRegistry:
    """Names instruments, deduplicates them, renders exposition formats."""

    def __init__(self) -> None:
        self._lock = new_lock("MetricsRegistry._lock")
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {cls.kind}"
                    )
                if family.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}, not {labelnames}"
                    )
                return family
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Family | None:
        """The registered family called *name*, if any."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every family (sorted by name)."""
        with self._lock:
            families = sorted(self._families.items())
        return {name: family.as_dict() for name, family in families}

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Output is deterministic (families sorted by name, series by
        label values) so it can be golden-file tested and diffed.
        """
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            lines.extend(family._render_lines())
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry (the ambient fallback).
_DEFAULT_REGISTRY = MetricsRegistry()

#: Ambient override, mirroring deadline_scope/trace_scope: tests and the
#: serving layer install an isolated registry for a scope.
_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar(
    "metasql_metrics_registry", default=None
)


def get_registry() -> MetricsRegistry:
    """The ambient :class:`MetricsRegistry` (scoped, else process-wide)."""
    scoped = _REGISTRY.get()
    return scoped if scoped is not None else _DEFAULT_REGISTRY


@contextmanager
def registry_scope(
    registry: MetricsRegistry | None,
) -> Iterator[MetricsRegistry | None]:
    """Install *registry* as the ambient registry for the ``with`` body."""
    token = _REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _REGISTRY.reset(token)
