"""Append-only structured event journal (JSONL) with crash-safe replay.

The serving layer appends one JSON object per handled request and the
evaluation harness one per scored example; offline tooling
(:mod:`repro.eval.journal_analysis`) replays the file into per-stage /
per-hardness breakdowns.

Durability follows the same contract as :mod:`repro.core.persist`, adapted
to an append-only file (this module cannot import ``persist`` — that would
cycle through the pipeline — so it re-implements the two small fsync
idioms):

- **Synced appends.**  Every record is one ``\\n``-terminated line,
  flushed and (by default) fsynced before :meth:`Journal.append` returns,
  so an acknowledged record survives a crash.
- **Torn-tail repair.**  A crash mid-write leaves at most one partial
  trailing line.  Reopening for append first terminates such a tail with
  a newline so later records never concatenate onto the torn prefix, and
  :func:`read_journal` skips unparseable lines instead of failing the
  replay — a crash costs at most the unacknowledged record.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import time
from typing import Callable, Iterator

from repro.devtools.lockdep import new_lock


class Journal:
    """Thread-safe append-only JSONL event log.

    >>> journal = Journal(tmp_path / "events.jsonl")
    >>> journal.append({"event": "translate", "ok": True})
    >>> read_journal(journal.path)[0]["event"]
    'translate'
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        fsync: bool = True,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._clock = clock if clock is not None else time.time
        self._lock = new_lock("Journal._lock")
        self._handle: io.BufferedWriter | None = None

    # ------------------------------------------------------------------
    # Writing.

    def _open_locked(self) -> io.BufferedWriter:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._handle = open(self.path, "ab")
            _fsync_dir(self.path.parent)
        return self._handle

    def _repair_torn_tail(self) -> None:
        """Newline-terminate a partial trailing line from a crashed writer."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())

    def append(self, record: dict, stamp: bool = True) -> dict:
        """Durably append one *record*; returns the line as written.

        With *stamp* (the default) a ``"ts"`` wall-clock timestamp from
        the injectable clock is added when the record lacks one.
        """
        if stamp and "ts" not in record:
            record = {**record, "ts": round(self._clock(), 6)}
        line = (
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode()
        with self._lock:
            # The journal lock IS the durable-append serialization
            # point: writers must not interleave write+fsync pairs, so
            # holding it across the I/O is the contract, not a bug.
            # Journal._lock is a leaf in the documented lock order —
            # nothing else is ever taken under it.
            handle = self._open_locked()  # locklint: allow[CC002]
            handle.write(line)
            handle.flush()
            if self.fsync:
                # locklint: allow[CC002] — fsync under the append lock
                os.fsync(handle.fileno())
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_journal(
    path: str | pathlib.Path,
    follow: bool = False,
    poll_interval: float = 0.05,
    timeout: float | None = None,
    max_records: int | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[dict]:
    """Replay a journal, skipping torn/corrupt lines (crash tolerance).

    With ``follow=True`` the iterator behaves like ``tail -f``: after
    draining the existing records it polls the file (every
    *poll_interval* seconds, on the injectable *sleep*/*clock* pair) for
    newly appended lines, tolerating the file not existing yet.  A
    follow must be bounded — by *timeout* seconds, *max_records* yielded
    records, or both — so a watcher cannot hang forever; an unbounded
    follow raises ``ValueError`` up front.

    Only newline-terminated lines are parsed in follow mode: a line
    still being written (no ``\\n`` yet) is left in place and re-read on
    the next poll once its terminator lands, preserving the skip-corrupt
    semantics without ever yielding a torn prefix of a good record.
    """
    path = pathlib.Path(path)
    if not follow:
        if not path.is_file():
            return
        count = 0
        with open(path, "rb") as handle:
            for raw in handle:
                record = _parse_line(raw)
                if record is not None:
                    yield record
                    count += 1
                    if max_records is not None and count >= max_records:
                        return
        return
    if timeout is None and max_records is None:
        raise ValueError(
            "iter_journal(follow=True) needs a bound: "
            "pass timeout= and/or max_records="
        )
    deadline = None if timeout is None else clock() + timeout
    offset = 0
    count = 0
    while True:
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except FileNotFoundError:
            chunk = b""
        # Parse only complete lines; a trailing partial stays unread
        # (offset does not advance past it) until its newline arrives.
        consumed = chunk.rfind(b"\n") + 1
        if consumed:
            for raw in chunk[:consumed].splitlines():
                record = _parse_line(raw)
                if record is None:
                    continue
                yield record
                count += 1
                if max_records is not None and count >= max_records:
                    return
            offset += consumed
        if deadline is not None and clock() >= deadline:
            return
        sleep(poll_interval)


def _parse_line(raw: bytes) -> dict | None:
    """One journal line as a dict, or None for blank/corrupt lines."""
    line = raw.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # torn write from a crash: skip, don't fail
    return record if isinstance(record, dict) else None


def read_journal(path: str | pathlib.Path) -> list[dict]:
    """Every intact record in the journal, in append order."""
    return list(iter_journal(path))


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so a freshly created journal file survives."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
