"""Lightweight per-request tracing for the generate-then-rank pipeline.

A :class:`Tracer` collects a tree of :class:`Span`\\ s for one unit of
work (one translation).  The pipeline opens a span at every stage
boundary (classify -> generate -> stage-1 -> stage-2) and the candidate
generator opens per-condition and per-candidate sub-spans, so a finished
trace answers "where did this request spend its time" down to a single
candidate's grounding.

Design choices mirror the resilience layer's primitives:

- **Ambient installation.** :func:`trace_scope` installs a tracer in a
  :class:`~contextvars.ContextVar` (the same pattern as
  ``deadline_scope``), so deeply nested components pick it up via
  :func:`current_tracer` without parameter plumbing.  With no tracer
  installed every hook is a single ``is None`` branch.
- **Injectable clock.**  Tests drive span durations deterministically;
  production uses :func:`time.perf_counter`.
- **JSON-exportable.**  ``Span.as_dict()`` renders the subtree as plain
  dicts (start offsets relative to the tracer origin, durations in
  seconds) suitable for attaching to a ``TranslationReport`` and for the
  JSONL event journal.

The module imports nothing from :mod:`repro` so every layer — including
:mod:`repro.core.resilience` — may use it without cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Callable, Iterator


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "start",
        "end",
        "attributes",
        "children",
        "status",
        "error",
        "_origin",
    )

    def __init__(
        self, name: str, start: float, origin: float, attributes: dict
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.children: list[Span] = []
        self.status = "ok"
        self.error: str | None = None
        self._origin = origin

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from open to close (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def offset(self) -> float:
        """Seconds from the tracer's origin to this span's open."""
        return self.start - self._origin

    def find(self, name: str) -> "Span | None":
        """First span named *name* in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """Every span in this subtree, depth-first, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        """JSON-ready tree: offsets/durations in seconds, children nested."""
        record: dict = {
            "name": self.name,
            "offset": round(self.offset, 9),
            "duration": round(self.duration, 9),
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [child.as_dict() for child in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects one trace tree; open spans nest via a stack.

    A tracer is cheap (two lists and a clock read) and is created per
    translation; it is **not** shared across threads — the serving layer
    gives each request its own.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self.origin = self._clock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of the active span (or a new root)."""
        opened = Span(name, self._clock(), self.origin, attributes)
        parent = self.active
        if parent is not None:
            parent.children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException as exc:  # repolint: allow[broad-except] — record status, re-raise
            opened.status = "error"
            opened.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            opened.end = self._clock()
            self._stack.pop()

    def export(self) -> list[dict]:
        """Every root span's subtree as JSON-ready dicts."""
        return [root.as_dict() for root in self.roots]


#: Ambient tracer, mirroring the resilience layer's ambient deadline: the
#: pipeline installs one per translation and nested components (candidate
#: generation, grounding) attach sub-spans without plumbing changes.
_TRACER: ContextVar[Tracer | None] = ContextVar("metasql_tracer", default=None)


def current_tracer() -> Tracer | None:
    """The ambient :class:`Tracer` for this context, if any."""
    return _TRACER.get()


@contextmanager
def trace_scope(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Install *tracer* as the ambient tracer for the ``with`` body."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


def maybe_span(name: str, **attributes):
    """A span on the ambient tracer, or a no-op when none is installed."""
    tracer = _TRACER.get()
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, **attributes)
