"""Declarative service-level objectives with burn-rate alerting.

An :class:`SloSpec` states an objective over the translation stream —
"99% of requests finish under 500 ms", "99.5% are not degraded", "95%
need no verify demotion" — and an :class:`SloEngine` evaluates a set of
specs over sliding windows fed by the per-request records the serving
layer already journals.  Every completed request is one *observation*,
classified good or bad by the spec's indicator, so a percentile-style
objective ("p99 latency < X") and an error-rate objective ("degraded
rate < Y") collapse into the same arithmetic: the good-fraction over a
window versus the objective.

Alerting follows the multi-window, multi-burn-rate recipe (Google SRE
workbook): the *burn rate* of a window is ``bad_fraction / (1 -
objective)`` — how many times faster than sustainable the error budget
is being spent — and an alert fires only when a short and a long window
*both* exceed a threshold.  The fast pair (5 m / 1 h, default threshold
14.4) pages on sharp regressions and clears quickly once the short
window drains; the slow pair (1 h / 6 h, default threshold 6.0) tickets
on slow leaks.  A firing/resolving transition is a typed
:class:`Alert`, appended to the engine's ``transitions`` history, to
the journal as an ``slo_alert`` event, and to the metrics registry as
``metasql_slo_*`` series.

Determinism: the clock is injectable and every observation may carry an
explicit timestamp, so alert state is a *pure function of the
observation sequence* — replaying the same ``(ts, record)`` stream into
a fresh engine produces identical transitions (property-tested).  The
module imports only the stdlib (plus the sibling metrics module), so
any layer can host an engine without cycles.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.devtools.lockdep import new_lock
from repro.obs.metrics import MetricsRegistry, get_registry


class SloError(ValueError):
    """A malformed :class:`SloSpec` (bad objective, window, indicator)."""


def _good_latency(spec: "SloSpec", record: dict) -> bool | None:
    latency = record.get("latency_s")
    if not isinstance(latency, (int, float)):
        return None  # not applicable: the record carries no latency
    return float(latency) <= spec.threshold


def _good_not_degraded(spec: "SloSpec", record: dict) -> bool | None:
    return not record.get("degraded")


def _good_no_deadline(spec: "SloSpec", record: dict) -> bool | None:
    return not record.get("deadline_expired")


def _good_no_fault(spec: "SloSpec", record: dict) -> bool | None:
    return not record.get("faults")


def _good_no_demotion(spec: "SloSpec", record: dict) -> bool | None:
    demoted = record.get("verify_demoted")
    return not (isinstance(demoted, int) and demoted > 0)


def _good_repair(spec: "SloSpec", record: dict) -> bool | None:
    attempts = record.get("repair_attempts")
    if not (isinstance(attempts, int) and attempts > 0):
        return True  # nothing needed repair
    return bool(record.get("repair_succeeded"))


#: indicator name -> classifier(record) -> good / bad / None (skip).
INDICATORS: dict[str, Callable[["SloSpec", dict], bool | None]] = {
    "latency": _good_latency,
    "degraded": _good_not_degraded,
    "deadline": _good_no_deadline,
    "fault": _good_no_fault,
    "verify_demotion": _good_no_demotion,
    "repair": _good_repair,
}

#: Alert severities in deterministic evaluation order.
SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the translation stream.

    ``indicator`` names the good/bad classifier (see :data:`INDICATORS`);
    ``objective`` is the target good-fraction (0.99 = "99% good", an
    error budget of 1%).  ``threshold`` parameterizes the ``latency``
    indicator (seconds).  ``tenant`` restricts the spec to one tenant's
    records; ``per_tenant`` instead tracks every observed tenant in its
    own window set — one spec, one status per tenant.
    """

    name: str
    indicator: str = "degraded"
    objective: float = 0.99
    threshold: float | None = None
    tenant: str | None = None
    per_tenant: bool = False
    #: (short, long) window widths in seconds for the paging pair.
    fast_windows: tuple[float, float] = (300.0, 3600.0)
    #: Burn-rate threshold both fast windows must exceed to page.
    fast_burn: float = 14.4
    #: (short, long) window widths in seconds for the ticketing pair.
    slow_windows: tuple[float, float] = (3600.0, 21600.0)
    #: Burn-rate threshold both slow windows must exceed to ticket.
    slow_burn: float = 6.0
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`SloError` for any out-of-range field."""
        if not self.name:
            raise SloError("an SLO needs a non-empty name")
        if self.indicator not in INDICATORS:
            raise SloError(
                f"unknown SLO indicator {self.indicator!r}; "
                f"known: {sorted(INDICATORS)}"
            )
        if not 0.0 < self.objective < 1.0:
            raise SloError(
                f"objective must be in (0, 1), got {self.objective!r}"
            )
        if self.indicator == "latency" and (
            self.threshold is None or self.threshold <= 0
        ):
            raise SloError(
                "a latency SLO needs a positive threshold in seconds, "
                f"got {self.threshold!r}"
            )
        for pair, label in (
            (self.fast_windows, "fast"),
            (self.slow_windows, "slow"),
        ):
            if len(pair) != 2 or not 0 < pair[0] < pair[1]:
                raise SloError(
                    f"{label}_windows must be (short, long) seconds with "
                    f"0 < short < long, got {pair!r}"
                )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise SloError("burn-rate thresholds must be positive")
        if self.per_tenant and self.tenant is not None:
            raise SloError(
                "per_tenant expands by observed tenant; do not also pin "
                "tenant="
            )

    @property
    def error_budget(self) -> float:
        """The tolerated bad-fraction (1 - objective)."""
        return 1.0 - self.objective

    def classify(self, record: dict) -> bool | None:
        """good (True) / bad (False) / not-applicable (None)."""
        return INDICATORS[self.indicator](self, record)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "indicator": self.indicator,
            "objective": self.objective,
            "threshold": self.threshold,
            "tenant": self.tenant,
            "per_tenant": self.per_tenant,
            "fast_windows": list(self.fast_windows),
            "fast_burn": self.fast_burn,
            "slow_windows": list(self.slow_windows),
            "slow_burn": self.slow_burn,
            "description": self.description,
        }


def default_slos(
    latency_threshold: float = 1.0,
    latency_objective: float = 0.99,
    degraded_objective: float = 0.99,
    demotion_objective: float = 0.95,
) -> tuple[SloSpec, ...]:
    """The stock objective set the serving layer ships with."""
    return (
        SloSpec(
            "latency",
            indicator="latency",
            objective=latency_objective,
            threshold=latency_threshold,
            description="requests finishing under the latency threshold",
        ),
        SloSpec(
            "availability",
            indicator="degraded",
            objective=degraded_objective,
            description="requests answered without degradation",
        ),
        SloSpec(
            "verify_demotion",
            indicator="verify_demotion",
            objective=demotion_objective,
            description="requests whose top-k survived verification",
        ),
    )


@dataclass(frozen=True)
class Alert:
    """One firing/resolved transition of a spec's alert."""

    slo: str
    tenant: str
    severity: str  # "page" | "ticket"
    state: str  # "firing" | "resolved"
    at: float
    burn_short: float
    burn_long: float
    windows: tuple[float, float]

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "tenant": self.tenant,
            "severity": self.severity,
            "state": self.state,
            "at": round(self.at, 6),
            "burn_short": round(self.burn_short, 6),
            "burn_long": round(self.burn_long, 6),
            "windows": list(self.windows),
        }


@dataclass
class SloStatus:
    """Point-in-time view of one spec (for one tenant slice)."""

    slo: str
    tenant: str
    indicator: str
    objective: float
    total: int
    bad: int
    compliance: float
    burn_rates: dict[str, float]
    alerts: dict[str, bool]

    @property
    def firing(self) -> bool:
        return any(self.alerts.values())

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "tenant": self.tenant,
            "indicator": self.indicator,
            "objective": self.objective,
            "total": self.total,
            "bad": self.bad,
            "compliance": round(self.compliance, 6),
            "burn_rates": {
                name: round(rate, 6)
                for name, rate in self.burn_rates.items()
            },
            "alerts": dict(self.alerts),
            "firing": self.firing,
        }


class _Window:
    """Sliding (ts, good) window with O(1)-amortized running counts."""

    __slots__ = ("width", "events", "total", "bad", "max_events")

    def __init__(self, width: float, max_events: int) -> None:
        self.width = width
        self.events: deque[tuple[float, bool]] = deque()
        self.total = 0
        self.bad = 0
        self.max_events = max_events

    def add(self, ts: float, good: bool) -> None:
        while len(self.events) >= self.max_events:
            self._pop()
        self.events.append((ts, good))
        self.total += 1
        if not good:
            self.bad += 1

    def _pop(self) -> None:
        _, good = self.events.popleft()
        self.total -= 1
        if not good:
            self.bad -= 1

    def evict(self, now: float) -> None:
        horizon = now - self.width
        while self.events and self.events[0][0] <= horizon:
            self._pop()

    def burn_rate(self, error_budget: float) -> float:
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / error_budget


#: Window slot names in deterministic order: (attr, spec pair, index).
_WINDOW_SLOTS = (
    ("fast_short", "fast_windows", 0),
    ("fast_long", "fast_windows", 1),
    ("slow_short", "slow_windows", 0),
    ("slow_long", "slow_windows", 1),
)


class _SpecState:
    """Windows + alert latches for one (spec, tenant-slice)."""

    def __init__(self, spec: SloSpec, tenant: str, max_events: int) -> None:
        self.spec = spec
        self.tenant = tenant
        self.windows = {
            name: _Window(getattr(spec, pair)[index], max_events)
            for name, pair, index in _WINDOW_SLOTS
        }
        self.active: dict[str, bool] = {sev: False for sev in SEVERITIES}

    def add(self, ts: float, good: bool) -> None:
        for window in self.windows.values():
            window.add(ts, good)

    def burn_rates(self, now: float) -> dict[str, float]:
        budget = self.spec.error_budget
        rates = {}
        for name, window in self.windows.items():
            window.evict(now)
            rates[name] = window.burn_rate(budget)
        return rates

    def update_alerts(
        self, now: float, rates: dict[str, float]
    ) -> list[Alert]:
        """Latch/unlatch both severities; return the transitions."""
        conditions = {
            "page": (
                ("fast_short", "fast_long"),
                self.spec.fast_burn,
                self.spec.fast_windows,
            ),
            "ticket": (
                ("slow_short", "slow_long"),
                self.spec.slow_burn,
                self.spec.slow_windows,
            ),
        }
        transitions: list[Alert] = []
        for severity in SEVERITIES:
            (short, long_), threshold, widths = conditions[severity]
            firing = (
                rates[short] >= threshold and rates[long_] >= threshold
            )
            if firing == self.active[severity]:
                continue
            self.active[severity] = firing
            transitions.append(
                Alert(
                    slo=self.spec.name,
                    tenant=self.tenant,
                    severity=severity,
                    state="firing" if firing else "resolved",
                    at=now,
                    burn_short=rates[short],
                    burn_long=rates[long_],
                    windows=tuple(widths),
                )
            )
        return transitions

    def status(self, now: float) -> SloStatus:
        rates = self.burn_rates(now)
        longest = self.windows["slow_long"]
        total, bad = longest.total, longest.bad
        return SloStatus(
            slo=self.spec.name,
            tenant=self.tenant,
            indicator=self.spec.indicator,
            objective=self.spec.objective,
            total=total,
            bad=bad,
            compliance=1.0 if total == 0 else 1.0 - bad / total,
            burn_rates=rates,
            alerts=dict(self.active),
        )


class SloEngine:
    """Evaluates a set of :class:`SloSpec` over the observation stream.

    Thread-safe: the serving layer's workers call :meth:`observe`
    concurrently.  Alert transitions accumulate on :attr:`transitions`
    (the replayable history), land in the optional *journal* as
    ``slo_alert`` events, and update ``metasql_slo_*`` metrics in
    *registry* (the ambient registry when none is given).
    """

    def __init__(
        self,
        specs: Iterable[SloSpec],
        clock: Callable[[], float] | None = None,
        journal=None,
        registry: MetricsRegistry | None = None,
        max_events_per_window: int = 65536,
    ) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            spec.validate()
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate SLO names in {names}")
        self._clock = clock if clock is not None else time.monotonic
        self.journal = journal
        self.registry = registry if registry is not None else get_registry()
        self._max_events = max_events_per_window
        self._lock = new_lock("SloEngine._lock")
        #: (spec name, tenant slice) -> live window state.
        self._states: dict[tuple[str, str], _SpecState] = {}
        #: Every firing/resolved transition, in evaluation order.
        self.transitions: list[Alert] = []
        for spec in self.specs:
            if not spec.per_tenant:
                self._state(spec, spec.tenant or "")

    # -- state plumbing -------------------------------------------------

    def _state(self, spec: SloSpec, tenant: str) -> _SpecState:
        key = (spec.name, tenant)
        state = self._states.get(key)
        if state is None:
            state = _SpecState(spec, tenant, self._max_events)
            self._states[key] = state
        return state

    def _states_for(self, record: dict) -> list[_SpecState]:
        tenant = record.get("tenant")
        states = []
        for spec in self.specs:
            if spec.per_tenant:
                states.append(
                    self._state(spec, str(tenant) if tenant else "default")
                )
            elif spec.tenant is None or spec.tenant == tenant:
                states.append(self._state(spec, spec.tenant or ""))
        return states

    # -- ingestion and evaluation --------------------------------------

    def observe(self, record: dict, ts: float | None = None) -> list[Alert]:
        """Fold one request record in; returns the alert transitions.

        *ts* pins the observation time (replay determinism); when
        omitted the injectable clock is read once.
        """
        now = float(ts) if ts is not None else self._clock()
        fired: list[Alert] = []
        with self._lock:
            for state in self._states_for(record):
                good = state.spec.classify(record)
                if good is None:
                    continue
                state.add(now, bool(good))
                self._count_event(state, bool(good))
                rates = state.burn_rates(now)
                fired.extend(state.update_alerts(now, rates))
                self._publish_gauges(state, rates)
            self.transitions.extend(fired)
        self._emit(fired)
        return fired

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Re-evaluate every spec at *now* (clears stale alerts) and
        return the per-spec (per tenant-slice) statuses."""
        at = float(now) if now is not None else self._clock()
        statuses: list[SloStatus] = []
        fired: list[Alert] = []
        with self._lock:
            for key in sorted(self._states):
                state = self._states[key]
                rates = state.burn_rates(at)
                fired.extend(state.update_alerts(at, rates))
                self._publish_gauges(state, rates)
                statuses.append(state.status(at))
            self.transitions.extend(fired)
        self._emit(fired)
        return statuses

    def statuses(self) -> list[SloStatus]:
        """Alias for :meth:`evaluate` at the current clock."""
        return self.evaluate()

    def alerting(self) -> bool:
        """Whether any severity of any spec is currently firing."""
        with self._lock:
            return any(
                active
                for state in self._states.values()
                for active in state.active.values()
            )

    # -- side channels (never affect alert state) ----------------------

    def _count_event(self, state: _SpecState, good: bool) -> None:
        self.registry.counter(
            "metasql_slo_events_total",
            "SLO observations by objective, tenant slice, and outcome.",
            labelnames=("slo", "tenant", "outcome"),
        ).labels(
            slo=state.spec.name,
            tenant=state.tenant,
            outcome="good" if good else "bad",
        ).inc()

    def _publish_gauges(
        self, state: _SpecState, rates: dict[str, float]
    ) -> None:
        burn = self.registry.gauge(
            "metasql_slo_burn_rate",
            "Error-budget burn rate per objective and sliding window.",
            labelnames=("slo", "tenant", "window"),
        )
        for window, rate in rates.items():
            burn.labels(
                slo=state.spec.name, tenant=state.tenant, window=window
            ).set(rate)
        active = self.registry.gauge(
            "metasql_slo_alert_active",
            "1 while the objective's alert is firing at this severity.",
            labelnames=("slo", "tenant", "severity"),
        )
        for severity in SEVERITIES:
            active.labels(
                slo=state.spec.name,
                tenant=state.tenant,
                severity=severity,
            ).set(1.0 if state.active[severity] else 0.0)

    def _emit(self, transitions: list[Alert]) -> None:
        """Journal + count transitions (best-effort, outside the lock)."""
        if not transitions:
            return
        counter = self.registry.counter(
            "metasql_slo_alerts_total",
            "Alert transitions by objective, severity, and state.",
            labelnames=("slo", "tenant", "severity", "state"),
        )
        for alert in transitions:
            counter.labels(
                slo=alert.slo,
                tenant=alert.tenant,
                severity=alert.severity,
                state=alert.state,
            ).inc()
        if self.journal is None:
            return
        for alert in transitions:
            try:
                self.journal.append({"event": "slo_alert", **alert.as_dict()})
            except Exception:  # repolint: allow[broad-except] — alerting must never fail serving
                pass
