"""End-to-end observability for the generate-then-rank pipeline.

Three telemetry layers, all dependency-light (stdlib + numpy, nothing
from the rest of :mod:`repro`, so any module can instrument itself
without cycles):

- :mod:`repro.obs.trace` — per-request span trees with an ambient
  tracer (``trace_scope`` / ``current_tracer``), attached to every
  ``TranslationReport`` as a JSON tree;
- :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms in
  a :class:`MetricsRegistry` with Prometheus text exposition
  (``registry.render_prometheus()``) and an ambient default
  (``get_registry`` / ``registry_scope``);
- :mod:`repro.obs.journal` — crash-safe append-only JSONL event log
  with torn-tail-tolerant replay (and a ``follow=True`` tail mode),
  aggregated offline by :mod:`repro.eval.journal_analysis`.

And an operational-intelligence layer on top (PR 8), consumed by the
serving front-end:

- :mod:`repro.obs.slo` — declarative :class:`SloSpec` objectives with
  multi-window burn-rate alerting (:class:`SloEngine`);
- :mod:`repro.obs.recorder` — a tail-sampling :class:`FlightRecorder`
  ring buffer plus one-file debug bundles;
- :mod:`repro.obs.ops` — a stdlib HTTP :class:`OpsServer` exposing
  ``/metrics``, ``/healthz``, ``/readyz``, ``/slo`` and
  ``/debug/flightrecorder``.
"""

from repro.obs.journal import Journal, iter_journal, read_journal
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
    registry_scope,
)
from repro.obs.ops import OpsServer
from repro.obs.recorder import FlightRecorder, load_bundle
from repro.obs.slo import (
    Alert,
    SloEngine,
    SloError,
    SloSpec,
    SloStatus,
    default_slos,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    maybe_span,
    trace_scope,
)

__all__ = [
    "Alert",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Journal",
    "MetricError",
    "MetricsRegistry",
    "OpsServer",
    "SloEngine",
    "SloError",
    "SloSpec",
    "SloStatus",
    "Span",
    "Tracer",
    "current_tracer",
    "default_slos",
    "get_registry",
    "iter_journal",
    "load_bundle",
    "maybe_span",
    "read_journal",
    "registry_scope",
    "trace_scope",
]
