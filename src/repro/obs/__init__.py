"""End-to-end observability for the generate-then-rank pipeline.

Three layers, all dependency-light (stdlib + numpy, nothing from the
rest of :mod:`repro`, so any module can instrument itself without
cycles):

- :mod:`repro.obs.trace` — per-request span trees with an ambient
  tracer (``trace_scope`` / ``current_tracer``), attached to every
  ``TranslationReport`` as a JSON tree;
- :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms in
  a :class:`MetricsRegistry` with Prometheus text exposition
  (``registry.render_prometheus()``) and an ambient default
  (``get_registry`` / ``registry_scope``);
- :mod:`repro.obs.journal` — crash-safe append-only JSONL event log
  with torn-tail-tolerant replay, aggregated offline by
  :mod:`repro.eval.journal_analysis`.
"""

from repro.obs.journal import Journal, iter_journal, read_journal
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
    registry_scope,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    maybe_span,
    trace_scope,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Journal",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_tracer",
    "get_registry",
    "iter_journal",
    "maybe_span",
    "read_journal",
    "registry_scope",
    "trace_scope",
]
