"""Tail-sampling flight recorder for interesting translations.

A :class:`FlightRecorder` keeps a bounded, thread-safe ring buffer of
*complete* request payloads — the journal-style summary record plus the
full ``TranslationReport`` dict with its span tree — but only for the
requests worth keeping: any fault, degradation, breaker-open, deadline
expiry, verify demotion or repair attempt, anything arriving while an
SLO alert is firing, and the slowest decile of recent traffic (a rolling
latency window supplies the threshold).  Healthy fast requests cost one
lock'd comparison and are forgotten — tail sampling, decided *after* the
request finished, so the recorder never has to guess up front.

:meth:`dump_bundle` writes one self-contained debug-bundle JSON —
captured entries, a metrics snapshot, the health snapshot, and SLO
state — atomically (tmp + fsync + rename, the persist-layer contract)
so an operator can pull a single file off a degraded box and inspect it
offline with ``tools/opsctl.py render``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import deque
from typing import Callable

import numpy as np

from repro.devtools.lockdep import new_lock
from repro.obs.metrics import MetricsRegistry, get_registry

#: Bundle schema version (bump on breaking layout changes).
BUNDLE_VERSION = 1

#: Capture reasons in precedence order: the first matching one labels
#: the entry (and its ``metasql_recorder_captured_total`` series).
REASONS = (
    "breaker_open",
    "fault",
    "deadline",
    "degraded",
    "verify_demotion",
    "repair",
    "slo_alert",
    "slow",
)


class FlightRecorder:
    """Bounded ring buffer of tail-sampled request payloads."""

    def __init__(
        self,
        capacity: int = 256,
        latency_window: int = 512,
        slow_quantile: float = 0.9,
        min_latency_samples: int = 20,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if not 0.0 < slow_quantile < 1.0:
            raise ValueError(
                f"slow_quantile must be in (0, 1), got {slow_quantile!r}"
            )
        self.capacity = capacity
        self.slow_quantile = slow_quantile
        self.min_latency_samples = min_latency_samples
        self._clock = clock if clock is not None else time.time
        self.registry = registry if registry is not None else get_registry()
        self._lock = new_lock("FlightRecorder._lock")
        self._entries: deque[dict] = deque()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- sampling -------------------------------------------------------

    def _reason(self, record: dict, slo_alerting: bool) -> str | None:
        """The capture reason for *record*, or None to drop it.

        The rolling slow threshold is computed over the latencies seen
        *before* this record, then the record's own latency joins the
        window either way — sampling is deterministic in arrival order.
        """
        faults = record.get("faults") or ()
        latency = record.get("latency_s")
        reason = None
        if any(
            isinstance(f, dict) and f.get("error_type") == "BreakerOpen"
            for f in faults
        ):
            reason = "breaker_open"
        elif faults:
            reason = "fault"
        elif record.get("deadline_expired"):
            reason = "deadline"
        elif record.get("degraded"):
            reason = "degraded"
        elif record.get("verify_demoted"):
            reason = "verify_demotion"
        elif record.get("repair_attempts"):
            reason = "repair"
        elif slo_alerting:
            reason = "slo_alert"
        elif (
            isinstance(latency, (int, float))
            and len(self._latencies) >= self.min_latency_samples
            and float(latency) >= self._slow_threshold()
        ):
            reason = "slow"
        if isinstance(latency, (int, float)):
            self._latencies.append(float(latency))
        return reason

    def _slow_threshold(self) -> float:
        return float(
            np.quantile(
                np.asarray(self._latencies, dtype=np.float64),
                self.slow_quantile,
            )
        )

    def consider(
        self,
        record: dict,
        report: object | None = None,
        slo_alerting: bool = False,
    ) -> str | None:
        """Tail-sample one finished request.

        *record* is the journal-style summary dict; *report* (when
        given) is the live ``TranslationReport`` whose ``as_dict()`` —
        including the span tree — rides along on the captured entry.
        Returns the capture reason, or None when the request was
        ordinary and dropped.
        """
        with self._lock:
            reason = self._reason(record, slo_alerting)
            considered = self._counter("considered")
            if reason is None:
                considered.inc()
                return None
            entry = {
                "ts": round(self._clock(), 6),
                "reason": reason,
                "record": dict(record),
            }
            if report is not None and hasattr(report, "as_dict"):
                entry["report"] = report.as_dict()
            self._append(entry, reason)
            considered.inc()
            return reason

    def capture(self, payload: dict, reason: str) -> dict:
        """Force-capture an out-of-band event (e.g. a swap rollback)."""
        entry = {
            "ts": round(self._clock(), 6),
            "reason": reason,
            "record": dict(payload),
        }
        with self._lock:
            self._append(entry, reason)
        return entry

    def _append(self, entry: dict, reason: str) -> None:
        """Ring-buffer append; caller holds the lock."""
        while len(self._entries) >= self.capacity:
            self._entries.popleft()
            self._evicted += 1
            self._counter("evicted").inc()
        self._entries.append(entry)
        self.registry.counter(
            "metasql_recorder_captured_total",
            "Requests captured by the flight recorder, by reason.",
            labelnames=("reason",),
        ).labels(reason=reason).inc()
        self.registry.gauge(
            "metasql_recorder_entries",
            "Entries currently held in the flight-recorder ring.",
        ).set(float(len(self._entries)))

    def _counter(self, kind: str):
        if kind == "considered":
            return self.registry.counter(
                "metasql_recorder_considered_total",
                "Finished requests offered to the flight recorder.",
            )
        return self.registry.counter(
            "metasql_recorder_evicted_total",
            "Captured entries evicted by the ring-buffer capacity bound.",
        )

    # -- reading --------------------------------------------------------

    def entries(
        self, tenant: str | None = None, limit: int | None = None
    ) -> list[dict]:
        """A snapshot of captured entries, oldest first.

        *tenant* filters on the entry's ``record["tenant"]`` label;
        *limit* keeps only the most recent N after filtering.
        """
        with self._lock:
            snapshot = [dict(entry) for entry in self._entries]
        if tenant is not None:
            snapshot = [
                entry
                for entry in snapshot
                if entry.get("record", {}).get("tenant") == tenant
            ]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:] if limit else []
        return snapshot

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "evicted": self._evicted,
                "latency_samples": len(self._latencies),
            }

    # -- bundling -------------------------------------------------------

    def dump_bundle(
        self,
        path: str | pathlib.Path,
        health: dict | None = None,
        slo: list[dict] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> pathlib.Path:
        """Write one debug-bundle JSON for offline diagnosis.

        The bundle lands atomically: serialized to ``<path>.tmp``,
        fsynced, then renamed over *path* — a crash mid-dump never
        leaves a torn bundle where tooling expects a whole one.
        """
        path = pathlib.Path(path)
        snapshot = registry if registry is not None else self.registry
        bundle = {
            "version": BUNDLE_VERSION,
            "generated_at": round(self._clock(), 6),
            "recorder": self.stats(),
            "entries": self.entries(),
            "metrics": snapshot.as_dict(),
            "health": health,
            "slo": slo if slo is not None else [],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path


def load_bundle(path: str | pathlib.Path) -> dict:
    """Read a bundle written by :meth:`FlightRecorder.dump_bundle`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
