"""Table 6: EM by SQL statement type on SpiderSim-dev.

Expected shape: MetaSQL helps most on ORDER BY / GROUP BY statements
(ranking benefits), while nested/negative queries remain the hardest.
"""

from repro.experiments import table6


def test_table6_em_by_statement_type(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table6.run(ctx), rounds=1, iterations=1
    )
    record_result("table6", result.render())

    assert all(count > 0 for count in result.counts.values())
    gains = []
    for name in ("bridge", "gap", "lgesql", "resdsql"):
        base = result.rows[name]
        meta = result.rows[f"{name}+metasql"]
        gains.append(meta["orderby"] - base["orderby"])
        gains.append(meta["groupby"] - base["groupby"])
    # Order/group gains are positive on average across models.
    assert sum(gains) / len(gains) > -0.02
