"""Supplementary design-choice ablations (DESIGN.md §5 extras).

Expected shape: value grounding lifts EX substantially while leaving EM
untouched (EM ignores literal values); more metadata compositions raise EM
up to a plateau.
"""

from repro.experiments import supplementary


def test_supplementary_ablations(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: supplementary.run(ctx), rounds=1, iterations=1
    )
    record_result("supplementary", result.render())

    on = result.grounding["on"]
    off = result.grounding["off"]
    assert on["ex"] >= off["ex"]
    assert abs(on["em"] - off["em"]) < 0.02  # EM ignores values
    assert result.budget[4] >= result.budget[1] - 0.02
