"""Table 5: EM by SQL difficulty level on SpiderSim-dev.

Expected shape: accuracy decreases with difficulty for every model; MetaSQL
gains concentrate in the Medium/Hard bands (with occasional Easy/Extra-Hard
instability, as the paper reports).
"""

from repro.experiments import table5


def test_table5_em_by_difficulty(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table5.run(ctx), rounds=1, iterations=1
    )
    record_result("table5", result.render())

    for name, row in result.rows.items():
        assert row["easy"] >= row["extra"] - 0.05, name
    lgesql = result.rows["lgesql"]
    meta = result.rows["lgesql+metasql"]
    medium_hard_gain = (meta["medium"] - lgesql["medium"]) + (
        meta["hard"] - lgesql["hard"]
    )
    assert medium_hard_gain > -0.05
