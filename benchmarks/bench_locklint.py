"""Concurrency-suite costs: locklint wall time + lockdep overhead (<5%).

Three gates keep the concurrency-correctness suite cheap enough to run
on every push:

1. ``tools/locklint.py`` must analyze the whole ``src/`` tree — parse,
   two-phase collection, interprocedural fixpoint, cycle detection —
   inside a wall-time bound, or the tier-1 gate it backs becomes the
   slowest thing in the suite.
2. The **disabled** lockdep path must be exactly free: with no ambient
   scope the factories return plain ``threading`` primitives, so
   production acquire/release never sees a wrapper.
3. The **enabled** path (test-only) is bounded the same way
   ``bench_serve`` bounds the serving layer: the per-translation lock
   traffic (five breaker admission+record pairs — each an
   acquire/release of ``CircuitBreaker._lock``) is timed instrumented
   vs plain and the delta held under 5% of the same executor workload
   used as the translation stand-in.

Run with ``pytest benchmarks/bench_locklint.py``.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
import threading
import time
import timeit

from repro.core.resilience import CircuitBreaker
from repro.devtools.lockdep import lockdep_scope, new_lock
from repro.schema.executor import execute

from benchmarks.bench_resilience import _workload

REPO = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "locklint", REPO / "tools" / "locklint.py"
)
locklint = importlib.util.module_from_spec(spec)
sys.modules.setdefault("locklint", locklint)
spec.loader.exec_module(locklint)

#: Lock acquire/release pairs one fault-free translation performs:
#: five breaker stages, one admission + one success record each.
LOCK_PAIRS_PER_TRANSLATE = 10

#: Whole-repo static analysis must stay under this many seconds.
ANALYSIS_BUDGET_S = 10.0

REPS = 5


def _per_call(fn, number: int) -> float:
    return min(timeit.repeat(fn, number=number, repeat=3)) / number


def test_locklint_and_lockdep_costs(record_result, bench_metrics):
    # -- 1. static analysis wall time over the real src/ tree ----------
    src = str(REPO / "src")
    start = time.perf_counter()
    findings = locklint.lint_paths([src])
    analysis_s = time.perf_counter() - start
    assert findings == []  # the tier-1 gate this run stands in for

    # -- 2. disabled path: the factory returns bare primitives --------
    assert type(new_lock("Bench._lock")) is type(threading.Lock())
    plain_breaker = CircuitBreaker("bench", threshold=5, cooldown=30.0)
    t_plain = _per_call(
        lambda: (plain_breaker.allow(), plain_breaker.record_success()),
        100_000,
    )

    # -- 3. enabled path: breaker traffic under an active witness -----
    with lockdep_scope():
        dep_breaker = CircuitBreaker("bench", threshold=5, cooldown=30.0)
        t_instrumented = _per_call(
            lambda: (dep_breaker.allow(), dep_breaker.record_success()),
            100_000,
        )

    db, queries = _workload()

    def run_workload():
        for query in queries:
            execute(query, db)

    run_workload()  # warm caches before timing
    base = timeit.timeit(run_workload, number=REPS) / REPS

    # One allow()+record_success() pair is two lock pairs; per-translate
    # instrumentation cost is the delta scaled to the five stages.
    delta_per_pair = max(0.0, t_instrumented - t_plain) / 2
    per_translate = LOCK_PAIRS_PER_TRANSLATE * delta_per_pair
    bound = per_translate / base

    rendered = "\n".join(
        [
            "concurrency-suite costs",
            f"  locklint over src/:          {analysis_s * 1e3:8.1f} ms",
            f"  breaker pair plain:          {t_plain * 1e9:8.1f} ns",
            f"  breaker pair instrumented:   {t_instrumented * 1e9:8.1f} ns",
            f"  lockdep delta per lock pair: {delta_per_pair * 1e9:8.1f} ns",
            f"  per-translate additions:     {per_translate * 1e6:8.2f} us"
            f"  ({LOCK_PAIRS_PER_TRANSLATE} lock pairs)",
            f"  workload (3 queries):        {base * 1e3:8.3f} ms",
            f"  enabled-path bound:          {bound * 100:6.2f} %",
        ]
    )
    record_result("locklint", rendered)
    bench_metrics(
        "locklint",
        {
            "analysis_ms": analysis_s * 1e3,
            "breaker_pair_plain_ns": t_plain * 1e9,
            "breaker_pair_lockdep_ns": t_instrumented * 1e9,
            "lockdep_delta_per_pair_ns": delta_per_pair * 1e9,
            "workload_ms": base * 1e3,
            "enabled_overhead_bound_pct": bound * 100,
        },
    )

    assert analysis_s < ANALYSIS_BUDGET_S
    assert bound < 0.05
