"""Figure 6: metadata sensitivity analysis (LGESQL + MetaSQL).

Expected shapes, matching the paper:
- 6a: EM degrades as the classification threshold drops toward -60
  ("randomised" metadata selection);
- 6b: correct > none >= incorrect;
- 6c: EM is relatively stable across hardness settings; oracle >= fixed;
- 6d: oracle tags > predicted > random (tags are the most sensitive
  metadata type).
"""

from repro.experiments import fig6


def test_fig6_metadata_sensitivity(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: fig6.run(ctx), rounds=1, iterations=1
    )
    record_result("fig6", result.render())

    # 6a: low thresholds are not better than the default.
    sweep = result.threshold_sweep
    assert sweep[-60.0] <= sweep[0.0] + 0.02
    # 6b: the correctness indicator matters.
    assert result.correctness["correct"] >= result.correctness["incorrect"]
    assert result.correctness["correct"] >= result.correctness["none"] - 0.02
    # 6c: hardness is the least sensitive metadata type.
    values = [v for k, v in result.hardness.items()]
    assert max(values) - min(values) < 0.25
    # 6d: oracle tags dominate; random tags hurt.
    assert result.tags["oracle"] >= result.tags["predicted"] - 0.02
    assert result.tags["random"] <= result.tags["oracle"]
