"""Operational-intelligence overhead on the serve hot path (target: <5%).

PR 8 adds three per-request sinks behind ``TranslationService._publish``:
``SloEngine.observe`` (classify + four sliding windows + burn-rate
latches per spec), ``SloEngine.alerting`` (the latch read), and
``FlightRecorder.consider`` (one lock'd reason check, plus the entry
copy when the request is interesting).  This benchmark measures a real
trained pipeline's translate latency, micro-times each sink exactly as
the publish path invokes it — the stock three-spec objective set, a
healthy record (the common case: considered and dropped), and a faulted
record (captured) — and asserts the summed per-request cost stays below
the 5% budget.  A scrape-path timing (``render_prometheus`` with the
``metasql_slo_*``/``metasql_recorder_*`` families live) rides along for
the ops-endpoint picture, and the numbers land in
``results/BENCH_ops.json`` for CI.

Run with ``pytest benchmarks/bench_ops.py``.
"""

from __future__ import annotations

import timeit

from repro.core.classifier import ClassifierConfig
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.spider import build_spider
from repro.models.registry import create_model
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SloEngine,
    default_slos,
    registry_scope,
)

REPS = 10


def _per_call(fn, number: int) -> float:
    return min(timeit.repeat(fn, number=number, repeat=3)) / number


def _trained_pipeline():
    """A small but fully trained pipeline (seconds, not minutes)."""
    bench = build_spider(seed=11, train_per_domain=30, dev_per_domain=6)
    config = MetaSQLConfig(
        ranker_train_questions=90, classifier=ClassifierConfig(epochs=25)
    )
    pipeline = MetaSQL(create_model("lgesql"), config)
    pipeline.train(bench.train)
    return pipeline, bench


def _record(good: bool) -> dict:
    return {
        "event": "translate",
        "tenant": "default",
        "latency_s": 0.02,
        "degraded": not good,
        "deadline_expired": False,
        "faults": [] if good else [{"stage": "stage1", "fallback": "x"}],
        "verify_demoted": 0,
        "repair_attempts": 0,
    }


def test_ops_overhead_under_five_percent(record_result, bench_metrics):
    pipeline, bench = _trained_pipeline()
    examples = bench.dev.examples[:4]
    jobs = [
        (example.question, bench.dev.database(example.db_id))
        for example in examples
    ]

    registry = MetricsRegistry()

    def run_translations():
        with registry_scope(registry):
            for question, db in jobs:
                pipeline.translate_ranked_report(question, db)

    run_translations()  # warm caches before timing
    t_translate = timeit.timeit(run_translations, number=REPS) / (
        REPS * len(jobs)
    )

    # Micro-time the publish-path sinks as the service invokes them:
    # the stock three-spec objective set over a steady request stream.
    engine = SloEngine(default_slos(), registry=registry)
    good_record = _record(good=True)
    n_micro = 5_000
    t_observe = _per_call(lambda: engine.observe(good_record), n_micro)
    t_alerting = _per_call(engine.alerting, n_micro)

    recorder = FlightRecorder(capacity=256, registry=registry)
    t_drop = _per_call(
        lambda: recorder.consider(good_record), n_micro
    )
    bad_record = _record(good=False)
    t_capture = _per_call(
        lambda: recorder.consider(bad_record), n_micro
    )

    # The scrape path an ops endpoint hits, with the new families live.
    t_render = _per_call(registry.render_prometheus, 200)

    # Steady state: every request is observed, the latch is read, and
    # the recorder considers-and-drops; captures are the fault path.
    per_request = t_observe + t_alerting + t_drop
    overhead = per_request / t_translate

    rendered = "\n".join(
        [
            "ops overhead (publish path, stock SLO set)",
            f"  translate (trained):        {t_translate * 1e3:8.3f} ms",
            f"  slo observe (3 specs):      {t_observe * 1e6:8.2f} us",
            f"  slo alerting read:          {t_alerting * 1e6:8.2f} us",
            f"  recorder consider (drop):   {t_drop * 1e6:8.2f} us",
            f"  recorder consider (capture):{t_capture * 1e6:8.2f} us",
            f"  /metrics render:            {t_render * 1e3:8.3f} ms",
            f"  per-request additions:      {per_request * 1e6:8.2f} us",
            f"  overhead vs translate:      {overhead * 100:6.2f} %",
        ]
    )
    record_result("ops", rendered)
    bench_metrics(
        "ops",
        {
            "translate_ms": t_translate * 1e3,
            "slo_observe_us": t_observe * 1e6,
            "slo_alerting_us": t_alerting * 1e6,
            "recorder_drop_us": t_drop * 1e6,
            "recorder_capture_us": t_capture * 1e6,
            "metrics_render_ms": t_render * 1e3,
            "overhead_pct": overhead * 100,
        },
    )

    assert overhead < 0.05
