"""Table 9: ablation study (LGESQL + MetaSQL).

Expected shape, matching the paper:
- w/o the second-stage ranker: ranking misses explode, EM collapses
  (paper: 77.4 -> 57.7);
- w/o phrase-level supervision: a smaller but real EM drop;
- w/o the multi-label classifier: EM drops versus the full pipeline.
"""

from repro.experiments import table9


def test_table9_ablations(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table9.run(ctx), rounds=1, iterations=1
    )
    record_result("table9", result.render())

    rows = result.rows
    full = rows["full"]["em"]
    assert rows["w/o second-stage ranking"]["em"] < full - 0.05
    assert (
        rows["w/o second-stage ranking"]["ranking_miss"]
        > rows["full"]["ranking_miss"]
    )
    assert rows["w/o phrase-level supervision"]["em"] <= full + 0.02
    assert rows["w/o multi-label classifier"]["em"] <= full + 0.02
