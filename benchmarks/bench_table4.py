"""Table 4: overall EM/EX on SpiderSim-dev and ScienceBenchmark-sim.

Regenerates the paper's headline table: six base models with and without
MetaSQL.  Expected shape: MetaSQL improves every model's EM; the largest EM
gains go to the LLM sims; value grounding lifts EX sharply for the
placeholder models (GAP, LGESQL); ScienceBench accuracies order
oncomx > cordis > sdss.
"""

from repro.experiments import table4


def test_table4_overall_results(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table4.run(ctx), rounds=1, iterations=1
    )
    record_result("table4", result.render())

    rows = result.rows
    for name in ("bridge", "gap", "lgesql", "resdsql", "chatgpt", "gpt4"):
        base = rows[name]
        meta = rows[f"{name}+metasql"]
        # MetaSQL must not hurt EM by more than noise, and usually helps.
        assert meta["em"] >= base["em"] - 0.03, name
    # Placeholder models gain EX from value grounding.
    assert rows["lgesql+metasql"]["ex"] > rows["lgesql"]["ex"] + 0.05
    assert rows["gap+metasql"]["ex"] > rows["gap"]["ex"] + 0.05
    # LLM sims gain the most EM (the paper's +13..+15 shape).
    llm_gain = rows["gpt4+metasql"]["em"] - rows["gpt4"]["em"]
    seq_gain = rows["lgesql+metasql"]["em"] - rows["lgesql"]["em"]
    assert llm_gain > seq_gain
