"""Resilience guard-layer overhead on the happy path (target: <5%).

The fault-isolation layer adds three things to fault-free translations:
failpoint ``fire()`` calls at stage entries, execution-budget charging in
the executor, and ``guarded_call`` wrappers around pipeline stages.  This
benchmark measures the active-budget cost against an executor workload
with interleaved paired timing (machine-load drift cancels in the median
of per-pair ratios), micro-times the guard primitives, and asserts the
total stays below the 5% budget the ISSUE allows.

Run with ``pytest benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import statistics
import timeit

from repro.core.resilience import (
    FAULTS,
    DegradationPolicy,
    TranslationReport,
    guarded_call,
)
from repro.schema.database import Database
from repro.schema.executor import ExecutionBudget, execute
from repro.schema.schema import NUMBER, Column, ForeignKey, Schema, Table
from repro.sqlkit.parser import parse_sql

PAIRS = 15
REPS = 5


def _workload() -> tuple[Database, list]:
    """A join + filter + group + order + subquery workload."""
    schema = Schema(
        db_id="bench",
        tables=(
            Table("customer", (Column("cid", NUMBER), Column("city"))),
            Table(
                "orders",
                (
                    Column("oid", NUMBER),
                    Column("cid", NUMBER),
                    Column("amount", NUMBER),
                ),
            ),
        ),
        foreign_keys=(ForeignKey("orders", "cid", "customer", "cid"),),
    )
    db = Database(schema)
    db.insert_many(
        "customer",
        [{"cid": i, "city": f"city{i % 7}"} for i in range(25)],
    )
    db.insert_many(
        "orders",
        [
            {"oid": i, "cid": i % 25, "amount": (i * 37) % 500}
            for i in range(250)
        ],
    )
    queries = [
        parse_sql("SELECT city, count(*) FROM customer GROUP BY city"),
        parse_sql(
            "SELECT city, sum(amount) FROM customer, orders "
            "WHERE amount > 50 GROUP BY city ORDER BY sum(amount) DESC"
        ),
        parse_sql(
            "SELECT cid FROM customer WHERE cid > "
            "(SELECT avg(cid) FROM customer)"
        ),
    ]
    return db, queries


def _paired_overhead(baseline, variant) -> float:
    """Median of per-pair overhead ratios, alternating run order.

    Timing *baseline* and *variant* back to back in each pair and taking
    the median ratio makes the estimate robust to machine-load drift,
    which on shared hardware easily exceeds the effect being measured.
    """
    ratios = []
    for i in range(PAIRS):
        if i % 2 == 0:
            a = timeit.timeit(baseline, number=REPS)
            b = timeit.timeit(variant, number=REPS)
        else:
            b = timeit.timeit(variant, number=REPS)
            a = timeit.timeit(baseline, number=REPS)
        ratios.append((b - a) / a)
    return statistics.median(ratios)


def test_guard_layer_overhead_under_five_percent(record_result, bench_metrics):
    db, queries = _workload()

    def run_inert():
        # The new happy path: failpoints registered but disarmed, no
        # budget installed (ambient budget reads hit the default).
        for query in queries:
            execute(query, db)

    def run_budgeted():
        # Evaluation path: a fresh budget per top-level execute.
        for query in queries:
            execute(query, db, budget=ExecutionBudget())

    run_inert(), run_budgeted()  # warm caches before timing
    base = timeit.timeit(run_inert, number=REPS) / REPS
    budget_overhead = _paired_overhead(run_inert, run_budgeted)

    # Cost of the guard primitives themselves, to bound the inert-path
    # cost vs the pre-guard ("seed") executor.
    n = 200_000
    t_fire = min(
        timeit.repeat(
            lambda: FAULTS.fire("executor.execute"), number=n, repeat=3
        )
    ) / n
    policy = DegradationPolicy()
    report = TranslationReport(question="bench")
    n_guard = 20_000
    t_guard = min(
        timeit.repeat(
            lambda: guarded_call(
                "bench", lambda: None, policy, report, fallback="skip"
            ),
            number=n_guard,
            repeat=3,
        )
    ) / n_guard
    # A translation crosses ~6 failpoints and ~4 guarded_call wrappers;
    # bound the per-query executor share generously at 10 fire()s plus
    # a handful of charge-site context reads (same order as fire()).
    inert_guard_cost = len(queries) * 20 * t_fire
    inert_overhead = inert_guard_cost / base

    rendered = "\n".join(
        [
            "resilience guard-layer overhead (happy path)",
            f"  workload (3 queries):      {base * 1e3:8.3f} ms",
            f"  active budget overhead:    {budget_overhead * 100:+6.2f} %"
            f"  (median of {PAIRS} interleaved pairs)",
            f"  fire() per call:           {t_fire * 1e9:8.1f} ns",
            f"  guarded_call() per call:   {t_guard * 1e6:8.2f} us",
            f"  inert guard bound:         {inert_overhead * 100:6.2f} %",
        ]
    )
    record_result("resilience", rendered)
    bench_metrics(
        "resilience",
        {
            "workload_ms": base * 1e3,
            "budget_overhead_pct": budget_overhead * 100,
            "fire_ns": t_fire * 1e9,
            "guarded_call_us": t_guard * 1e6,
            "inert_bound_pct": inert_overhead * 100,
        },
    )

    assert not report.faults  # the guarded no-op never recorded anything
    assert budget_overhead < 0.05
    assert inert_overhead < 0.05
