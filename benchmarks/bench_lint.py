"""Semantic-lint candidate-gate overhead on generation (target: <5%).

The gate runs :class:`repro.sqlkit.analyze.SemanticAnalyzer` over every
deduplicated candidate before it enters the set.  This benchmark times
real conditioned generation (a fitted base model over SpiderSim dev
examples) with the gate on vs off using interleaved paired timing
(machine-load drift cancels in the median of per-pair ratios),
micro-times one analysis call, and asserts the end-to-end overhead stays
below the 5% budget the ISSUE allows.

Run with ``pytest benchmarks/bench_lint.py``.
"""

from __future__ import annotations

import statistics
import timeit

from repro.core.generation import CandidateGenerator, GeneratorConfig
from repro.core.metadata import extract_metadata
from repro.data.spider import build_spider
from repro.sqlkit.analyze import SemanticAnalyzer

PAIRS = 15
REPS = 3


def _paired_overhead(baseline, variant) -> float:
    """Median of per-pair overhead ratios, alternating run order."""
    ratios = []
    for i in range(PAIRS):
        if i % 2 == 0:
            a = timeit.timeit(baseline, number=REPS)
            b = timeit.timeit(variant, number=REPS)
        else:
            b = timeit.timeit(variant, number=REPS)
            a = timeit.timeit(baseline, number=REPS)
        ratios.append((b - a) / a)
    return statistics.median(ratios)


def _workload():
    """A fitted metadata-conditioned model plus dev examples to decode."""
    from repro.models.registry import create_model

    benchmark = build_spider(seed=11, train_per_domain=30, dev_per_domain=6)
    model = create_model("lgesql")
    model.fit(benchmark.train, with_metadata=True)
    jobs = []
    for example in benchmark.dev.examples[:12]:
        db = benchmark.dev.database(example.db_id)
        jobs.append((example.question, db, [extract_metadata(example.sql)]))
    return model, jobs


def test_lint_gate_overhead_under_five_percent(record_result, bench_metrics):
    model, jobs = _workload()
    gated = CandidateGenerator(model, GeneratorConfig(lint_candidates=True))
    ungated = CandidateGenerator(
        model, GeneratorConfig(lint_candidates=False)
    )

    def run_gated():
        for question, db, compositions in jobs:
            gated.generate(question, db, compositions)

    def run_ungated():
        for question, db, compositions in jobs:
            ungated.generate(question, db, compositions)

    run_gated(), run_ungated()  # warm caches before timing
    base = timeit.timeit(run_ungated, number=REPS) / REPS
    overhead = _paired_overhead(run_ungated, run_gated)

    # Per-candidate cost of one analysis call, on a representative
    # candidate set from the first job.
    question, db, compositions = jobs[0]
    candidates = ungated.generate(question, db, compositions)
    analyzer = SemanticAnalyzer(db.schema)
    n = 2_000
    t_analyze = min(
        timeit.repeat(
            lambda: [analyzer.analyze(c.query) for c in candidates],
            number=n // max(len(candidates), 1),
            repeat=3,
        )
    ) / (n // max(len(candidates), 1)) / max(len(candidates), 1)

    rendered = "\n".join(
        [
            "semantic-lint candidate-gate overhead (generation path)",
            f"  workload ({len(jobs)} questions): {base * 1e3:8.2f} ms",
            f"  gate overhead:             {overhead * 100:+6.2f} %"
            f"  (median of {PAIRS} interleaved pairs)",
            f"  analyze() per candidate:   {t_analyze * 1e6:8.1f} us",
        ]
    )
    record_result("lint", rendered)
    bench_metrics(
        "lint",
        {
            "workload_ms": base * 1e3,
            "gate_overhead_pct": overhead * 100,
            "analyze_us": t_analyze * 1e6,
        },
    )

    assert overhead < 0.05
