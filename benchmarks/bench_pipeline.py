"""Batched + memoized ranking hot path vs the per-item baseline (>=3x).

The tentpole optimization vectorizes everything downstream of candidate
generation: SQL surface/phrase renderings, TF-IDF featurization, the
stage-1 tower forwards + cosine sweep, and the stage-2 coarse/fine head
forwards.  Generation itself (the base model's beam decode) is untouched
and dominates end-to-end latency, so this benchmark hoists it out: each
request's candidate set is produced once, then the *ranking path* is
timed in both modes —

- **baseline**: every cache ambiently disabled (``caching_scope(False)``)
  and the per-item reference rankers (``rank_sequential``), i.e. the
  pre-optimization code path;
- **batched, warm cache**: the vectorized rankers with every memo
  (renderings, features, embeddings, alignment features) primed.

The batched path must be at least 3x faster — a relative ratio, robust
to machine speed — and must produce an identical ranked SQL ordering for
every request.  End-to-end ``translate_many`` latency is recorded too
(not asserted; generation dominates it).

Run with ``pytest benchmarks/bench_pipeline.py``; emits
``results/BENCH_pipeline.json`` and ``results/pipeline.txt``.
"""

from __future__ import annotations

import timeit

import pytest

from repro.core.classifier import ClassifierConfig
from repro.core.pipeline import MetaSQL, MetaSQLConfig, _dedupe_candidates
from repro.data.spider import build_spider
from repro.perf import caching_scope, cached_sql_surface, cached_unit_phrases
from repro.sqlkit.printer import to_sql

#: Each dev question appears this many times — the repeated-question
#: shape of eval sweeps and serving traffic that memoization amortizes.
REPEATS = 3
QUESTIONS = 10
TIMING_ROUNDS = 3


def _workload():
    """A small trained pipeline plus pre-generated candidate sets."""
    from repro.models.registry import create_model

    benchmark = build_spider(seed=11, train_per_domain=30, dev_per_domain=6)
    config = MetaSQLConfig(
        ranker_train_questions=90,
        classifier=ClassifierConfig(epochs=25),
    )
    pipeline = MetaSQL(create_model("lgesql"), config)
    pipeline.train(benchmark.train)
    examples = benchmark.dev.examples[:QUESTIONS]
    pairs = []
    for __ in range(REPEATS):
        pairs.extend(
            (example.question, benchmark.dev.database(example.db_id))
            for example in examples
        )
    jobs = [
        (question, db.schema, pipeline.candidates(question, db))
        for question, db in pairs
    ]
    return pipeline, pairs, jobs


def _rank_one(pipeline, question, schema, candidates) -> list[str]:
    """The post-generation ranking path; returns the ranked SQL list.

    Under ``caching_scope(False)`` with the sequential rankers swapped
    in this is exactly the per-item baseline; otherwise it is the
    vectorized path of ``translate_ranked_report``.
    """
    surfaces = [
        cached_sql_surface(c.query, schema, sql_text=c.sql_text or None)
        for c in candidates
    ]
    generated, surfaces, __ = _dedupe_candidates(list(candidates), surfaces)
    pruned = pipeline.stage1.rank(
        question, surfaces, top_k=pipeline.config.first_stage_top
    )
    stage2_input = [
        (
            surfaces[index],
            cached_unit_phrases(
                generated[index].query,
                schema,
                sql_text=generated[index].sql_text or None,
            ),
        )
        for index, __ in pruned
    ]
    ranked = pipeline.stage2.rank(question, stage2_input)
    return [
        to_sql(generated[pruned[position][0]].query)
        for position, __ in ranked
    ]


@pytest.mark.perf
def test_batched_ranking_speedup(record_result, bench_metrics):
    pipeline, pairs, jobs = _workload()

    def run_baseline():
        outputs = []
        with caching_scope(False):
            pipeline.stage1.rank = pipeline.stage1.rank_sequential
            pipeline.stage2.rank = pipeline.stage2.rank_sequential
            try:
                for question, schema, candidates in jobs:
                    outputs.append(
                        _rank_one(pipeline, question, schema, candidates)
                    )
            finally:
                del pipeline.stage1.__dict__["rank"]
                del pipeline.stage2.__dict__["rank"]
        return outputs

    def run_batched():
        return [
            _rank_one(pipeline, question, schema, candidates)
            for question, schema, candidates in jobs
        ]

    baseline_outputs = run_baseline()
    warm_outputs = run_batched()  # populates every cache before timing

    t_base = min(
        timeit.repeat(run_baseline, number=1, repeat=TIMING_ROUNDS)
    )
    t_batch = min(
        timeit.repeat(run_batched, number=1, repeat=TIMING_ROUNDS)
    )
    speedup = t_base / t_batch

    # Identical ranked outputs, request by request: batching and warm
    # caches change how scores are computed, never what is returned.
    assert warm_outputs == baseline_outputs

    # End-to-end latency with warm caches (generation included, so the
    # ranking win is diluted here — recorded, not asserted).
    t_e2e = min(
        timeit.repeat(
            lambda: pipeline.translate_many(pairs), number=1, repeat=2
        )
    )

    candidates = sum(len(c) for __, __, c in jobs)
    per_rank_ms = t_batch / len(jobs) * 1e3
    candidates_per_sec = candidates / t_batch if t_batch else 0.0

    rendered = "\n".join(
        [
            "ranking hot path: batched + memoized vs per-item baseline",
            f"  workload: {len(jobs)} requests "
            f"({QUESTIONS} questions x {REPEATS} repeats), "
            f"{candidates} candidates",
            f"  per-item baseline:   {t_base * 1e3:8.1f} ms",
            f"  batched, warm cache: {t_batch * 1e3:8.1f} ms",
            f"  speedup:             {speedup:8.2f} x",
            f"  per request (rank):  {per_rank_ms:8.2f} ms",
            f"  candidates/sec:      {candidates_per_sec:8.0f}",
            f"  end-to-end translate:{t_e2e / len(pairs) * 1e3:8.2f} ms "
            f"(generation-dominated)",
        ]
    )
    record_result("pipeline", rendered)
    bench_metrics(
        "pipeline",
        {
            "baseline_ms": t_base * 1e3,
            "batched_warm_ms": t_batch * 1e3,
            "speedup": speedup,
            "per_rank_ms": per_rank_ms,
            "candidates_per_sec": candidates_per_sec,
            "e2e_per_translate_ms": t_e2e / len(pairs) * 1e3,
            "requests": len(jobs),
            "candidates": candidates,
        },
    )

    # The acceptance bar is a *relative* ratio, robust to machine speed.
    assert speedup >= 3.0
