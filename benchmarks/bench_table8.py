"""Table 8: stage-wise accuracy (selection / generation / ranking).

Expected shape: metadata selection accuracy is high (paper: 91.4%);
conditioned-generation accuracy exceeds each base model's plain EM;
ranking MRR under oracle metadata exceeds the end-to-end MRR.
"""

from repro.experiments import table8


def test_table8_stagewise_accuracy(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table8.run(ctx), rounds=1, iterations=1
    )
    record_result("table8", result.render())

    assert result.selection_accuracy > 0.6
    for name, row in result.rows.items():
        assert 0.0 <= row["generation"] <= 1.0
        assert row["ranking"] >= row["generation"] * 0.5, name
