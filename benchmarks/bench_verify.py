"""Execution-guided verification: overhead and accuracy (target: <10%).

Two claims ride on the post-rank verify stage:

1. **Overhead** — executing the top-3 ranked candidates (repair off)
   must cost under 10% of end-to-end translate latency.  Measured with
   interleaved paired timing over real dev translations (machine-load
   drift cancels in the median of per-pair ratios).
2. **Accuracy** — execution accuracy with verify+repair enabled must be
   no worse than with the stage disabled (the stage only reorders away
   from runtime failures; a correct top-1 is never displaced by an
   incorrect one).  EX is reported per hardness bucket with the delta.

Run with ``pytest benchmarks/bench_verify.py``.
"""

from __future__ import annotations

import statistics
import timeit

from repro.core.repair import RepairConfig
from repro.core.verify import VerifyConfig
from repro.eval.evaluate import evaluate_metasql

PAIRS = 9
REPS = 2

VERIFY_ON = VerifyConfig(policy="demote", top_k=3)
VERIFY_OFF = VerifyConfig(policy="off")
REPAIR_OFF = RepairConfig(max_attempts=0)


def _paired_overhead(baseline, variant) -> float:
    """Median of per-pair overhead ratios, alternating run order."""
    ratios = []
    for i in range(PAIRS):
        if i % 2 == 0:
            a = timeit.timeit(baseline, number=REPS)
            b = timeit.timeit(variant, number=REPS)
        else:
            b = timeit.timeit(variant, number=REPS)
            a = timeit.timeit(baseline, number=REPS)
        ratios.append((b - a) / a)
    return statistics.median(ratios)


def test_verify_overhead_and_ex_lift(ctx, record_result, bench_metrics):
    pipe = ctx.pipeline("lgesql")
    dev = ctx.benchmark.dev
    jobs = [
        (example.question, dev.database(example.db_id))
        for example in dev.examples[:12]
    ]
    saved_verify, saved_repair = pipe.config.verify, pipe.config.repair
    try:
        pipe.config.repair = REPAIR_OFF

        def run_verified():
            pipe.config.verify = VERIFY_ON
            for question, db in jobs:
                pipe.translate_ranked_report(question, db)

        def run_unverified():
            pipe.config.verify = VERIFY_OFF
            for question, db in jobs:
                pipe.translate_ranked_report(question, db)

        run_verified(), run_unverified()  # warm caches before timing
        base = timeit.timeit(run_unverified, number=REPS) / REPS
        overhead = _paired_overhead(run_unverified, run_verified)

        # Accuracy: full dev pass with the stage off vs on (+ repair).
        pipe.config.verify = VERIFY_OFF
        pipe.config.repair = REPAIR_OFF
        without = evaluate_metasql(pipe, dev)
        pipe.config.verify = VERIFY_ON
        pipe.config.repair = RepairConfig()
        with_verify = evaluate_metasql(pipe, dev)
    finally:
        pipe.config.verify, pipe.config.repair = saved_verify, saved_repair

    ex_without, ex_with = without.ex, with_verify.ex
    by_hardness_without = without.ex_by_hardness()
    by_hardness_with = with_verify.ex_by_hardness()

    lines = [
        "execution-guided verification (top-3, demote policy)",
        f"  workload ({len(jobs)} questions): {base * 1e3:8.2f} ms",
        f"  verify overhead:           {overhead * 100:+6.2f} %"
        f"  (median of {PAIRS} interleaved pairs)",
        f"  EX without / with verify+repair: "
        f"{ex_without:.4f} / {ex_with:.4f}  "
        f"(delta {ex_with - ex_without:+.4f})",
        f"  demoted candidates: {with_verify.verify_demoted_total}, "
        f"repair attempts: {with_verify.repair_attempts_total}",
        "  EX by hardness (without -> with):",
    ]
    metrics = {
        "workload_ms": base * 1e3,
        "verify_overhead_pct": overhead * 100,
        "ex_without": ex_without,
        "ex_with": ex_with,
        "ex_delta": ex_with - ex_without,
        "verify_demoted": with_verify.verify_demoted_total,
        "repair_attempts": with_verify.repair_attempts_total,
    }
    for level, before in sorted(by_hardness_without.items()):
        after = by_hardness_with.get(level, 0.0)
        lines.append(
            f"    {level:10s} {before:.4f} -> {after:.4f} "
            f"({after - before:+.4f})"
        )
        metrics[f"ex_delta_{level}"] = after - before
    record_result("verify", "\n".join(lines))
    bench_metrics("verify", metrics)

    assert overhead < 0.10
    assert ex_with >= ex_without
