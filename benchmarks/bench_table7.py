"""Table 7: Precision@K and translation MRR of MetaSQL's ranked lists.

Expected shape: P@1 <= P@3 <= P@5; MRR close to P@1 from above;
Seq2seq-based pipelines rank above the LLM sims.
"""

from repro.experiments import table7


def test_table7_precision_and_mrr(benchmark, ctx, record_result):
    result = benchmark.pedantic(
        lambda: table7.run(ctx), rounds=1, iterations=1
    )
    record_result("table7", result.render())

    for name, row in result.rows.items():
        assert row["p1"] <= row["p3"] + 1e-9, name
        assert row["p3"] <= row["p5"] + 1e-9, name
        assert row["mrr"] >= row["p1"] - 1e-9, name
    assert (
        result.rows["lgesql+metasql"]["mrr"]
        > result.rows["chatgpt+metasql"]["mrr"]
    )
