"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure at full scale, printing
the measured rows next to the paper's published rows and writing them to
``benchmarks/results/``.  The experiment context (datasets, fitted models,
trained pipelines) is cached process-wide, so training costs are paid once
across the whole suite.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    from repro.experiments.common import get_context

    return get_context(os.environ.get("REPRO_SCALE", "full"))


@pytest.fixture(scope="session")
def record_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, rendered: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}\n")

    return write


@pytest.fixture(scope="session")
def bench_metrics():
    """Collect named numeric results across the whole benchmark session.

    Benchmarks call ``bench_metrics("serve", {"base_ms": 1.2, ...})``;
    each named suite is written to its own ``results/BENCH_<name>.json``
    at session teardown, plus the combined ``results/BENCH_obs.json`` —
    machine-readable artifacts regressions can be tracked against (CI
    uploads them).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    collected: dict[str, dict[str, float]] = {}

    def record(name: str, numbers: dict) -> None:
        # Merge rather than replace: several benchmarks may contribute
        # to one named suite (e.g. serve overhead + serve batching).
        collected.setdefault(name, {}).update(
            {key: float(value) for key, value in sorted(numbers.items())}
        )

    yield record
    if collected:
        for name, numbers in collected.items():
            (RESULTS_DIR / f"BENCH_{name}.json").write_text(
                json.dumps({name: numbers}, indent=2, sort_keys=True) + "\n"
            )
        path = RESULTS_DIR / "BENCH_obs.json"
        path.write_text(
            json.dumps(collected, indent=2, sort_keys=True) + "\n"
        )
