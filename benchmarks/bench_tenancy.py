"""Tenant isolation under a noisy neighbor, and swap-under-load cost.

Two claims the tenancy layer makes, measured end to end through
:class:`~repro.serve.service.TranslationService`:

1. **Quota isolation**: with tenant A flooding the service as fast as a
   tight admission quota allows (every excess submit shed with a typed
   ``TenantOverloaded``), tenant B's p99 latency stays within 25% of its
   solo p99 (plus a small absolute floor to absorb scheduler jitter on
   shared CI runners).
2. **Zero-downtime hot swap**: repeatedly hot-swapping tenant B's shard
   while B is under continuous load adds **zero** failed requests — every
   request completes on a coherent ``(pipeline, epoch)`` pair.

The shard is a stub with a fixed simulated inference cost so the numbers
isolate the serving/tenancy layer rather than model quality.

Run with ``pytest benchmarks/bench_tenancy.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.pipeline import RankedResult, RankedTranslation
from repro.core.resilience import TranslationReport
from repro.serve import ServiceConfig, TranslationService
from repro.sqlkit.errors import Overloaded, TenantOverloaded
from repro.sqlkit.parser import parse_sql
from repro.tenancy import Router, TenantQuota

pytestmark = pytest.mark.tenancy

#: Simulated per-request inference cost (sleep releases the GIL, so the
#: worker pool overlaps requests the way a real model server would).
WORK_S = 0.002
#: Requests per measured phase (solo / flood) and per swap phase.
N_REQUESTS = 150
N_SWAP_REQUESTS = 100
N_SWAPS = 5

_RANKED = RankedTranslation(
    query=parse_sql("SELECT name FROM country"),
    stage1_score=1.0,
    stage2_score=1.0,
    metadata=None,
)


class FixedCostPipeline:
    """Duck-typed shard with a constant simulated inference latency."""

    breakers = None
    _trained = True

    def translate_ranked_report(self, question, db, compositions=None):
        time.sleep(WORK_S)
        return RankedResult([_RANKED], TranslationReport(question=question))


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def _measure_tenant(service, tenant: str, n: int) -> list[float]:
    """Serial closed-loop client: per-request e2e latency, seconds."""
    latencies = []
    for index in range(n):
        started = time.perf_counter()
        service.translate(f"q{index}", None, tenant=tenant, timeout=30)
        latencies.append(time.perf_counter() - started)
    return latencies


def test_tenant_isolation_and_swap_cost(record_result, bench_metrics):
    router = Router()
    # Tenant A: one request in flight at a time, everything else shed.
    router.register(
        "noisy", FixedCostPipeline(), quota=TenantQuota(max_share=1)
    )
    router.register("victim", FixedCostPipeline())
    config = ServiceConfig(workers=4, queue_limit=256, max_retries=0)

    with TranslationService(router, config) as service:
        # Warm the worker pool, then measure tenant B alone.
        _measure_tenant(service, "victim", 10)
        solo = _measure_tenant(service, "victim", N_REQUESTS)

        # Tenant A floods from two threads for the whole flood phase.
        stop = threading.Event()
        flood_stats = {"admitted": 0, "rejected": 0}
        stats_lock = threading.Lock()

        def flood():
            while not stop.is_set():
                try:
                    future = service.submit("flood", None, tenant="noisy")
                    future.result(timeout=30)
                    with stats_lock:
                        flood_stats["admitted"] += 1
                except (TenantOverloaded, Overloaded):
                    with stats_lock:
                        flood_stats["rejected"] += 1
                    # Shed clients back off briefly (as a real client
                    # would on a 429) instead of spinning on the GIL.
                    time.sleep(WORK_S / 4)

        threads = [
            threading.Thread(target=flood, daemon=True) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            flooded = _measure_tenant(service, "victim", N_REQUESTS)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

        # Hot-swap tenant B's shard repeatedly while B stays under load.
        swap_failed = 0
        swap_latencies = []
        for index in range(N_SWAP_REQUESTS):
            if index % (N_SWAP_REQUESTS // N_SWAPS) == 0:
                service.swap(FixedCostPipeline(), tenant="victim")
            started = time.perf_counter()
            try:
                service.translate(
                    f"s{index}", None, tenant="victim", timeout=30
                )
            except Exception:  # repolint: allow[broad-except] — counted as the metric under test
                swap_failed += 1
                continue
            swap_latencies.append(time.perf_counter() - started)
        final_epoch = router.resolve("victim").shard.epoch

    p99_solo, p99_flood = _p99(solo), _p99(flooded)
    p99_swap = _p99(swap_latencies)
    # 25% relative bound with a 20ms absolute floor for runner jitter.
    bound = max(1.25 * p99_solo, p99_solo + 0.020)
    ratio = p99_flood / p99_solo if p99_solo else float("inf")

    rendered = "\n".join(
        [
            "tenant isolation under a noisy neighbor",
            f"  victim p99 solo:          {p99_solo * 1e3:8.2f} ms",
            f"  victim p99 under flood:   {p99_flood * 1e3:8.2f} ms"
            f"  ({ratio * 100:.0f}% of solo; bound {bound * 1e3:.2f} ms)",
            f"  flood admitted/rejected:  {flood_stats['admitted']:6d} /"
            f" {flood_stats['rejected']:6d}",
            f"  p99 with {N_SWAPS} swaps mid-load: {p99_swap * 1e3:8.2f} ms",
            f"  swap failed requests:     {swap_failed:6d}"
            f"  (epoch {final_epoch})",
        ]
    )
    record_result("tenancy", rendered)
    bench_metrics(
        "tenancy",
        {
            "p99_solo_ms": p99_solo * 1e3,
            "p99_flood_ms": p99_flood * 1e3,
            "flood_over_solo_pct": ratio * 100,
            "flood_admitted": flood_stats["admitted"],
            "flood_rejected": flood_stats["rejected"],
            "p99_swap_ms": p99_swap * 1e3,
            "swap_failed": swap_failed,
            "final_epoch": final_epoch,
        },
    )

    # The quota actually bit: the flood was mostly shed, not served.
    assert flood_stats["rejected"] > flood_stats["admitted"]
    # Isolation: the victim's tail is flat under the flood.
    assert p99_flood <= bound
    # Zero-downtime: swapping mid-load failed nothing and advanced epochs.
    assert swap_failed == 0
    assert final_epoch == 1 + N_SWAPS
