"""Observability-layer overhead on the translate hot path (target: <5%).

PR 3 instruments every translation: a per-request span tree (one
``translate`` root, four stage spans, per-condition/per-candidate
sub-spans), per-stage latency histograms, and a handful of counters.
This benchmark measures a *real* trained pipeline's translate latency
with the instrumentation live, counts the instrumentation events one
translation actually emits (from its own trace), micro-times each
primitive, and asserts the summed per-translation cost stays below the
5% budget.  It also exercises the no-tracer fast path (``maybe_span``
with nothing installed must be a handful of nanoseconds) and leaves two
artifacts for CI: the rendered Prometheus exposition and a JSONL
journal of the benchmarked translations.

Run with ``pytest benchmarks/bench_obs.py``.
"""

from __future__ import annotations

import timeit

from repro.core.classifier import ClassifierConfig
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.spider import build_spider
from repro.models.registry import create_model
from repro.obs import (
    Journal,
    MetricsRegistry,
    Tracer,
    maybe_span,
    registry_scope,
)

from benchmarks.conftest import RESULTS_DIR

REPS = 10


def _per_call(fn, number: int) -> float:
    return min(timeit.repeat(fn, number=number, repeat=3)) / number


def _trained_pipeline():
    """A small but fully trained pipeline (seconds, not minutes)."""
    bench = build_spider(seed=11, train_per_domain=30, dev_per_domain=6)
    config = MetaSQLConfig(
        ranker_train_questions=90, classifier=ClassifierConfig(epochs=25)
    )
    pipeline = MetaSQL(create_model("lgesql"), config)
    pipeline.train(bench.train)
    return pipeline, bench


def _span_count(tree: dict) -> int:
    return 1 + sum(_span_count(c) for c in tree.get("children", ()))


def test_observability_overhead_under_five_percent(
    record_result, bench_metrics
):
    pipeline, bench = _trained_pipeline()
    examples = bench.dev.examples[:4]
    jobs = [
        (example.question, bench.dev.database(example.db_id))
        for example in examples
    ]

    registry = MetricsRegistry()

    def run_translations():
        with registry_scope(registry):
            for question, db in jobs:
                pipeline.translate_ranked_report(question, db)

    run_translations()  # warm caches before timing
    t_translate = timeit.timeit(run_translations, number=REPS) / (
        REPS * len(jobs)
    )

    # Count the instrumentation events one translation actually emits.
    with registry_scope(registry):
        outcome = pipeline.translate_ranked_report(*jobs[0])
    n_spans = _span_count(outcome.report.trace)
    n_observe = 5  # four stage-latency observations + one translate latency
    n_counter = 4  # generated/pruned totals + degraded/expired flush

    # Micro-time each primitive as the pipeline uses it.
    tracer = Tracer()

    def span_cycle():
        with tracer.span("bench"):
            pass

    n_micro = 20_000
    t_span = _per_call(span_cycle, n_micro)
    tracer.roots.clear()

    def maybe_none_cycle():
        with maybe_span("bench"):
            pass

    t_maybe_none = _per_call(maybe_none_cycle, n_micro)

    histogram = registry.histogram(
        "bench_latency_seconds", labelnames=("stage",)
    )
    t_observe = _per_call(
        lambda: histogram.labels(stage="bench").observe(1e-3), n_micro
    )
    counter = registry.counter("bench_events_total", labelnames=("kind",))
    t_inc = _per_call(lambda: counter.labels(kind="bench").inc(), n_micro)

    per_translate = (
        n_spans * t_span + n_observe * t_observe + n_counter * t_inc
    )
    overhead = per_translate / t_translate

    rendered = "\n".join(
        [
            "observability overhead (translate hot path)",
            f"  translate (instrumented):   {t_translate * 1e3:8.3f} ms",
            f"  spans per translation:      {n_spans:8d}",
            f"  span open+close:            {t_span * 1e9:8.1f} ns",
            f"  maybe_span, no tracer:      {t_maybe_none * 1e9:8.1f} ns",
            f"  histogram observe (label):  {t_observe * 1e9:8.1f} ns",
            f"  counter inc (label):        {t_inc * 1e9:8.1f} ns",
            f"  per-translate additions:    {per_translate * 1e6:8.2f} us"
            f"  ({n_spans} spans, {n_observe} observes, {n_counter} incs)",
            f"  overhead vs translate:      {overhead * 100:6.2f} %",
        ]
    )
    record_result("obs", rendered)
    bench_metrics(
        "obs",
        {
            "translate_ms": t_translate * 1e3,
            "spans_per_translate": n_spans,
            "span_ns": t_span * 1e9,
            "maybe_span_none_ns": t_maybe_none * 1e9,
            "observe_ns": t_observe * 1e9,
            "counter_inc_ns": t_inc * 1e9,
            "overhead_pct": overhead * 100,
        },
    )

    # CI artifacts: the live exposition and a journal of this run.
    (RESULTS_DIR / "obs_metrics.prom").write_text(
        registry.render_prometheus()
    )
    journal_path = RESULTS_DIR / "obs_journal.jsonl"
    journal_path.unlink(missing_ok=True)
    with Journal(journal_path, fsync=False) as journal:
        for question, db in jobs:
            with registry_scope(registry):
                result = pipeline.translate_ranked_report(question, db)
            journal.append(
                {
                    "event": "bench",
                    "question": question,
                    "ok": bool(result.translations),
                    "stages": {
                        stage: round(seconds, 6)
                        for stage, seconds in (
                            result.report.stage_durations().items()
                        )
                    },
                }
            )

    assert overhead < 0.05
    # The uninstrumented fast path must stay negligible next to a span.
    assert t_maybe_none < 10e-6