"""Serving-layer benchmarks: hot-path overhead + batched throughput.

Two measurements live here:

1. **Overhead** (PR 2): the per-translation cost of cooperative deadline
   checks and circuit-breaker admission on the happy path, bounded
   against an executor workload (<5%).
2. **Continuous batching** (PR 10): N closed-loop concurrent clients
   drive the same service with batching off and on; throughput and
   p50/p99 latency are compared, asserting the micro-batcher turns
   cross-request amortization into a ≥2× service-throughput win at
   concurrency ≥ 8 without regressing tight-deadline p99.

The batching benchmark isolates the *serving layer* with the same
simulated-cost shard idiom as ``bench_tenancy``: each forward costs a
fixed ``WORK_S`` plus a small per-member increment, mirroring the
ranker's batched matrix forward whose real amortization
``bench_pipeline`` measures directly (>=3x).  Worker count is identical
in both modes — batching's claim is more throughput from the *same*
workers.

Run with ``pytest benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
import timeit

from repro.core.pipeline import RankedResult, RankedTranslation
from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    TranslationReport,
    guarded_call,
)
from repro.obs.metrics import MetricsRegistry
from repro.schema.executor import execute
from repro.serve import ServiceConfig, TranslationService
from repro.sqlkit.parser import parse_sql

from benchmarks.bench_resilience import _workload

#: Checks one fault-free translation performs: four deadline boundary
#: checks, five breaker admissions, five breaker success records.
DEADLINE_CHECKS = 4
BREAKER_CALLS = 5

REPS = 5


def _per_call(fn, number: int) -> float:
    return min(timeit.repeat(fn, number=number, repeat=3)) / number


def test_serve_layer_overhead_under_five_percent(record_result, bench_metrics):
    db, queries = _workload()

    def run_workload():
        for query in queries:
            execute(query, db)

    run_workload()  # warm caches before timing
    base = timeit.timeit(run_workload, number=REPS) / REPS

    deadline = Deadline(3600.0)
    t_expired = _per_call(deadline.expired, 200_000)

    breaker = CircuitBreaker("stage1", threshold=5, cooldown=30.0)
    t_allow = _per_call(breaker.allow, 200_000)
    t_success = _per_call(breaker.record_success, 200_000)

    policy = DegradationPolicy()
    report = TranslationReport(question="bench")
    n_guard = 20_000
    t_guard_plain = _per_call(
        lambda: guarded_call(
            "bench", lambda: None, policy, report, fallback="skip"
        ),
        n_guard,
    )
    t_guard_breaker = _per_call(
        lambda: guarded_call(
            "bench",
            lambda: None,
            policy,
            report,
            fallback="skip",
            breaker=breaker,
        ),
        n_guard,
    )

    per_translate = (
        DEADLINE_CHECKS * t_expired + BREAKER_CALLS * (t_allow + t_success)
    )
    bound = per_translate / base
    guard_delta = t_guard_breaker - t_guard_plain

    rendered = "\n".join(
        [
            "serving-layer overhead (happy path)",
            f"  workload (3 queries):        {base * 1e3:8.3f} ms",
            f"  Deadline.expired() per call: {t_expired * 1e9:8.1f} ns",
            f"  breaker allow() per call:    {t_allow * 1e9:8.1f} ns",
            f"  breaker success() per call:  {t_success * 1e9:8.1f} ns",
            f"  guarded_call plain:          {t_guard_plain * 1e6:8.2f} us",
            f"  guarded_call + breaker:      {t_guard_breaker * 1e6:8.2f} us",
            f"  per-translate additions:     {per_translate * 1e6:8.2f} us"
            f"  ({DEADLINE_CHECKS} deadline checks, "
            f"{BREAKER_CALLS}x admission+record)",
            f"  bound vs workload:           {bound * 100:6.2f} %",
        ]
    )
    record_result("serve", rendered)
    bench_metrics(
        "serve",
        {
            "workload_ms": base * 1e3,
            "deadline_expired_ns": t_expired * 1e9,
            "breaker_allow_ns": t_allow * 1e9,
            "breaker_success_ns": t_success * 1e9,
            "guarded_call_us": t_guard_plain * 1e6,
            "guarded_call_breaker_us": t_guard_breaker * 1e6,
            "overhead_bound_pct": bound * 100,
        },
    )

    assert not report.faults  # the guarded no-op never recorded anything
    assert breaker.state == "closed"
    assert bound < 0.05
    # Attaching a breaker must not blow up guarded_call itself either.
    assert guard_delta < 10 * t_guard_plain


# ----------------------------------------------------------------------
# Continuous batching: concurrent-load throughput, on vs off.

#: Fixed cost of one model forward (the part batching amortizes).
WORK_S = 0.005
#: Marginal cost of each extra member inside a batched forward.
PER_ITEM_S = 0.0002
#: Closed-loop concurrent clients (the acceptance bar is >=8).
CONCURRENCY = 8
#: Same worker pool in both modes: the win must come from batching.
WORKERS = 2
REQUESTS_PER_CLIENT = 25

_RANKED = RankedTranslation(
    query=parse_sql("SELECT name FROM country"),
    stage1_score=1.0,
    stage2_score=1.0,
    metadata=None,
)


class AmortizedShard:
    """Simulated-cost shard with a genuinely amortizing batched forward.

    A single translation costs ``WORK_S + PER_ITEM_S``; a batched
    forward costs ``WORK_S + PER_ITEM_S * n`` — the fixed forward cost
    is paid once per batch, exactly the shape of the ranker's stacked
    matrix forward.
    """

    breakers = None
    _trained = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batch_sizes: list[int] = []

    def _result(self, question: str) -> RankedResult:
        return RankedResult(
            [_RANKED], TranslationReport(question=question)
        )

    def translate_ranked_report(self, question, db, compositions=None):
        time.sleep(WORK_S + PER_ITEM_S)
        return self._result(question)

    def translate_many(self, requests, deadline=None, deadlines=None):
        items = list(requests)
        time.sleep(WORK_S + PER_ITEM_S * len(items))
        with self._lock:
            self.batch_sizes.append(len(items))
        return [self._result(question) for question, _db in items]


def _drive(
    service: TranslationService,
    clients: int,
    per_client: int,
    deadline: float | None = None,
) -> tuple[float, list[float]]:
    """Closed-loop load: each client submits, waits, repeats."""
    latencies: list[list[float]] = [[] for _ in range(clients)]

    def client(index: int) -> None:
        for request in range(per_client):
            started = time.perf_counter()
            service.translate(
                f"q{index}-{request}", None, deadline=deadline, timeout=60
            )
            latencies[index].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return elapsed, [l for per in latencies for l in per]


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _service(shard: AmortizedShard, **knobs) -> TranslationService:
    defaults = dict(workers=WORKERS, queue_limit=512, max_retries=0)
    defaults.update(knobs)
    return TranslationService(
        shard, ServiceConfig(**defaults), registry=MetricsRegistry()
    )


def test_batched_serving_doubles_concurrent_throughput(
    record_result, bench_metrics
):
    total = CONCURRENCY * REQUESTS_PER_CLIENT

    with _service(AmortizedShard()) as service_off:
        elapsed_off, lat_off = _drive(
            service_off, CONCURRENCY, REQUESTS_PER_CLIENT
        )
    rps_off = total / elapsed_off

    shard_on = AmortizedShard()
    with _service(
        shard_on, batching=True, batch_wait_ms=1.0,
        max_batch_size=CONCURRENCY,
    ) as service_on:
        elapsed_on, lat_on = _drive(
            service_on, CONCURRENCY, REQUESTS_PER_CLIENT
        )
    rps_on = total / elapsed_on
    speedup = rps_on / rps_off
    stats = service_on._batcher.stats()
    mean_batch = stats["requests"] / max(1, stats["batches"])

    # Tight-deadline phase: a deliberately long tick that urgent
    # requests must bypass — their p99 must beat the tick by a wide
    # margin (no p99 regression for deadline-carrying traffic).
    tick_s = 0.05
    with _service(
        AmortizedShard(), batching=True,
        batch_wait_ms=tick_s * 1000.0, max_batch_size=CONCURRENCY,
    ) as service_tight:
        _elapsed, lat_tight = _drive(
            service_tight, CONCURRENCY, 10, deadline=0.01
        )
    p99_tight = _quantile(lat_tight, 0.99)

    rendered = "\n".join(
        [
            "continuous batching: "
            f"{CONCURRENCY} closed-loop clients, {WORKERS} workers, "
            f"{total} requests per mode",
            f"  batching off:   {rps_off:8.0f} req/s   "
            f"p50 {_quantile(lat_off, 0.5) * 1e3:7.2f} ms   "
            f"p99 {_quantile(lat_off, 0.99) * 1e3:7.2f} ms",
            f"  batching on:    {rps_on:8.0f} req/s   "
            f"p50 {_quantile(lat_on, 0.5) * 1e3:7.2f} ms   "
            f"p99 {_quantile(lat_on, 0.99) * 1e3:7.2f} ms",
            f"  throughput gain: {speedup:6.2f} x   "
            f"mean batch {mean_batch:.1f} "
            f"(flush reasons {stats['flush_reasons']})",
            f"  tight-deadline p99: {p99_tight * 1e3:7.2f} ms "
            f"(vs {tick_s * 1e3:.0f} ms tick)",
        ]
    )
    record_result("serve_batching", rendered)
    bench_metrics(
        "serve",
        {
            "batching_off_rps": rps_off,
            "batching_on_rps": rps_on,
            "batching_speedup": speedup,
            "batching_mean_batch_size": mean_batch,
            "batching_off_p50_ms": _quantile(lat_off, 0.5) * 1e3,
            "batching_off_p99_ms": _quantile(lat_off, 0.99) * 1e3,
            "batching_on_p50_ms": _quantile(lat_on, 0.5) * 1e3,
            "batching_on_p99_ms": _quantile(lat_on, 0.99) * 1e3,
            "tight_deadline_p99_ms": p99_tight * 1e3,
        },
    )

    # The acceptance bar: same workers, >=2x throughput at
    # concurrency >= 8, and the scheduler genuinely batched.
    assert speedup >= 2.0, f"batching speedup only {speedup:.2f}x"
    assert mean_batch >= 2.0, f"mean batch size only {mean_batch:.2f}"
    assert shard_on.batch_sizes, "batched forward never used"
    # Tight deadlines bypass the tick instead of waiting it out.
    assert p99_tight < tick_s, (
        f"tight-deadline p99 {p99_tight * 1e3:.1f} ms did not beat "
        f"the {tick_s * 1e3:.0f} ms tick"
    )
