"""Serving-layer overhead on the translate hot path (target: <5%).

PR 2 adds two per-translation costs on the *happy* path: cooperative
deadline checks at the four stage boundaries (one ``Deadline.expired()``
each — with no deadline installed it is a single ``is None`` branch) and
circuit-breaker admission around the five guarded stages (one
``allow()`` at entry plus one ``record_success()`` on exit).  This
benchmark micro-times each primitive, times ``guarded_call`` with and
without a breaker attached, and bounds the summed per-translation cost
against the same executor workload ``bench_resilience`` uses as a
conservative stand-in for one translation (a real translation decodes,
grounds and ranks a whole candidate set, so the true denominator is far
larger and the true overhead far smaller).

Run with ``pytest benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import timeit

from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    TranslationReport,
    guarded_call,
)
from repro.schema.executor import execute

from benchmarks.bench_resilience import _workload

#: Checks one fault-free translation performs: four deadline boundary
#: checks, five breaker admissions, five breaker success records.
DEADLINE_CHECKS = 4
BREAKER_CALLS = 5

REPS = 5


def _per_call(fn, number: int) -> float:
    return min(timeit.repeat(fn, number=number, repeat=3)) / number


def test_serve_layer_overhead_under_five_percent(record_result, bench_metrics):
    db, queries = _workload()

    def run_workload():
        for query in queries:
            execute(query, db)

    run_workload()  # warm caches before timing
    base = timeit.timeit(run_workload, number=REPS) / REPS

    deadline = Deadline(3600.0)
    t_expired = _per_call(deadline.expired, 200_000)

    breaker = CircuitBreaker("stage1", threshold=5, cooldown=30.0)
    t_allow = _per_call(breaker.allow, 200_000)
    t_success = _per_call(breaker.record_success, 200_000)

    policy = DegradationPolicy()
    report = TranslationReport(question="bench")
    n_guard = 20_000
    t_guard_plain = _per_call(
        lambda: guarded_call(
            "bench", lambda: None, policy, report, fallback="skip"
        ),
        n_guard,
    )
    t_guard_breaker = _per_call(
        lambda: guarded_call(
            "bench",
            lambda: None,
            policy,
            report,
            fallback="skip",
            breaker=breaker,
        ),
        n_guard,
    )

    per_translate = (
        DEADLINE_CHECKS * t_expired + BREAKER_CALLS * (t_allow + t_success)
    )
    bound = per_translate / base
    guard_delta = t_guard_breaker - t_guard_plain

    rendered = "\n".join(
        [
            "serving-layer overhead (happy path)",
            f"  workload (3 queries):        {base * 1e3:8.3f} ms",
            f"  Deadline.expired() per call: {t_expired * 1e9:8.1f} ns",
            f"  breaker allow() per call:    {t_allow * 1e9:8.1f} ns",
            f"  breaker success() per call:  {t_success * 1e9:8.1f} ns",
            f"  guarded_call plain:          {t_guard_plain * 1e6:8.2f} us",
            f"  guarded_call + breaker:      {t_guard_breaker * 1e6:8.2f} us",
            f"  per-translate additions:     {per_translate * 1e6:8.2f} us"
            f"  ({DEADLINE_CHECKS} deadline checks, "
            f"{BREAKER_CALLS}x admission+record)",
            f"  bound vs workload:           {bound * 100:6.2f} %",
        ]
    )
    record_result("serve", rendered)
    bench_metrics(
        "serve",
        {
            "workload_ms": base * 1e3,
            "deadline_expired_ns": t_expired * 1e9,
            "breaker_allow_ns": t_allow * 1e9,
            "breaker_success_ns": t_success * 1e9,
            "guarded_call_us": t_guard_plain * 1e6,
            "guarded_call_breaker_us": t_guard_breaker * 1e6,
            "overhead_bound_pct": bound * 100,
        },
    )

    assert not report.faults  # the guarded no-op never recorded anything
    assert breaker.state == "closed"
    assert bound < 0.05
    # Attaching a breaker must not blow up guarded_call itself either.
    assert guard_delta < 10 * t_guard_plain
